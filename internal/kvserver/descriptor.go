// Package kvserver implements the shared transactional KV layer (§3.1 of the
// paper): a cluster of nodes hosting replicated ranges, range splits by size
// and load, a META directory mapping keys to ranges, DistSender-style request
// routing with redirect handling, per-node admission control, and the
// authorization hook at the SQL/KV boundary.
package kvserver

import (
	"fmt"
	"sort"
	"sync"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
)

// RangeID identifies a range.
type RangeID int64

// NodeID identifies a KV node.
type NodeID = kvpb.NodeID

// RangeDescriptor describes one range: its key span and replica placement.
type RangeDescriptor struct {
	RangeID  RangeID
	Span     keys.Span
	Replicas []NodeID
	// Generation increments on every split or replica change, letting
	// caches detect staleness.
	Generation int64
}

// ContainsKey reports whether the range's span contains k.
func (d *RangeDescriptor) ContainsKey(k keys.Key) bool { return d.Span.ContainsKey(k) }

// String implements fmt.Stringer.
func (d *RangeDescriptor) String() string {
	return fmt.Sprintf("r%d:%s replicas=%v gen=%d", d.RangeID, d.Span, d.Replicas, d.Generation)
}

// metaDirectory is the range-addressing index — the role of the META range
// (§3.2.5). Lookups may be served from stale snapshots (modeling follower
// reads); the source of truth is updated transactionally on splits.
type metaDirectory struct {
	mu sync.RWMutex
	// byStart holds descriptors sorted by span start key; spans partition
	// the keyspace with no overlaps.
	byStart []*RangeDescriptor
}

// lookup returns the descriptor whose span contains k.
func (m *metaDirectory) lookup(k keys.Key) (*RangeDescriptor, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	i := sort.Search(len(m.byStart), func(i int) bool {
		return k.Less(m.byStart[i].Span.Key)
	})
	if i == 0 {
		return nil, fmt.Errorf("kvserver: no range contains key %s", k)
	}
	d := m.byStart[i-1]
	if !d.ContainsKey(k) {
		return nil, fmt.Errorf("kvserver: no range contains key %s", k)
	}
	return d.clone(), nil
}

// all returns a snapshot of all descriptors in key order.
func (m *metaDirectory) all() []*RangeDescriptor {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*RangeDescriptor, len(m.byStart))
	for i, d := range m.byStart {
		out[i] = d.clone()
	}
	return out
}

// next returns the descriptor whose span starts exactly at start — the right
// neighbor of a range ending there — or nil if no such range exists.
func (m *metaDirectory) next(start keys.Key) *RangeDescriptor {
	m.mu.RLock()
	defer m.mu.RUnlock()
	i := m.searchLocked(start)
	if i < len(m.byStart) && m.byStart[i].Span.Key.Equal(start) {
		return m.byStart[i].clone()
	}
	return nil
}

// searchLocked returns the index of the first descriptor whose start key is
// >= k (binary search; byStart is sorted by start key at all times).
func (m *metaDirectory) searchLocked(k keys.Key) int {
	return sort.Search(len(m.byStart), func(i int) bool {
		return !m.byStart[i].Span.Key.Less(k)
	})
}

// insert adds a descriptor; spans must not overlap existing ones. The
// descriptor is spliced into position with a binary search — no full re-sort,
// so building a fleet of thousands of ranges stays O(n log n) total rather
// than O(n² log n).
func (m *metaDirectory) insert(d *RangeDescriptor) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	i := m.searchLocked(d.Span.Key)
	// Only the neighbors can overlap a candidate that sorts at position i.
	if i > 0 && m.byStart[i-1].Span.Overlaps(d.Span) {
		return fmt.Errorf("kvserver: descriptor %s overlaps %s", d, m.byStart[i-1])
	}
	if i < len(m.byStart) && m.byStart[i].Span.Overlaps(d.Span) {
		return fmt.Errorf("kvserver: descriptor %s overlaps %s", d, m.byStart[i])
	}
	m.byStart = append(m.byStart, nil)
	copy(m.byStart[i+1:], m.byStart[i:])
	m.byStart[i] = d.clone()
	return nil
}

// replace atomically swaps old for the given descriptors (the split commit).
// The replacements are spliced into the vacated slot in key order.
func (m *metaDirectory) replace(old RangeID, with ...*RangeDescriptor) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	idx := m.indexOfLocked(old)
	if idx == -1 {
		return fmt.Errorf("kvserver: range %d not in directory", old)
	}
	repl := make([]*RangeDescriptor, len(with))
	for i, d := range with {
		repl[i] = d.clone()
	}
	sort.Slice(repl, func(i, j int) bool {
		return repl[i].Span.Key.Less(repl[j].Span.Key)
	})
	out := make([]*RangeDescriptor, 0, len(m.byStart)-1+len(repl))
	out = append(out, m.byStart[:idx]...)
	out = append(out, repl...)
	out = append(out, m.byStart[idx+1:]...)
	m.byStart = out
	return nil
}

// mergeReplace atomically swaps two adjacent descriptors for their union (the
// merge commit). It verifies adjacency under the directory lock so a racing
// split can never leave the directory with a gap or an overlap.
func (m *metaDirectory) mergeReplace(left, right RangeID, with *RangeDescriptor) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	li := m.indexOfLocked(left)
	if li == -1 || li+1 >= len(m.byStart) || m.byStart[li+1].RangeID != right {
		return fmt.Errorf("kvserver: ranges %d and %d are not adjacent in the directory", left, right)
	}
	ld, rd := m.byStart[li], m.byStart[li+1]
	if !with.Span.Key.Equal(ld.Span.Key) || !with.Span.EndKey.Equal(rd.Span.EndKey) {
		return fmt.Errorf("kvserver: merged span %s does not cover %s + %s", with.Span, ld.Span, rd.Span)
	}
	m.byStart[li] = with.clone()
	m.byStart = append(m.byStart[:li+1], m.byStart[li+2:]...)
	return nil
}

// indexOfLocked finds a descriptor's position by RangeID.
func (m *metaDirectory) indexOfLocked(id RangeID) int {
	for i, d := range m.byStart {
		if d.RangeID == id {
			return i
		}
	}
	return -1
}

func (d *RangeDescriptor) clone() *RangeDescriptor {
	out := *d
	out.Replicas = append([]NodeID(nil), d.Replicas...)
	return &out
}
