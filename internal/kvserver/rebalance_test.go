package kvserver

import (
	"context"
	"fmt"
	"testing"
	"time"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
)

func TestAddNodeAndNewRangePlacement(t *testing.T) {
	c := newTestCluster(t, 3)
	cheap := CostConfig{ReadBatchOverhead: time.Nanosecond, WriteBatchOverhead: time.Nanosecond}
	n4 := NewNode(NodeConfig{ID: 4, VCPUs: 2, Cost: cheap})
	if err := c.AddNode(n4); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNode(n4); err == nil {
		t.Fatal("duplicate AddNode accepted")
	}
	if got := len(c.Nodes()); got != 4 {
		t.Fatalf("nodes = %d", got)
	}
	// Splits inherit the parent's replicas (data stays in place), so the
	// added node starts empty; rebalancing is what shifts load onto it.
	for tid := keys.TenantID(2); tid < 10; tid++ {
		if err := c.SplitAt(keys.MakeTenantPrefix(tid)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.ReplicaCounts()[4]; got != 0 {
		t.Fatalf("added node has %d replicas before any rebalance", got)
	}
	if moved := c.RebalanceReplicas(50); moved == 0 {
		t.Fatal("rebalance moved nothing onto the new node")
	}
	if got := c.ReplicaCounts()[4]; got == 0 {
		t.Fatal("added node still empty after rebalance")
	}
}

func TestMoveReplicaPreservesData(t *testing.T) {
	c := newTestCluster(t, 4)
	ds := NewDistSender(c, Identity{Tenant: 2})
	ctx := context.Background()
	// Carve a tenant range and fill it.
	if err := c.SplitAt(keys.MakeTenantPrefix(2)); err != nil {
		t.Fatal(err)
	}
	if err := c.SplitAt(keys.MakeTenantSpan(2).EndKey); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		k := tenantKey(2, fmt.Sprintf("k%02d", i))
		if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{putReq(k, fmt.Sprintf("v%d", i))}}); err != nil {
			t.Fatal(err)
		}
	}
	desc, err := c.LookupRange(keys.MakeTenantPrefix(2))
	if err != nil {
		t.Fatal(err)
	}
	// Find a node not holding a replica.
	member := map[NodeID]bool{}
	for _, r := range desc.Replicas {
		member[r] = true
	}
	var target NodeID
	for _, n := range c.Nodes() {
		if !member[n.ID()] {
			target = n.ID()
			break
		}
	}
	if target == 0 {
		t.Fatal("no spare node")
	}
	from := desc.Replicas[0]
	if err := c.MoveReplica(desc.RangeID, from, target); err != nil {
		t.Fatal(err)
	}
	// Descriptor updated.
	desc2, _ := c.LookupRange(keys.MakeTenantPrefix(2))
	if desc2.Generation <= desc.Generation {
		t.Fatal("generation not bumped")
	}
	for _, r := range desc2.Replicas {
		if r == from {
			t.Fatal("old replica still listed")
		}
	}
	// All data readable after the move, through a fresh sender (stale
	// caches self-heal via mismatch errors).
	ds2 := NewDistSender(c, Identity{Tenant: 2})
	span := keys.MakeTenantSpan(2)
	resp, err := ds2.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
		{Method: kvpb.Scan, Key: span.Key, EndKey: span.EndKey}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(resp.Responses[0].Rows); got != 30 {
		t.Fatalf("rows after move = %d, want 30", got)
	}
	// And writes keep working.
	if _, err := ds2.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
		putReq(tenantKey(2, "after-move"), "v")}}); err != nil {
		t.Fatal(err)
	}
}

func TestMoveReplicaErrors(t *testing.T) {
	c := newTestCluster(t, 4)
	desc := c.Descriptors()[0]
	if err := c.MoveReplica(999, 1, 4); err == nil {
		t.Fatal("unknown range accepted")
	}
	if err := c.MoveReplica(desc.RangeID, 1, 99); err == nil {
		t.Fatal("unknown target accepted")
	}
	// Moving to an existing member fails.
	if err := c.MoveReplica(desc.RangeID, desc.Replicas[0], desc.Replicas[1]); err == nil {
		t.Fatal("move onto existing member accepted")
	}
	// Moving from a non-member fails.
	var nonMember NodeID
	member := map[NodeID]bool{}
	for _, r := range desc.Replicas {
		member[r] = true
	}
	for _, n := range c.Nodes() {
		if !member[n.ID()] {
			nonMember = n.ID()
		}
	}
	if err := c.MoveReplica(desc.RangeID, nonMember, nonMember); err == nil {
		t.Fatal("move from non-member accepted")
	}
}

func TestRebalanceReplicasEvensLoad(t *testing.T) {
	c := newTestCluster(t, 3)
	// Many ranges, all on nodes 1-3.
	for tid := keys.TenantID(2); tid < 14; tid++ {
		c.SplitAt(keys.MakeTenantPrefix(tid))
	}
	cheap := CostConfig{ReadBatchOverhead: time.Nanosecond, WriteBatchOverhead: time.Nanosecond}
	c.AddNode(NewNode(NodeConfig{ID: 4, VCPUs: 2, Cost: cheap}))
	before := c.ReplicaCounts()
	if before[4] != 0 {
		t.Fatalf("node 4 unexpectedly has %d replicas", before[4])
	}
	moved := c.RebalanceReplicas(50)
	if moved == 0 {
		t.Fatal("no rebalancing happened")
	}
	after := c.ReplicaCounts()
	if after[4] == 0 {
		t.Fatal("node 4 still empty after rebalance")
	}
	var max, min int
	min = 1 << 30
	for _, n := range c.Nodes() {
		cnt := after[n.ID()]
		if cnt > max {
			max = cnt
		}
		if cnt < min {
			min = cnt
		}
	}
	if max-min > 2 {
		t.Fatalf("unbalanced after rebalance: %v", after)
	}
}

func TestDrainAndRemoveNode(t *testing.T) {
	c := newTestCluster(t, 4)
	ds := NewDistSender(c, Identity{Tenant: 2})
	ctx := context.Background()
	for tid := keys.TenantID(2); tid < 8; tid++ {
		c.SplitAt(keys.MakeTenantPrefix(tid))
	}
	k := tenantKey(2, "durable")
	ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{putReq(k, "v")}})

	// RemoveNode refuses while replicas remain.
	if err := c.RemoveNode(4); err == nil && c.ReplicaCounts()[4] > 0 {
		t.Fatal("remove with replicas accepted")
	}
	if err := c.DrainNodeReplicas(4); err != nil {
		t.Fatal(err)
	}
	if got := c.ReplicaCounts()[4]; got != 0 {
		t.Fatalf("node 4 still has %d replicas", got)
	}
	if err := c.RemoveNode(4); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Nodes()); got != 3 {
		t.Fatalf("nodes after remove = %d", got)
	}
	if err := c.RemoveNode(4); err == nil {
		t.Fatal("double remove accepted")
	}
	// Data still there.
	ds2 := NewDistSender(c, Identity{Tenant: 2})
	resp, err := ds2.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{getReq(k)}})
	if err != nil || !resp.Responses[0].Exists {
		t.Fatalf("data lost after node removal: %v", err)
	}
}
