package kvserver

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"crdbserverless/internal/admission"
	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/lsm"
	"crdbserverless/internal/tenantobs"
	"crdbserverless/internal/timeutil"
)

// NodeConfig configures a KV node.
type NodeConfig struct {
	ID NodeID
	// VCPUs is the node's CPU capacity (worker count).
	VCPUs int
	// Region is the node's locality, used by multi-region placement.
	Region string
	Clock  timeutil.Clock
	Cost   CostConfig
	LSM    lsm.Options
	// AdmissionEnabled turns on admission control for this node.
	AdmissionEnabled bool
	// LivenessQueueLimit is the executor queue depth beyond which the node
	// fails liveness (it is too overloaded to heartbeat). Defaults to
	// 300 * VCPUs.
	LivenessQueueLimit int
	// Obs, when non-nil, receives per-tenant admission-wait observations
	// from the node's CPU queue.
	Obs *tenantobs.Plane
}

// Node is one KV process: a storage engine shared by all its replicas, a
// CPU executor, and admission queues. A node serves operations for every
// tenant whose ranges have replicas here (§4.1: the KV layer is shared
// across tenants within single processes).
type Node struct {
	id     NodeID
	vcpus  int
	region string
	clock  timeutil.Clock
	// engine is swapped atomically by Crash (close, tear, reopen); all access
	// goes through Engine(). Batches never run concurrently with a crash —
	// the harness cordons the node first.
	engine atomic.Pointer[lsm.Engine]
	// lsmOpts is kept so Crash can reopen the engine over the same directory
	// with the same configuration.
	lsmOpts lsm.Options
	ex      *executor
	cost    CostConfig

	cpuQ   *admission.CPUQueue
	writeQ *admission.WriteQueue
	capEst admission.CapacityEstimator
	// writeModel translates a batch's logical write bytes into estimated
	// physical bytes (raft log + state machine application), per §5.1.4.
	writeModel admission.LinearModel

	livenessLimit int

	// leaseLoad is the decayed QPS weight of the batches this node served
	// as leaseholder — the signal load-aware lease rebalancing reads.
	// Updated O(1) on the batch path; lease transfers move a range's
	// weight between node counters.
	leaseLoad decayedCounter
	// waitLoad accumulates each served batch's wall time at the node
	// (admission wait + queueing + execution), decayed on the same clock.
	// By Little's law its weight is proportional to the mean number of
	// batches in the system, which keeps growing after delivered QPS
	// flattens at capacity — the congestion term of effectiveLoad.
	waitLoad decayedCounter

	mu struct {
		sync.Mutex
		acEnabled   bool
		batchRate   float64 // EWMA batches/sec
		lastBatchAt time.Time
		batches     int64
		lastCapAt   time.Time
		cordoned    bool
	}
}

// NewNode starts a node.
func NewNode(cfg NodeConfig) *Node {
	if cfg.VCPUs <= 0 {
		cfg.VCPUs = 4
	}
	if cfg.Clock == nil {
		cfg.Clock = timeutil.NewRealClock()
	}
	if cfg.Cost == (CostConfig{}) {
		cfg.Cost = DefaultCostConfig()
	}
	if cfg.LivenessQueueLimit <= 0 {
		cfg.LivenessQueueLimit = 300 * cfg.VCPUs
	}
	n := &Node{
		id:            cfg.ID,
		vcpus:         cfg.VCPUs,
		region:        cfg.Region,
		clock:         cfg.Clock,
		lsmOpts:       cfg.LSM,
		cost:          cfg.Cost,
		livenessLimit: cfg.LivenessQueueLimit,
		// Physical write bytes ≈ 2x logical (raft log + state machine)
		// plus per-batch framing.
		writeModel: admission.LinearModel{A: 2, B: 64},
	}
	n.engine.Store(lsm.New(cfg.LSM))
	n.ex = newExecutor(cfg.Clock, cfg.VCPUs)
	n.cpuQ = admission.NewCPUQueue(admission.CPUQueueOptions{
		InitialSlots: cfg.VCPUs * 2,
		MaxSlots:     cfg.VCPUs * 64,
		Clock:        cfg.Clock,
		Obs:          cfg.Obs,
	})
	n.writeQ = admission.NewWriteQueue(admission.WriteQueueOptions{Clock: cfg.Clock})
	n.mu.acEnabled = cfg.AdmissionEnabled
	n.mu.lastBatchAt = cfg.Clock.Now()
	n.mu.lastCapAt = cfg.Clock.Now()
	return n
}

// ID returns the node's ID.
func (n *Node) ID() NodeID { return n.id }

// Region returns the node's locality.
func (n *Node) Region() string { return n.region }

// VCPUs returns the node's CPU capacity.
func (n *Node) VCPUs() int { return n.vcpus }

// Engine exposes the node's storage engine (replicas and tests use it).
// After a Crash it returns the reopened engine.
func (n *Node) Engine() *lsm.Engine { return n.engine.Load() }

// Crash simulates a process crash and restart of the node's store: the
// engine is closed, the directory loses its unsynced suffix (up to tear
// bytes of torn tail per file), and the engine is reopened from the durable
// state — replaying the WAL, truncating at the first torn record. The node
// must be configured with durable storage (Options.Durable), and the caller
// must cordon it first so no batch runs against the dying engine. After a
// successful Crash the caller reconciles replication state with
// Cluster.RecoverNode.
func (n *Node) Crash(tear int) error {
	dir := n.lsmOpts.Durable
	if dir == nil {
		return errors.New("kvserver: node has no durable storage to crash")
	}
	n.Engine().Close()
	dir.Crash(tear)
	e, err := lsm.Open(n.lsmOpts)
	if err != nil {
		return fmt.Errorf("kvserver: reopening store after crash: %w", err)
	}
	n.engine.Store(e)
	return nil
}

// SetAdmissionEnabled toggles admission control at runtime (the experiment
// harness compares configurations this way).
func (n *Node) SetAdmissionEnabled(enabled bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mu.acEnabled = enabled
}

// AdmissionEnabled reports whether admission control is active.
func (n *Node) AdmissionEnabled() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mu.acEnabled
}

// Live reports node liveness: an overloaded node (deep executor queue)
// cannot heartbeat and reads as dead, shedding its leases (§6.6). A cordoned
// node also reads as dead.
func (n *Node) Live() bool {
	n.mu.Lock()
	cordoned := n.mu.cordoned
	n.mu.Unlock()
	return !cordoned && n.ex.queueDepth() < n.livenessLimit
}

// SetCordoned marks the node administratively dead (maintenance, failure
// injection): it fails liveness, loses its leases at the next cluster tick,
// and stops accepting lease transfers until un-cordoned.
func (n *Node) SetCordoned(cordoned bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mu.cordoned = cordoned
}

// CPUBusy returns cumulative busy CPU time across the node's workers.
func (n *Node) CPUBusy() time.Duration { return n.ex.busyTime() }

// QueueDepth returns the executor's current queue depth.
func (n *Node) QueueDepth() int { return n.ex.queueDepth() }

// BatchCount returns the number of batches served.
func (n *Node) BatchCount() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mu.batches
}

// Close shuts down the node.
func (n *Node) Close() {
	n.ex.close()
	n.Engine().Close()
}

// admitCPU passes the batch through the CPU admission queue when enabled.
// It returns a release function to call with the consumed CPU time.
func (n *Node) admitCPU(ctx context.Context, ba *kvpb.BatchRequest) (func(time.Duration), error) {
	if !n.AdmissionEnabled() {
		return func(time.Duration) {}, nil
	}
	info := admission.WorkInfo{Tenant: ba.Tenant, Priority: ba.Priority}
	if ba.Txn != nil {
		info.Priority = ba.Txn.Priority
		info.CreateTime = ba.Txn.Ts.GoTime()
	}
	return n.cpuQ.Admit(ctx, info)
}

// admitWrite passes the batch's write volume through the write token bucket.
func (n *Node) admitWrite(ctx context.Context, ba *kvpb.BatchRequest) error {
	if !n.AdmissionEnabled() || ba.IsReadOnly() {
		return nil
	}
	est := n.writeModel.Predict(float64(ba.WriteBytes()))
	info := admission.WorkInfo{Tenant: ba.Tenant, Priority: ba.Priority}
	return n.writeQ.Admit(ctx, info, int64(est))
}

// chargeCPU occupies a worker for the batch's ground-truth cost and returns
// the cost charged.
func (n *Node) chargeCPU(ba *kvpb.BatchRequest, resp *kvpb.BatchResponse, remote bool) time.Duration {
	rate := n.recordBatch()
	cost := n.cost.BatchCost(ba, resp, rate, remote)
	n.ex.run(cost)
	return cost
}

// recordBatch updates the node's batch-rate EWMA and returns it.
func (n *Node) recordBatch() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := n.clock.Now()
	dt := now.Sub(n.mu.lastBatchAt).Seconds()
	if dt <= 0 {
		dt = 1e-9
	}
	instant := 1 / dt
	alpha := dt / (dt + 1) // ~1s smoothing window
	if alpha > 1 {
		alpha = 1
	}
	n.mu.batchRate = (1-alpha)*n.mu.batchRate + alpha*instant
	n.mu.lastBatchAt = now
	n.mu.batches++
	return n.mu.batchRate
}

// Tick runs the node's periodic maintenance: the AIMD slot adjustment from
// the executor queue depth (the 1000Hz runnable-queue sampling of §5.1.3,
// invoked here at the caller's cadence) and the write-capacity re-estimate.
func (n *Node) Tick() {
	n.cpuQ.AdjustSlots(n.ex.queueDepth(), n.vcpus)
	n.writeQ.Tick()
	now := n.clock.Now()
	n.mu.Lock()
	due := now.Sub(n.mu.lastCapAt) >= 15*time.Second
	if due {
		n.mu.lastCapAt = now
	}
	n.mu.Unlock()
	if due {
		capacity := n.capEst.Update(n.Engine().Metrics(), now)
		n.writeQ.SetRate(capacity)
	}
}

// AdmissionStats exposes the node's admission queue state.
func (n *Node) AdmissionStats() (admission.CPUQueueStats, admission.WriteQueueStats) {
	return n.cpuQ.Stats(), n.writeQ.Stats()
}

// TenantCPUUsage returns a tenant's decayed recent CPU seconds on this node.
func (n *Node) TenantCPUUsage(id keys.TenantID) float64 {
	return n.cpuQ.TenantUsage(id)
}
