package kvserver

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/lsm"
	"crdbserverless/internal/mvcc"
)

// rawKeyPrefix prefixes engine keys that live outside the MVCC keyspace.
// MVCC storage keys all start with the keys package's bytes marker (0x12),
// so 0x01-prefixed keys sort below every versioned key and are invisible to
// MVCC iteration.
const rawKeyPrefix = 0x01

// appliedKey is the engine key holding a range's durably applied raft index
// on a replica. engineSM.Apply writes it after every command; RecoverNode
// reads it after a crash to regress the replication group's view of the
// replica to what its storage actually retained.
func appliedKey(id RangeID) []byte {
	k := []byte{rawKeyPrefix, 'a', 'p', 'p', 'l', 'i', 'e', 'd'}
	return keys.EncodeUint64(k, uint64(id))
}

// durableAppliedIndex reads a range's persisted applied index from an engine
// (0 when the replica has never applied a command durably).
func durableAppliedIndex(e *lsm.Engine, id RangeID) (uint64, error) {
	v, ok, err := e.Get(appliedKey(id))
	if err != nil || !ok {
		return 0, err
	}
	_, idx, err := keys.DecodeUint64(keys.Key(v))
	if err != nil {
		return 0, fmt.Errorf("kvserver: decoding applied key for range %d: %w", id, err)
	}
	return idx, nil
}

// enginePair is one raw engine KV pair inside a replica snapshot.
type enginePair struct {
	Key, Value []byte
}

// Snapshot implements raftlite.SnapshotStateMachine: it serializes every
// engine pair in the range's span (all MVCC versions and intents, value-log
// pointers resolved). A replica that fell behind the group's truncated log —
// a store revived after a crash — is caught up from this instead of replay.
func (sm engineSM) Snapshot() ([]byte, error) {
	desc := sm.rs.descAtomic.Load()
	lo, hi := mvcc.EngineSpan(desc.Span)
	var pairs []enginePair
	e := sm.n.Engine()
	for it := e.NewIter(lo, hi); it.Valid(); it.Next() {
		pairs = append(pairs, enginePair{
			Key:   append([]byte(nil), it.Key()...),
			Value: append([]byte(nil), it.Value()...),
		})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(pairs); err != nil {
		return nil, fmt.Errorf("kvserver: encoding snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// ApplySnapshot implements raftlite.SnapshotStateMachine: it replaces the
// replica's span contents with the donor's pairs. The span wipe, the new
// pairs, and the applied-index bump land in one engine batch — one WAL
// record — so a crash mid-snapshot leaves either the old replica state or
// the complete new one, never a blend.
func (sm engineSM) ApplySnapshot(index uint64, data []byte) error {
	var pairs []enginePair
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&pairs); err != nil {
		return fmt.Errorf("kvserver: decoding snapshot: %w", err)
	}
	desc := sm.rs.descAtomic.Load()
	lo, hi := mvcc.EngineSpan(desc.Span)
	e := sm.n.Engine()
	var ents []lsm.Entry
	for it := e.NewIter(lo, hi); it.Valid(); it.Next() {
		ents = append(ents, lsm.Entry{
			Key:       append([]byte(nil), it.Key()...),
			Tombstone: true,
		})
	}
	// Pairs follow the wipe: a key present in both resolves to the donor's
	// value (later entries win within a batch).
	for _, p := range pairs {
		ents = append(ents, lsm.Entry{Key: p.Key, Value: p.Value})
	}
	ents = append(ents, lsm.Entry{
		Key:   appliedKey(desc.RangeID),
		Value: keys.EncodeUint64(nil, index),
	})
	return e.ApplyBatch(ents)
}

// RecoverNode reconciles the replication groups with a node's storage after
// a crash-and-reopen (Node.Crash): for every range holding a replica there,
// it reads the durably applied index and regresses the group's view of the
// replica to it. A suffix of applied commands lost with the torn WAL tail is
// re-applied by the next catch-up — or, if the log was truncated past the
// regressed index, the replica rejoins via snapshot.
func (c *Cluster) RecoverNode(id NodeID) error {
	n, ok := c.Node(id)
	if !ok {
		return fmt.Errorf("kvserver: unknown node %d", id)
	}
	e := n.Engine()
	for _, rs := range c.rangesByID() {
		if !hasReplica(rs, id) {
			continue
		}
		applied, err := durableAppliedIndex(e, rs.desc.RangeID)
		if err != nil {
			return err
		}
		if err := rs.group.RegressApplied(id, applied); err != nil {
			return err
		}
	}
	return nil
}
