package kvserver

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/metric"
	"crdbserverless/internal/timeutil"
)

// newLoadCluster builds a cluster with an explicit ClusterConfig (unlike
// newTestCluster, which pins the defaults). A nil clock means real time.
func newLoadCluster(t testing.TB, n int, cfg ClusterConfig, clock timeutil.Clock) *Cluster {
	t.Helper()
	cheap := CostConfig{
		ReadBatchOverhead:  time.Nanosecond,
		WriteBatchOverhead: time.Nanosecond,
		ReadRequestCost:    time.Nanosecond,
		WriteRequestCost:   time.Nanosecond,
	}
	var nodes []*Node
	for i := 1; i <= n; i++ {
		nodes = append(nodes, NewNode(NodeConfig{ID: NodeID(i), VCPUs: 2, Cost: cheap, Clock: clock}))
	}
	cfg.Clock = clock
	c, err := NewCluster(cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestDecayedCounterHalfLife(t *testing.T) {
	var d decayedCounter
	t0 := time.Unix(100, 0)
	hl := 10 * time.Second
	d.add(t0, hl, 100)
	if got := d.value(t0, hl); got != 100 {
		t.Fatalf("undecayed value = %v, want 100", got)
	}
	if got := d.value(t0.Add(hl), hl); math.Abs(got-50) > 1e-9 {
		t.Fatalf("after one half-life value = %v, want 50", got)
	}
	if got := d.value(t0.Add(2*hl), hl); math.Abs(got-25) > 1e-9 {
		t.Fatalf("after two half-lives value = %v, want 25", got)
	}
	// Transfer bookkeeping may subtract more than the decayed weight holds;
	// the counter clamps at zero rather than going negative.
	d.add(t0.Add(2*hl), hl, -1000)
	if got := d.value(t0.Add(2*hl), hl); got != 0 {
		t.Fatalf("clamped value = %v, want 0", got)
	}
}

func TestRangeLoadQPSEstimate(t *testing.T) {
	l := newRangeLoad(1)
	t0 := time.Unix(0, 0)
	hl := 10 * time.Second
	l.record(t0, hl, 100, 0, nil)
	// qps = weight * ln2 / halfLife.Seconds().
	want := 100 * math.Ln2 / 10
	if got := l.qps(t0, hl); math.Abs(got-want) > 1e-9 {
		t.Fatalf("qps = %v, want %v", got, want)
	}
	if got := l.qps(t0.Add(hl), hl); math.Abs(got-want/2) > 1e-9 {
		t.Fatalf("decayed qps = %v, want %v", got, want/2)
	}
	if got := l.qps(t0, 0); got != 0 {
		t.Fatalf("qps with zero half-life = %v, want 0", got)
	}
}

func TestRangeLoadSplitKey(t *testing.T) {
	span := keys.MakeTenantSpan(2)
	hl := 10 * time.Second
	now := time.Unix(0, 0)

	l := newRangeLoad(1)
	for i := 0; i < 10; i++ {
		l.record(now, hl, 1, 0, tenantKey(2, fmt.Sprintf("k%02d", i)))
	}
	// 10 sorted samples: the median walk starts at index 5.
	if got := l.splitKey(span); !got.Equal(tenantKey(2, "k05")) {
		t.Fatalf("splitKey = %q, want k05", got)
	}

	// Below the minimum sample count the reservoir is not trusted.
	few := newRangeLoad(2)
	for i := 0; i < loadSplitMinSamples-1; i++ {
		few.record(now, hl, 1, 0, tenantKey(2, fmt.Sprintf("k%02d", i)))
	}
	if got := few.splitKey(span); got != nil {
		t.Fatalf("splitKey with %d samples = %q, want nil", loadSplitMinSamples-1, got)
	}

	// A single hot key equal to the span start cannot become a boundary.
	hot := newRangeLoad(3)
	for i := 0; i < 10; i++ {
		hot.record(now, hl, 1, 0, span.Key)
	}
	if got := hot.splitKey(span); got != nil {
		t.Fatalf("splitKey on single hot key = %q, want nil", got)
	}

	// Samples outside the span (pre-split leftovers) are ignored.
	stale := newRangeLoad(4)
	for i := 0; i < 10; i++ {
		stale.record(now, hl, 1, 0, tenantKey(9, fmt.Sprintf("k%02d", i)))
	}
	if got := stale.splitKey(span); got != nil {
		t.Fatalf("splitKey with out-of-span samples = %q, want nil", got)
	}
}

func TestRangeLoadHalveAbsorb(t *testing.T) {
	hl := 10 * time.Second
	now := time.Unix(0, 0)
	l := newRangeLoad(1)
	for i := 0; i < 10; i++ {
		l.record(now, hl, 1, 10, tenantKey(2, fmt.Sprintf("k%02d", i)))
	}
	right := newRangeLoad(2)
	l.halve(tenantKey(2, "k05"), right)
	if got := l.weightAt(now, hl); math.Abs(got-5) > 1e-9 {
		t.Fatalf("left weight = %v, want 5", got)
	}
	if got := right.weightAt(now, hl); math.Abs(got-5) > 1e-9 {
		t.Fatalf("right weight = %v, want 5", got)
	}
	if len(l.samples) != 5 || len(right.samples) != 5 {
		t.Fatalf("sample partition = %d/%d, want 5/5", len(l.samples), len(right.samples))
	}
	for _, k := range l.samples {
		if !k.Less(tenantKey(2, "k05")) {
			t.Fatalf("left sample %q at or above split key", k)
		}
	}
	for _, k := range right.samples {
		if k.Less(tenantKey(2, "k05")) {
			t.Fatalf("right sample %q below split key", k)
		}
	}
	// Merge folds the signal back together.
	l.absorb(right)
	if got := l.weightAt(now, hl); math.Abs(got-10) > 1e-9 {
		t.Fatalf("absorbed weight = %v, want 10", got)
	}
	if len(l.samples) != 10 {
		t.Fatalf("absorbed samples = %d, want 10", len(l.samples))
	}
}

func TestBoundedMiddleKeyFallback(t *testing.T) {
	c := newTestCluster(t, 3)
	ds := NewDistSender(c, Identity{Tenant: 2})
	ctx := context.Background()
	for i := 0; i < 11; i++ {
		k := tenantKey(2, fmt.Sprintf("k%02d", i))
		if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{putReq(k, "v")}}); err != nil {
			t.Fatal(err)
		}
	}
	n, _ := c.Node(1)
	mid := boundedMiddleKey(n, keys.MakeTenantSpan(2))
	if !mid.Equal(tenantKey(2, "k05")) {
		t.Fatalf("boundedMiddleKey = %q, want k05", mid)
	}
	// An empty span has no midpoint.
	if got := boundedMiddleKey(n, keys.MakeTenantSpan(7)); got != nil {
		t.Fatalf("boundedMiddleKey on empty span = %q, want nil", got)
	}
}

func TestLoadBasedSplit(t *testing.T) {
	reg := metric.NewRegistry()
	c := newLoadCluster(t, 3, ClusterConfig{
		LoadSplitQPSThreshold: 0.5,
		LoadHalfLife:          10 * time.Second,
		RangeMetrics:          NewRangeMetrics(reg),
	}, nil)
	ds := NewDistSender(c, Identity{Tenant: 2})
	ctx := context.Background()
	before := len(c.Descriptors())
	// Each single-request batch contributes one reservoir sample; well before
	// 40 batches the decayed QPS crosses 0.5 and the range splits at the
	// sample median.
	for i := 0; i < 40; i++ {
		k := tenantKey(2, fmt.Sprintf("k%02d", i))
		if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{putReq(k, "v")}}); err != nil {
			t.Fatal(err)
		}
	}
	if after := len(c.Descriptors()); after <= before {
		t.Fatalf("descriptors %d -> %d: no load split happened", before, after)
	}
	if got := c.cfg.RangeMetrics.LoadSplits.Value(); got < 1 {
		t.Fatalf("kv.ranges.split.load = %d, want >= 1", got)
	}
	assertDirectoryPartitions(t, c)
	// Data stays readable across the split.
	for i := 0; i < 40; i++ {
		k := tenantKey(2, fmt.Sprintf("k%02d", i))
		resp, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{getReq(k)}})
		if err != nil || !resp.Responses[0].Exists {
			t.Fatalf("get %q after split: exists=%v err=%v", k, resp != nil && resp.Responses[0].Exists, err)
		}
	}
}

// assertDirectoryPartitions checks the range directory tiles the keyspace:
// the first range starts at MinKey.Next(), the last ends at MaxKey, and each
// range begins exactly where its predecessor ended.
func assertDirectoryPartitions(t *testing.T, c *Cluster) {
	t.Helper()
	descs := c.Descriptors()
	if len(descs) == 0 {
		t.Fatal("no ranges")
	}
	if !descs[0].Span.Key.Equal(keys.MinKey.Next()) {
		t.Fatalf("first range starts at %q, want MinKey.Next()", descs[0].Span.Key)
	}
	if !descs[len(descs)-1].Span.EndKey.Equal(keys.MaxKey) {
		t.Fatalf("last range ends at %q, want MaxKey", descs[len(descs)-1].Span.EndKey)
	}
	for i := 1; i < len(descs); i++ {
		if !descs[i].Span.Key.Equal(descs[i-1].Span.EndKey) {
			t.Fatalf("gap/overlap between range %d (ends %q) and %d (starts %q)",
				descs[i-1].RangeID, descs[i-1].Span.EndKey, descs[i].RangeID, descs[i].Span.Key)
		}
	}
}

func TestColdRangeMergeViaTick(t *testing.T) {
	mc := timeutil.NewManualClock(time.Unix(10_000, 0))
	reg := metric.NewRegistry()
	c := newLoadCluster(t, 3, ClusterConfig{
		MergeEnabled:          true,
		MergeDelay:            10 * time.Second,
		LoadSplitQPSThreshold: 100,
		LeaseDuration:         time.Hour,
		RangeMetrics:          NewRangeMetrics(reg),
	}, mc)
	if err := c.SplitAt(keys.MakeTenantPrefix(2)); err != nil {
		t.Fatal(err)
	}
	if err := c.SplitAt(tenantKey(2, "m")); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Descriptors()); got != 3 {
		t.Fatalf("ranges after splits = %d, want 3", got)
	}
	c.Tick() // drains needs-lease, queues merge checks (due in MergeDelay)
	if got := len(c.Descriptors()); got != 3 {
		t.Fatalf("merged before hysteresis delay: %d ranges", got)
	}
	mc.Advance(10 * time.Second)
	c.Tick()
	// The two tenant-2 ranges collapse; the range starting at MinKey.Next()
	// has no tenant prefix and must refuse to merge.
	if got := len(c.Descriptors()); got != 2 {
		t.Fatalf("ranges after merge tick = %d, want 2", got)
	}
	if got := c.LastTickStats().Merges; got != 1 {
		t.Fatalf("tick merges = %d, want 1", got)
	}
	if got := c.cfg.RangeMetrics.Merges.Value(); got != 1 {
		t.Fatalf("kv.ranges.merged = %d, want 1", got)
	}
	assertDirectoryPartitions(t, c)
	// The merged range has a leaseholder (the catch-up donor) and converged
	// replicas.
	if err := c.CatchUpReplicas(); err != nil {
		t.Fatal(err)
	}
	for _, st := range c.ReplicaStatuses() {
		if st.Applied != st.Commit {
			t.Fatalf("replica %d/%d applied %d != commit %d", st.RangeID, st.Node, st.Applied, st.Commit)
		}
	}
}

func TestMergeAtRoundTrip(t *testing.T) {
	c := newTestCluster(t, 3)
	ds := NewDistSender(c, Identity{Tenant: 2})
	ctx := context.Background()
	put := func(s, v string) {
		t.Helper()
		if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{putReq(tenantKey(2, s), v)}}); err != nil {
			t.Fatal(err)
		}
	}
	put("a", "1")
	put("z", "2")
	if err := c.SplitAt(keys.MakeTenantPrefix(2)); err != nil {
		t.Fatal(err)
	}
	if err := c.SplitAt(tenantKey(2, "m")); err != nil {
		t.Fatal(err)
	}
	// Writes after the split land in separate ranges.
	put("b", "3")
	put("y", "4")
	before := len(c.Descriptors())
	did, err := c.MergeAt(keys.MakeTenantPrefix(2))
	if err != nil || !did {
		t.Fatalf("MergeAt = (%v, %v), want (true, nil)", did, err)
	}
	if after := len(c.Descriptors()); after != before-1 {
		t.Fatalf("descriptors %d -> %d, want one fewer", before, after)
	}
	assertDirectoryPartitions(t, c)
	for s, v := range map[string]string{"a": "1", "z": "2", "b": "3", "y": "4"} {
		resp, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{getReq(tenantKey(2, s))}})
		if err != nil {
			t.Fatalf("get %q after merge: %v", s, err)
		}
		if !resp.Responses[0].Exists || string(resp.Responses[0].Value) != v {
			t.Fatalf("get %q after merge = %+v, want %q", s, resp.Responses[0], v)
		}
	}
	// Writes keep working on the merged range.
	put("c", "5")
	resp, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{getReq(tenantKey(2, "c"))}})
	if err != nil || !resp.Responses[0].Exists {
		t.Fatalf("post-merge write not readable: %+v err=%v", resp, err)
	}
}

func TestMergeRefusesTenantBoundary(t *testing.T) {
	c := newTestCluster(t, 3)
	if err := c.SplitAt(keys.MakeTenantPrefix(2)); err != nil {
		t.Fatal(err)
	}
	if err := c.SplitAt(keys.MakeTenantPrefix(3)); err != nil {
		t.Fatal(err)
	}
	before := len(c.Descriptors())
	// The range [t2, t3) must not merge with [t3, max): no two tenants share
	// a range.
	did, err := c.MergeAt(keys.MakeTenantPrefix(2))
	if err != nil {
		t.Fatal(err)
	}
	if did {
		t.Fatal("merge across a tenant boundary happened")
	}
	if got := len(c.Descriptors()); got != before {
		t.Fatalf("descriptors changed %d -> %d", before, got)
	}
}

func TestMergeRefusesDifferentReplicaSets(t *testing.T) {
	c := newLoadCluster(t, 4, ClusterConfig{ReplicationFactor: 3}, nil)
	if err := c.SplitAt(keys.MakeTenantPrefix(2)); err != nil {
		t.Fatal(err)
	}
	if err := c.SplitAt(tenantKey(2, "m")); err != nil {
		t.Fatal(err)
	}
	// Move one replica of the right range so the sets diverge.
	var right *RangeDescriptor
	for _, d := range c.Descriptors() {
		if d.Span.Key.Equal(tenantKey(2, "m")) {
			right = d
		}
	}
	if right == nil {
		t.Fatal("right range not found")
	}
	var to NodeID
	for _, n := range c.Nodes() {
		member := false
		for _, r := range right.Replicas {
			if r == n.id {
				member = true
			}
		}
		if !member {
			to = n.id
		}
	}
	if err := c.MoveReplica(right.RangeID, right.Replicas[0], to); err != nil {
		t.Fatal(err)
	}
	did, err := c.MergeAt(keys.MakeTenantPrefix(2))
	if err != nil {
		t.Fatal(err)
	}
	if did {
		t.Fatal("merge with mismatched replica sets happened")
	}
}

func TestTickVisitsOnlyChangedRanges(t *testing.T) {
	c := newTestCluster(t, 3)
	ds := NewDistSender(c, Identity{Tenant: 2})
	ctx := context.Background()
	// Build up a bunch of ranges, then traffic on a few.
	for i := 0; i < 8; i++ {
		if err := c.SplitAt(tenantKey(2, fmt.Sprintf("s%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		k := tenantKey(2, fmt.Sprintf("s%02dx", i%3))
		if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{putReq(k, "v")}}); err != nil {
			t.Fatal(err)
		}
	}
	c.Tick() // drains the changed set and any pending lease work
	c.Tick() // nothing moved since: the tick must visit zero ranges
	if got := c.LastTickStats(); got.RangesVisited != 0 {
		t.Fatalf("idle tick visited %d ranges, want 0 (stats %+v)", got.RangesVisited, got)
	}
	// One more batch dirties exactly one range.
	if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{putReq(tenantKey(2, "s05x"), "v")}}); err != nil {
		t.Fatal(err)
	}
	c.Tick()
	if got := c.LastTickStats().RangesVisited; got != 1 {
		t.Fatalf("tick after one hot range visited %d, want 1", got)
	}
}

func TestLoadAwareLeaseRebalance(t *testing.T) {
	c := newLoadCluster(t, 3, ClusterConfig{LoadRebalancing: true}, nil)
	if err := c.SplitAt(keys.MakeTenantPrefix(3)); err != nil {
		t.Fatal(err)
	}
	now := c.clock.Now()
	hl := c.cfg.LoadHalfLife
	// Pin both leases on node 1 and make it carry all the load.
	states := c.rangesByID()
	if len(states) != 2 {
		t.Fatalf("ranges = %d, want 2", len(states))
	}
	n1, _ := c.Node(1)
	for _, rs := range states {
		if err := rs.group.AcquireLease(1); err != nil {
			t.Fatal(err)
		}
		c.idx.noteLease(rs.desc.RangeID, 1, c.renewAt())
		rs.load.record(now, hl, 100, 0, nil)
		c.markChanged(rs)
		n1.leaseLoad.add(now, hl, 100)
	}
	c.Tick()
	stats := c.LastTickStats()
	if stats.LoadLeaseTransfers != 2 {
		t.Fatalf("load lease transfers = %d, want 2 (stats %+v)", stats.LoadLeaseTransfers, stats)
	}
	// Both leases move off the doubly-hot node, and — because each transfer
	// credits its target's counter before the next candidate is considered —
	// they land on *different* cold nodes. Without the credit both would pick
	// the same coldest node and just relocate the hotspot.
	holders := make(map[NodeID]int)
	for _, rs := range c.rangesByID() {
		lh, ok := rs.group.Leaseholder()
		if !ok {
			t.Fatalf("range %d lost its lease", rs.desc.RangeID)
		}
		holders[lh]++
	}
	if holders[1] != 0 {
		t.Fatalf("node 1 still holds %d leases, want 0 (holders %v)", holders[1], holders)
	}
	if holders[2] != 1 || holders[3] != 1 {
		t.Fatalf("leases piled up instead of spreading: holders %v, want one each on nodes 2 and 3", holders)
	}
}

func TestRebalanceReplicasPicksHottestRange(t *testing.T) {
	c := newLoadCluster(t, 3, ClusterConfig{ReplicationFactor: 3}, nil)
	if err := c.SplitAt(keys.MakeTenantPrefix(3)); err != nil {
		t.Fatal(err)
	}
	if err := c.SplitAt(keys.MakeTenantPrefix(4)); err != nil {
		t.Fatal(err)
	}
	cheap := CostConfig{
		ReadBatchOverhead:  time.Nanosecond,
		WriteBatchOverhead: time.Nanosecond,
		ReadRequestCost:    time.Nanosecond,
		WriteRequestCost:   time.Nanosecond,
	}
	n4 := NewNode(NodeConfig{ID: 4, VCPUs: 2, Cost: cheap})
	if err := c.AddNode(n4); err != nil {
		t.Fatal(err)
	}
	now := c.clock.Now()
	hl := c.cfg.LoadHalfLife
	var hot RangeID
	for _, rs := range c.rangesByID() {
		if rs.desc.Span.Key.Equal(keys.MakeTenantPrefix(3)) {
			hot = rs.desc.RangeID
			rs.load.record(now, hl, 50, 0, nil)
		} else {
			rs.load.record(now, hl, 5, 0, nil)
		}
	}
	if moves := c.RebalanceReplicas(1); moves != 1 {
		t.Fatalf("RebalanceReplicas moved %d, want 1", moves)
	}
	// The hottest range is the one that moved to the empty node.
	hotRS := c.rangeByID(hot)
	if hotRS == nil || !hasReplica(hotRS, 4) {
		t.Fatalf("hottest range %d did not move to node 4", hot)
	}
	// Move correctness: the shifted replica's data matches and the index
	// aggregates agree with the descriptors.
	assertReplicaAggregates(t, c)
}

// assertReplicaAggregates cross-checks the maintenance index's per-node
// replica counts against a brute-force recount from the directory — the
// regression guard for the incremental-aggregate refactor.
func assertReplicaAggregates(t *testing.T, c *Cluster) {
	t.Helper()
	want := make(map[NodeID]int)
	for _, d := range c.Descriptors() {
		for _, nid := range d.Replicas {
			want[nid]++
		}
	}
	got := c.ReplicaCounts()
	for _, n := range c.Nodes() {
		if got[n.id] != want[n.id] {
			t.Fatalf("node %d: indexed replica count %d != recount %d (got %v want %v)",
				n.id, got[n.id], want[n.id], got, want)
		}
	}
}

func TestAggregatesSurviveSplitMoveMergeDrain(t *testing.T) {
	c := newLoadCluster(t, 4, ClusterConfig{ReplicationFactor: 3}, nil)
	if err := c.SplitAt(keys.MakeTenantPrefix(2)); err != nil {
		t.Fatal(err)
	}
	if err := c.SplitAt(tenantKey(2, "m")); err != nil {
		t.Fatal(err)
	}
	if err := c.SplitAt(keys.MakeTenantPrefix(3)); err != nil {
		t.Fatal(err)
	}
	assertReplicaAggregates(t, c)

	// Merge the two tenant-2 ranges back.
	if did, err := c.MergeAt(keys.MakeTenantPrefix(2)); err != nil || !did {
		t.Fatalf("merge = (%v, %v)", did, err)
	}
	assertReplicaAggregates(t, c)

	// Drain every replica off node 2.
	if err := c.DrainNodeReplicas(2); err != nil {
		t.Fatal(err)
	}
	if got := c.ReplicaCounts()[2]; got != 0 {
		t.Fatalf("node 2 still has %d replicas after drain", got)
	}
	assertReplicaAggregates(t, c)

	// Lease bookkeeping agrees with the replication groups after a tick.
	c.Tick()
	for _, rs := range c.rangesByID() {
		lh, ok := rs.group.Leaseholder()
		if !ok {
			continue
		}
		idxLH, idxOK := c.idx.holderOf(rs.desc.RangeID)
		if !idxOK || idxLH != lh {
			t.Fatalf("range %d: index holder (%d, %v) != group leaseholder %d",
				rs.desc.RangeID, idxLH, idxOK, lh)
		}
	}
}

func TestLoadReplicaMoveReachesColdNode(t *testing.T) {
	// A split-up hot range's pieces inherit the parent's replica set, so when
	// every replica peer is nearly as hot as the leaseholder no lease transfer
	// helps — the load pass must move the replica itself to a cold non-member
	// node, with the lease travelling along.
	c := newLoadCluster(t, 5, ClusterConfig{LoadRebalancing: true, ReplicationFactor: 3}, nil)
	if err := c.SplitAt(keys.MakeTenantPrefix(3)); err != nil {
		t.Fatal(err)
	}
	now := c.clock.Now()
	hl := c.cfg.LoadHalfLife
	var rs *rangeState
	for _, s := range c.rangesByID() {
		if s.desc.Span.Key.Equal(keys.MakeTenantPrefix(3)) {
			rs = s
		}
	}
	if rs == nil {
		t.Fatal("split range not found")
	}
	members := map[NodeID]bool{}
	for _, nid := range rs.group.Replicas() {
		members[nid] = true
	}
	lh := rs.group.Replicas()[0]
	if err := rs.group.AcquireLease(lh); err != nil {
		t.Fatal(err)
	}
	c.idx.noteLease(rs.desc.RangeID, lh, c.renewAt())
	rs.load.record(now, hl, 20, 0, nil)
	c.markChanged(rs)
	// The leaseholder is scorching and its replica peers are nearly as hot,
	// so no peer passes the transfer hysteresis; the non-member nodes stay
	// cold.
	for _, n := range c.Nodes() {
		switch {
		case n.id == lh:
			n.leaseLoad.add(now, hl, 100)
		case members[n.id]:
			n.leaseLoad.add(now, hl, 95)
		}
	}
	c.Tick()
	stats := c.LastTickStats()
	if stats.LoadReplicaMoves != 1 {
		t.Fatalf("load replica moves = %d, want 1 (stats %+v)", stats.LoadReplicaMoves, stats)
	}
	if stats.LoadLeaseTransfers != 0 {
		t.Fatalf("load lease transfers = %d, want 0 (stats %+v)", stats.LoadLeaseTransfers, stats)
	}
	moved := c.rangeByID(rs.desc.RangeID)
	var target NodeID
	for _, nid := range moved.group.Replicas() {
		if nid == lh {
			t.Fatalf("leaseholder %d still has a replica after the move", lh)
		}
		if !members[nid] {
			target = nid
		}
	}
	if target == 0 {
		t.Fatalf("no replica landed outside the original set %v", moved.group.Replicas())
	}
	if got, ok := moved.group.Leaseholder(); !ok || got != target {
		t.Fatalf("lease did not travel with the replica: holder %d ok=%v, want %d", got, ok, target)
	}
	assertReplicaAggregates(t, c)
}

func TestEffectiveLoadOccupancyInflation(t *testing.T) {
	c := newLoadCluster(t, 1, ClusterConfig{}, nil)
	n, _ := c.Node(1)
	now := c.clock.Now()
	hl := c.cfg.LoadHalfLife
	n.leaseLoad.add(now, hl, 10)
	if eff, infl := c.nodeLoad(n, now, hl); math.Abs(eff-10) > 0.01 || infl != 1 {
		t.Fatalf("idle node: eff %.3f infl %.3f, want 10 and 1", eff, infl)
	}
	// An occupancy of 2 batches per vCPU doubles the congestion term:
	// inflation 1 + 2 = 3.
	n.waitLoad.add(now, hl, 2*float64(n.vcpus)*hl.Seconds()/math.Ln2)
	if eff, infl := c.nodeLoad(n, now, hl); math.Abs(infl-3) > 0.01 || math.Abs(eff-30) > 0.1 {
		t.Fatalf("queued node: eff %.3f infl %.3f, want 30 and 3", eff, infl)
	}
	// The multiplier is capped so one congested sample cannot dominate every
	// comparison for a half-life.
	n.waitLoad.add(now, hl, 1000*float64(n.vcpus)*hl.Seconds())
	if _, infl := c.nodeLoad(n, now, hl); infl != 4 {
		t.Fatalf("saturated node inflation %.3f, want capped at 4", infl)
	}
}

func TestBatchPathFeedsWaitLoad(t *testing.T) {
	c := newTestCluster(t, 3)
	ds := NewDistSender(c, Identity{Tenant: 2})
	if _, err := ds.Send(context.Background(), &kvpb.BatchRequest{
		Tenant: 2, Requests: []kvpb.Request{putReq(tenantKey(2, "k"), "v")},
	}); err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, n := range c.Nodes() {
		total += n.waitLoad.value(c.clock.Now(), c.cfg.LoadHalfLife)
	}
	if total <= 0 {
		t.Fatal("no node accumulated wait load after a served batch")
	}
}
