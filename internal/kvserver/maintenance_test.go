package kvserver

import (
	"context"
	"fmt"
	"testing"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
)

func TestCordonedNodeShedsLeases(t *testing.T) {
	c := newTestCluster(t, 3)
	for tid := keys.TenantID(2); tid < 8; tid++ {
		c.SplitAt(keys.MakeTenantPrefix(tid))
	}
	for i := 0; i < 5; i++ {
		c.Tick()
	}
	counts := c.LeaseCounts()
	if counts[1] == 0 {
		t.Skip("node 1 holds no leases after balancing")
	}
	n1, _ := c.Node(1)
	n1.SetCordoned(true)
	if n1.Live() {
		t.Fatal("cordoned node reports live")
	}
	for i := 0; i < 5; i++ {
		c.Tick()
	}
	counts = c.LeaseCounts()
	if counts[1] != 0 {
		t.Fatalf("cordoned node still holds %d leases", counts[1])
	}
	// Writes keep flowing: the surviving quorum serves.
	ds := NewDistSender(c, Identity{Tenant: 2})
	ctx := context.Background()
	if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
		putReq(tenantKey(2, "during-outage"), "v")}}); err != nil {
		t.Fatalf("write during cordon: %v", err)
	}
	// Un-cordon: the node becomes eligible again, catches up, and can
	// serve reads of data written while it was out.
	n1.SetCordoned(false)
	for i := 0; i < 10; i++ {
		c.Tick()
	}
	if !n1.Live() {
		t.Fatal("un-cordoned node not live")
	}
	resp, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
		getReq(tenantKey(2, "during-outage"))}})
	if err != nil || !resp.Responses[0].Exists {
		t.Fatalf("read after recovery: %v", err)
	}
}

func TestClusterRunGC(t *testing.T) {
	c := newTestCluster(t, 3)
	ds := NewDistSender(c, Identity{Tenant: 2})
	ctx := context.Background()
	k := tenantKey(2, "hot")
	// Build version history.
	for i := 0; i < 10; i++ {
		if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
			putReq(k, fmt.Sprintf("v%d", i))}}); err != nil {
			t.Fatal(err)
		}
	}
	keep := c.Clock().Now()
	removed, err := c.RunGC(keep)
	if err != nil {
		t.Fatal(err)
	}
	// 9 old versions × 3 replicas.
	if removed != 27 {
		t.Fatalf("gc removed %d versions, want 27", removed)
	}
	// The newest version survives.
	resp, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{getReq(k)}})
	if err != nil || string(resp.Responses[0].Value) != "v9" {
		t.Fatalf("after gc = %q, %v", resp.Responses[0].Value, err)
	}
	// A second GC finds nothing.
	removed, err = c.RunGC(c.Clock().Now())
	if err != nil || removed != 0 {
		t.Fatalf("second gc removed %d, %v", removed, err)
	}
}

func TestTenantStorageBytes(t *testing.T) {
	c := newTestCluster(t, 3)
	ctx := context.Background()
	// Carve two tenants and fill them unevenly.
	for _, tid := range []keys.TenantID{2, 3} {
		c.SplitAt(keys.MakeTenantPrefix(tid))
		c.SplitAt(keys.MakeTenantSpan(tid).EndKey)
	}
	ds2 := NewDistSender(c, Identity{Tenant: 2})
	ds3 := NewDistSender(c, Identity{Tenant: 3})
	for i := 0; i < 10; i++ {
		ds2.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
			putReq(tenantKey(2, fmt.Sprintf("k%02d", i)), "0123456789")}})
	}
	ds3.Send(ctx, &kvpb.BatchRequest{Tenant: 3, Requests: []kvpb.Request{
		putReq(tenantKey(3, "solo"), "x")}})

	b2, err := c.TenantStorageBytes(2)
	if err != nil {
		t.Fatal(err)
	}
	b3, err := c.TenantStorageBytes(3)
	if err != nil {
		t.Fatal(err)
	}
	if b2 <= b3 || b3 == 0 {
		t.Fatalf("storage accounting: tenant2=%d tenant3=%d", b2, b3)
	}
	// Overwrites do not inflate the logical size (old versions are not
	// billed).
	before := b2
	for i := 0; i < 5; i++ {
		ds2.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
			putReq(tenantKey(2, "k00"), "0123456789")}})
	}
	after, _ := c.TenantStorageBytes(2)
	if after != before {
		t.Fatalf("logical size changed on overwrite: %d -> %d", before, after)
	}
	// Empty tenant reads as zero.
	if b, _ := c.TenantStorageBytes(99); b != 0 {
		t.Fatalf("empty tenant storage = %d", b)
	}
}
