package kvserver

import (
	"context"
	"fmt"
	"testing"
	"time"

	"crdbserverless/internal/hlc"
	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/lsm"
	"crdbserverless/internal/mvcc"
)

// newRecoveryCluster builds a cluster with durable stores and an aggressive
// raft log retention so truncation and snapshot catch-up trigger quickly.
func newRecoveryCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	cheap := CostConfig{
		ReadBatchOverhead:  time.Nanosecond,
		WriteBatchOverhead: time.Nanosecond,
		ReadRequestCost:    time.Nanosecond,
		WriteRequestCost:   time.Nanosecond,
	}
	var nodes []*Node
	for i := 1; i <= n; i++ {
		nodes = append(nodes, NewNode(NodeConfig{
			ID: NodeID(i), VCPUs: 2, Cost: cheap,
			LSM: lsm.Options{Durable: lsm.NewDir(), WALSegmentSize: 4 << 10},
		}))
	}
	c, err := NewCluster(ClusterConfig{RaftLogRetention: 2}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestSplitSeedsRightGroupForLaggingReplica reproduces the split × truncation
// staleness hole: a replica that is down across a range split used to heal
// its right-span keys by replaying the parent group's pre-split log entries.
// With log truncation those entries disappear, and the split-created right
// group — born at commit zero — considered the laggard caught up, leaving its
// right-span state stale forever. SeedState makes the right group inherit the
// parent's commit and applied indexes, so the laggard reads as behind the
// truncation point and heals via snapshot.
func TestSplitSeedsRightGroupForLaggingReplica(t *testing.T) {
	c := newRecoveryCluster(t, 3)
	ds := NewDistSender(c, Identity{Tenant: 2})
	ctx := context.Background()
	put := func(k keys.Key, v string) {
		t.Helper()
		if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{putReq(k, v)}}); err != nil {
			t.Fatalf("put %q: %v", k, err)
		}
	}

	// Seed both sides of the future split point while everyone is healthy.
	put(tenantKey(2, "a-base"), "old")
	put(tenantKey(2, "m-stale"), "old")

	// Node 3 goes dark; writes land on the surviving quorum only.
	n3, _ := c.Node(3)
	n3.SetCordoned(true)
	for i := 0; i < 3; i++ {
		c.Tick()
	}
	put(tenantKey(2, "m-stale"), "new") // the write node 3 must eventually see

	// Split while node 3 is down. The right range inherits the parent's
	// replicas, including the lagging node 3.
	if err := c.SplitAt(tenantKey(2, "m")); err != nil {
		t.Fatal(err)
	}

	// Left-span writes advance the parent group's log past node 3's applied
	// index; with retention 2 the pre-split entries truncate away, so log
	// replay can no longer deliver the right-span write to node 3.
	for i := 0; i < 10; i++ {
		put(tenantKey(2, fmt.Sprintf("a%02d", i)), "v")
	}

	// Node 3 revives and catches up everywhere.
	n3.SetCordoned(false)
	for i := 0; i < 3; i++ {
		c.Tick()
	}
	if err := c.CatchUpReplicas(); err != nil {
		t.Fatal(err)
	}

	// Node 3's own engine must hold the value written while it was down.
	readTs := hlc.Timestamp{WallTime: 1<<62 - 1}
	v, ok, err := mvcc.Get(n3.Engine(), tenantKey(2, "m-stale"), readTs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || string(v) != "new" {
		t.Fatalf("node 3 m-stale = %q (ok=%v), want \"new\" — right group never healed the laggard", v, ok)
	}
	if c.RaftSnapshots() == 0 {
		t.Fatal("expected at least one snapshot catch-up")
	}
	// Convergence: every replica of every range reaches its group's commit.
	for _, st := range c.ReplicaStatuses() {
		if st.Applied != st.Commit {
			t.Fatalf("range %d node %d applied %d != commit %d", st.RangeID, st.Node, st.Applied, st.Commit)
		}
	}
}

// TestNodeCrashRecoversDurableState: killing a node's store mid-stream (torn
// unsynced tail) and recovering it preserves every acked write, and the
// replication layer reconciles the store's regressed applied index.
func TestNodeCrashRecoversDurableState(t *testing.T) {
	c := newRecoveryCluster(t, 3)
	ds := NewDistSender(c, Identity{Tenant: 2})
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		k := tenantKey(2, fmt.Sprintf("k%03d", i))
		if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{putReq(k, fmt.Sprintf("v%d", i))}}); err != nil {
			t.Fatal(err)
		}
	}
	n2, _ := c.Node(2)
	n2.SetCordoned(true)
	if err := n2.Crash(32); err != nil {
		t.Fatal(err)
	}
	if err := c.RecoverNode(2); err != nil {
		t.Fatal(err)
	}
	n2.SetCordoned(false)
	if err := c.CatchUpReplicas(); err != nil {
		t.Fatal(err)
	}
	readTs := hlc.Timestamp{WallTime: 1<<62 - 1}
	for i := 0; i < 40; i++ {
		k := tenantKey(2, fmt.Sprintf("k%03d", i))
		v, ok, err := mvcc.Get(n2.Engine(), k, readTs, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("after crash recovery, node 2 %q = %q (ok=%v), want v%d", k, v, ok, i)
		}
	}
	for _, st := range c.ReplicaStatuses() {
		if st.Applied != st.Commit {
			t.Fatalf("range %d node %d applied %d != commit %d", st.RangeID, st.Node, st.Applied, st.Commit)
		}
	}
}
