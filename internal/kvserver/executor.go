package kvserver

import (
	"runtime"
	"sync"
	"time"

	"crdbserverless/internal/timeutil"
)

// executor models a node's physical CPUs as a pool of vCPU workers consuming
// a task queue. Each task occupies one worker for its service duration, so
// when offered load exceeds capacity a queue builds — the overload condition
// admission control exists to manage (§5.1.1). The queue depth doubles as
// the "runnable goroutines" signal for the AIMD slot loop, and sustained
// deep queues make the node fail liveness (shedding its leases, as in the
// paper's no-limits baseline of Fig 12).
type executor struct {
	clock timeutil.Clock
	vcpus int
	// accountOnly skips the blocking sleep and only records busy time.
	// Simulated-time deployments (manual clocks) use this: CPU cost is
	// modeled by accounting, and blocking workers on a manual clock would
	// require every control-plane caller to drive time through KV internals.
	accountOnly bool

	mu struct {
		sync.Mutex
		queued   int
		running  int
		busyTime time.Duration // cumulative worker-busy time
		closed   bool
	}
	tasks chan task
	quit  chan struct{}
	wg    sync.WaitGroup
}

type task struct {
	dur  time.Duration
	done chan struct{}
}

// newExecutor starts vcpus workers. Service durations elapse on the given
// clock: with the real clock workers sleep; with a manual clock they block
// until the test advances time.
func newExecutor(clock timeutil.Clock, vcpus int) *executor {
	if vcpus <= 0 {
		vcpus = 1
	}
	_, manual := clock.(*timeutil.ManualClock)
	ex := &executor{
		clock:       clock,
		vcpus:       vcpus,
		accountOnly: manual,
		tasks:       make(chan task, 1<<16),
		quit:        make(chan struct{}),
	}
	for i := 0; i < vcpus; i++ {
		ex.wg.Add(1)
		go ex.worker()
	}
	return ex
}

func (ex *executor) worker() {
	defer ex.wg.Done()
	for {
		select {
		case <-ex.quit:
			return
		case t := <-ex.tasks:
			ex.mu.Lock()
			ex.mu.queued--
			ex.mu.running++
			ex.mu.Unlock()
			if t.dur > 0 && !ex.accountOnly {
				ex.occupy(t.dur)
			}
			ex.mu.Lock()
			ex.mu.running--
			ex.mu.busyTime += t.dur
			ex.mu.Unlock()
			close(t.done)
		}
	}
}

// occupySpinTail is how much of each task's service time a worker burns by
// spinning rather than sleeping. Timer wake-ups under scheduler load overrun
// by up to a couple of milliseconds, and down a deep queue those overruns
// accumulate into the measured wait — a queue of ten 2ms tasks can read as
// 40ms instead of 20ms. Sleeping to within the tail and spinning the rest
// makes service time accurate to microseconds at a bounded CPU cost.
const occupySpinTail = 200 * time.Microsecond

// occupy holds the worker for dur of wall time: a sleep for the bulk, then a
// spin to the deadline.
func (ex *executor) occupy(dur time.Duration) {
	deadline := ex.clock.Now().Add(dur)
	if dur > occupySpinTail {
		ex.clock.Sleep(dur - occupySpinTail)
	}
	for ex.clock.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// run executes a task of the given service duration, blocking until a worker
// has completed it (or the executor shuts down).
func (ex *executor) run(dur time.Duration) {
	ex.mu.Lock()
	if ex.mu.closed {
		ex.mu.Unlock()
		return
	}
	ex.mu.queued++
	ex.mu.Unlock()
	t := task{dur: dur, done: make(chan struct{})}
	select {
	case ex.tasks <- t:
	case <-ex.quit:
		ex.mu.Lock()
		ex.mu.queued--
		ex.mu.Unlock()
		return
	}
	select {
	case <-t.done:
	case <-ex.quit:
	}
}

// queueDepth returns the number of tasks waiting for a worker — the
// runnable-queue length the AIMD loop samples.
func (ex *executor) queueDepth() int {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.mu.queued
}

// busyTime returns cumulative worker-busy time, for utilization accounting.
func (ex *executor) busyTime() time.Duration {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.mu.busyTime
}

// close stops the executor. Queued tasks are abandoned; callers blocked in
// run return.
func (ex *executor) close() {
	ex.mu.Lock()
	if ex.mu.closed {
		ex.mu.Unlock()
		return
	}
	ex.mu.closed = true
	ex.mu.Unlock()
	close(ex.quit)
	ex.wg.Wait()
}
