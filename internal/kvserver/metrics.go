package kvserver

import "crdbserverless/internal/metric"

// RangeMetrics counts range-management decisions: load and size splits,
// cold-range merges, and load-driven lease transfers. All methods are
// nil-receiver safe so clusters without a registry pay nothing.
type RangeMetrics struct {
	LoadSplits         *metric.Counter
	SizeSplits         *metric.Counter
	Merges             *metric.Counter
	LeaseTransfersLoad *metric.Counter
	ReplicaMovesLoad   *metric.Counter
}

// NewRangeMetrics registers the range-management counters on reg.
func NewRangeMetrics(reg *metric.Registry) *RangeMetrics {
	return &RangeMetrics{
		LoadSplits:         reg.NewCounter("kv.ranges.split.load"),
		SizeSplits:         reg.NewCounter("kv.ranges.split.size"),
		Merges:             reg.NewCounter("kv.ranges.merged"),
		LeaseTransfersLoad: reg.NewCounter("kv.leases.transferred.load"),
		ReplicaMovesLoad:   reg.NewCounter("kv.replicas.moved.load"),
	}
}

func (m *RangeMetrics) loadSplit() {
	if m != nil {
		m.LoadSplits.Inc(1)
	}
}

func (m *RangeMetrics) sizeSplit() {
	if m != nil {
		m.SizeSplits.Inc(1)
	}
}

func (m *RangeMetrics) merge() {
	if m != nil {
		m.Merges.Inc(1)
	}
}

func (m *RangeMetrics) loadLeaseTransfer() {
	if m != nil {
		m.LeaseTransfersLoad.Inc(1)
	}
}

func (m *RangeMetrics) loadReplicaMove() {
	if m != nil {
		m.ReplicaMovesLoad.Inc(1)
	}
}
