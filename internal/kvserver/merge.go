package kvserver

import (
	"errors"

	"crdbserverless/internal/keys"
)

// Cold-range merging: the inverse of splitLocked. Two adjacent ranges with
// identical replica sets collapse into one — a fresh range over the union
// span whose replication group is seeded (SeedState) at the sum of the
// parents' commit indexes, with each replica's applied index the sum of its
// parents' applied indexes. The span data never moves: it already lives in
// every replica's engine. A replica that was lagging in either parent reads
// as lagging in the merged group and heals via snapshot from the catch-up
// donor, exactly as split-created groups do.

var errMergeIneligible = errors.New("kvserver: ranges not eligible to merge")

// MergeAt merges the range containing key with its right neighbor, if the
// pair is eligible (adjacent, same replicas, same tenant). It reports
// whether a merge happened; ineligibility is (false, nil), not an error.
func (c *Cluster) MergeAt(key keys.Key) (bool, error) {
	rs, err := c.rangeFor(key)
	if err != nil {
		return false, err
	}
	return c.mergeRight(rs)
}

// mergeRight merges left with its right neighbor. Both range latches are
// held in span order (left before right) for the duration, so no batch
// evaluates on either side mid-merge; the lock-order lint's cycle detection
// treats same-class ordered acquisition as safe.
func (c *Cluster) mergeRight(left *rangeState) (bool, error) {
	left.latch.Lock()
	defer left.latch.Unlock()
	leftDesc := left.descAtomic.Load()
	if c.rangeByID(leftDesc.RangeID) != left {
		return false, nil // merged away while we waited for the latch
	}
	rightDesc := c.dir.next(leftDesc.Span.EndKey)
	if rightDesc == nil {
		return false, nil // last range of the keyspace
	}
	right := c.rangeByID(rightDesc.RangeID)
	if right == nil {
		return false, nil
	}
	right.latch.Lock()
	defer right.latch.Unlock()
	// Re-verify under both latches: a racing split or merge may have
	// changed either side while we acquired locks.
	rightDesc = right.descAtomic.Load()
	if c.rangeByID(rightDesc.RangeID) != right ||
		!rightDesc.Span.Key.Equal(leftDesc.Span.EndKey) {
		return false, nil
	}
	if !mergeEligible(leftDesc, rightDesc) {
		return false, nil
	}

	// Pick the catch-up donor: a live replica that both groups bring to
	// their commit index before seeding, so the merged group always has a
	// snapshot source at the summed commit.
	donor, ok := c.mergeDonor(left, right)
	if !ok {
		return false, errMergeIneligible
	}
	if err := left.group.CatchUp(donor); err != nil {
		return false, err
	}
	if err := right.group.CatchUp(donor); err != nil {
		return false, err
	}

	lc, rc := left.group.CommitIndex(), right.group.CommitIndex()
	applied := make(map[NodeID]uint64, len(leftDesc.Replicas))
	for _, nid := range leftDesc.Replicas {
		var la, ra uint64
		if a, err := left.group.AppliedIndex(nid); err == nil {
			la = a
		}
		if a, err := right.group.AppliedIndex(nid); err == nil {
			ra = a
		}
		applied[nid] = la + ra
	}

	union := keys.Span{Key: leftDesc.Span.Key.Clone(), EndKey: rightDesc.Span.EndKey.Clone()}

	c.mu.Lock()
	merged, err := c.newRangeStateLocked(union, leftDesc.Replicas)
	if err != nil {
		c.mu.Unlock()
		return false, err
	}
	merged.group.SeedState(lc+rc, applied)
	if leftDesc.Generation > rightDesc.Generation {
		merged.desc.Generation = leftDesc.Generation + 1
	} else {
		merged.desc.Generation = rightDesc.Generation + 1
	}
	// Commit: swap both parents for the union descriptor atomically, then
	// retire the parents from the range map and the maintenance index.
	if err := c.dir.mergeReplace(leftDesc.RangeID, rightDesc.RangeID, merged.desc); err != nil {
		c.idx.unregisterRange(merged.desc.RangeID, merged.desc.Replicas)
		delete(c.mu.ranges, merged.desc.RangeID)
		c.mu.Unlock()
		return false, err
	}
	delete(c.mu.ranges, leftDesc.RangeID)
	delete(c.mu.ranges, rightDesc.RangeID)
	left.statsMu.Lock()
	lb := left.writtenBytes
	left.statsMu.Unlock()
	right.statsMu.Lock()
	rb := right.writtenBytes
	right.statsMu.Unlock()
	merged.statsMu.Lock()
	merged.writtenBytes = lb + rb
	merged.statsMu.Unlock()
	merged.load.absorb(left.load)
	merged.load.absorb(right.load)
	mergedID := merged.desc.RangeID
	c.mu.Unlock()

	c.idx.unregisterRange(leftDesc.RangeID, leftDesc.Replicas)
	c.idx.unregisterRange(rightDesc.RangeID, rightDesc.Replicas)

	// Serve without interruption: the donor is caught up in both parents,
	// so it can take the merged lease immediately. On failure the range
	// stays in needsLease and the next tick retries.
	if err := merged.group.AcquireLease(donor); err == nil {
		c.idx.noteLease(mergedID, donor, c.renewAt())
	}
	c.markChanged(merged)
	if c.cfg.MergeEnabled {
		// Cascade: the merged range may itself be cold enough to keep
		// collapsing rightward after another hysteresis delay.
		c.idx.scheduleMergeCheck(mergedID, c.clock.Now().Add(c.cfg.MergeDelay))
	}
	c.cfg.RangeMetrics.merge()
	c.rangeEvent(union.Key, "merge")
	return true, nil
}

// mergeEligible checks the structural merge preconditions: identical
// replica sets and both spans owned by the same tenant (the KV layer
// guarantees no two tenants ever share a range, §3.2.1 — a merge across a
// tenant boundary would violate it).
func mergeEligible(left, right *RangeDescriptor) bool {
	if len(left.Replicas) != len(right.Replicas) {
		return false
	}
	members := make(map[NodeID]struct{}, len(left.Replicas))
	for _, n := range left.Replicas {
		members[n] = struct{}{}
	}
	for _, n := range right.Replicas {
		if _, ok := members[n]; !ok {
			return false
		}
	}
	lt, _, lok := keys.DecodeTenantPrefix(left.Span.Key)
	rt, _, rok := keys.DecodeTenantPrefix(right.Span.Key)
	return lok && rok && lt == rt
}

// mergeDonor picks the live replica both groups catch up before seeding:
// the left leaseholder if live, else the right's, else the first live
// replica in descriptor order.
func (c *Cluster) mergeDonor(left, right *rangeState) (NodeID, bool) {
	if lh, ok := left.group.Leaseholder(); ok && c.liveness(lh) {
		return lh, true
	}
	if lh, ok := right.group.Leaseholder(); ok && c.liveness(lh) {
		return lh, true
	}
	for _, nid := range left.descAtomic.Load().Replicas {
		if c.liveness(nid) {
			return nid, true
		}
	}
	return 0, false
}
