// Package coldstart models and measures the end-to-end cold-start path: the
// time from a client connecting to a suspended tenant until its first query
// returns (§4.3.1, §6.5). The prober decomposes a cold start into the same
// steps the production system has — pod scheduling, SQL process start,
// certificate delivery, the TCP reset/retry penalty, the blocking system
// database reads and writes, authentication, and the first query — and draws
// each step's latency from calibrated distributions, with cross-region costs
// taken from the topology's RTT matrix.
//
// Two optimizations are modeled exactly as the paper describes:
//
//   - Pre-warming (§4.3.1): with a pre-started SQL process, the process
//     start disappears from the critical path and the client's TCP
//     connection waits in the accept queue instead of being reset and
//     retried with backoff (which "effectively doubles the client measured
//     initialization time").
//   - Region-aware system database (§3.2.5): GLOBAL system.descriptor makes
//     the schema reads local in every region, and REGIONAL BY ROW
//     system.sql_instances makes the registration write local; without
//     them, every access pays the RTT to the leaseholder region.
package coldstart

import (
	"errors"
	"math/rand"
	"time"

	"crdbserverless/internal/metric"
	"crdbserverless/internal/randutil"
	"crdbserverless/internal/region"
	"crdbserverless/internal/sql"
	"crdbserverless/internal/timeutil"
	"crdbserverless/internal/trace"
)

// Dist is a log-normal latency distribution.
type Dist struct {
	Median time.Duration
	Sigma  float64
}

// Sample draws one latency.
func (d Dist) Sample(rng *rand.Rand) time.Duration {
	if d.Median <= 0 {
		return 0
	}
	return randutil.LogNormal(rng, d.Median, d.Sigma)
}

// Params calibrate the cold-start step latencies.
type Params struct {
	Topology *region.Topology
	// PodScheduling is the control-plane latency to pick and stamp a warm
	// pod (K8s reconciliation, §4.2.1: "creating a new Serverless SQL node
	// takes 3 seconds" without a warm pool; with one, only the stamping
	// reconciliation remains).
	PodScheduling Dist
	// ProcessStart is the SQL process boot time, on the critical path only
	// in the unoptimized flow ("starting a process in a K8s container may
	// take up to a second", §6.5.1).
	ProcessStart Dist
	// CertDelivery is writing the tenant's mTLS certificates to the pod.
	CertDelivery Dist
	// FSWatchDetect is the pre-started process noticing the certificates
	// (the file system watch of §4.3.1).
	FSWatchDetect Dist
	// DescriptorReads is the number of blocking system.descriptor reads at
	// SQL node startup (schema fetch, §3.2.5).
	DescriptorReads int
	// InstanceWrites is the number of blocking system.sql_instances writes
	// (node discoverability, §3.2.5).
	InstanceWrites int
	// AuthAndFirstQuery covers authentication and executing the prober's
	// SELECT.
	AuthAndFirstQuery Dist
}

// DefaultParams returns the calibration used for the Fig 10 reproductions.
func DefaultParams(top *region.Topology) Params {
	return Params{
		Topology:          top,
		PodScheduling:     Dist{Median: 380 * time.Millisecond, Sigma: 0.25},
		ProcessStart:      Dist{Median: 450 * time.Millisecond, Sigma: 0.35},
		CertDelivery:      Dist{Median: 60 * time.Millisecond, Sigma: 0.3},
		FSWatchDetect:     Dist{Median: 15 * time.Millisecond, Sigma: 0.3},
		DescriptorReads:   3,
		InstanceWrites:    1,
		AuthAndFirstQuery: Dist{Median: 40 * time.Millisecond, Sigma: 0.3},
	}
}

// Flow describes one cold-start configuration under test.
type Flow struct {
	// PreWarmed selects the §4.3.1 optimized flow.
	PreWarmed bool
	// Localities is the tenant's system database configuration.
	Localities sql.SystemTableLocalities
	// ClientRegion is where the prober (and the pod it is routed to) runs.
	ClientRegion region.Region
}

// Step is one named segment of a cold start. A trial's steps partition its
// end-to-end latency exactly: summing D over the steps reproduces the total.
type Step struct {
	Name string
	D    time.Duration
}

// SimulateSteps runs one cold-start trial and returns both the end-to-end
// latency the client would measure and its decomposition into named steps.
func SimulateSteps(rng *rand.Rand, p Params, f Flow) (time.Duration, []Step) {
	var steps []Step

	// 1. Control plane stamps a warm pod with the tenant.
	steps = append(steps,
		Step{"pod_assign", p.PodScheduling.Sample(rng)},
		Step{"cert_issue", p.CertDelivery.Sample(rng)})

	// 2. Process availability.
	if f.PreWarmed {
		// Already running; the fs-watch notices the certificates, and the
		// client's TCP connection has been waiting in the accept queue.
		steps = append(steps, Step{"fs_watch", p.FSWatchDetect.Sample(rng)})
	} else {
		// The process starts now. The client's earlier connection attempts
		// were refused (no listener -> TCP reset); the proxy retries with
		// exponential backoff, which in expectation doubles the wait for
		// the process (§6.5.1).
		start := p.ProcessStart.Sample(rng)
		steps = append(steps,
			Step{"process_start", start},
			Step{"listen_retry", retryPenalty(rng, start)})
	}

	// 3. SQL node initialization: blocking system database accesses. The
	// table localities decide whether these are local or cross-region
	// (§3.2.5).
	descPlacement := f.Localities.Placement(sql.SystemDescriptorTable)
	for i := 0; i < p.DescriptorReads; i++ {
		rtt := descPlacement.ReadRTT(p.Topology, f.ClientRegion)
		steps = append(steps, Step{"sysdb_descriptor_read", randutil.Jitter(rng, rtt, 0.1)})
	}
	instPlacement := f.Localities.Placement(sql.SystemSQLInstancesTable)
	for i := 0; i < p.InstanceWrites; i++ {
		rtt := instPlacement.WriteRTT(p.Topology, f.ClientRegion)
		steps = append(steps, Step{"sysdb_instance_write", randutil.Jitter(rng, rtt, 0.1)})
	}

	// 4. The proxy hands its held client connection to the now-ready pod,
	// authentication completes, and the first row read returns (§4.3.1).
	steps = append(steps, Step{"conn_migrate", p.AuthAndFirstQuery.Sample(rng)})

	var total time.Duration
	for _, st := range steps {
		total += st.D
	}
	return total, steps
}

// Simulate runs one cold-start trial and returns the end-to-end latency the
// client would measure.
func Simulate(rng *rand.Rand, p Params, f Flow) time.Duration {
	total, _ := SimulateSteps(rng, p, f)
	return total
}

// TraceOne runs one cold-start trial and records it as a trace: a root span
// "coldstart" with one child per step. The tracer must be driven by a manual
// clock; TraceOne advances it by each step's sampled latency, so every child
// span's duration is exactly that step's cost and the children sum to the
// root span end to end.
func TraceOne(tr *trace.Tracer, rng *rand.Rand, p Params, f Flow) (*trace.Span, time.Duration, error) {
	clock, ok := tr.Clock().(*timeutil.ManualClock)
	if !ok {
		return nil, 0, errors.New("coldstart: TraceOne requires a tracer on a manual clock")
	}
	total, steps := SimulateSteps(rng, p, f)
	root := tr.StartRoot("coldstart")
	root.SetAttr("coldstart.prewarmed", f.PreWarmed)
	root.SetAttr("coldstart.region", string(f.ClientRegion))
	for _, st := range steps {
		sp := root.StartChild(st.Name)
		clock.Advance(st.D)
		sp.Finish()
	}
	root.Finish()
	return root, total, nil
}

// retryPenalty models the proxy's exponential backoff against a listener
// that appears after processStart: attempts at 0, 100ms, 300ms, 700ms, ...
// The measured penalty is the gap between the process becoming ready and the
// next retry firing.
func retryPenalty(rng *rand.Rand, processStart time.Duration) time.Duration {
	backoff := 100 * time.Millisecond
	var at time.Duration
	for at < processStart {
		at += randutil.Jitter(rng, backoff, 0.1)
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
	return at - processStart
}

// RunProber runs n trials and returns the latency distribution — the
// production cold-start prober of §6.5.
func RunProber(rng *rand.Rand, p Params, f Flow, n int) *metric.Histogram {
	h := metric.NewHistogram()
	for i := 0; i < n; i++ {
		h.Record(Simulate(rng, p, f))
	}
	return h
}
