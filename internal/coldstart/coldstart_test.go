package coldstart

import (
	"testing"
	"time"

	"crdbserverless/internal/randutil"
	"crdbserverless/internal/region"
	"crdbserverless/internal/sql"
)

func optimizedLocalities() sql.SystemTableLocalities {
	return sql.SystemTableLocalities{RegionAware: true}
}

func pinnedLocalities() sql.SystemTableLocalities {
	return sql.SystemTableLocalities{RegionAware: false, Home: "asia-southeast1"}
}

func TestDistSample(t *testing.T) {
	rng := randutil.NewRand(1)
	d := Dist{Median: 100 * time.Millisecond, Sigma: 0.3}
	var below int
	for i := 0; i < 2000; i++ {
		if d.Sample(rng) < d.Median {
			below++
		}
	}
	if below < 900 || below > 1100 {
		t.Fatalf("median split = %d/2000", below)
	}
	if (Dist{}).Sample(rng) != 0 {
		t.Fatal("zero dist should sample 0")
	}
}

func TestPreWarmingHalvesColdStart(t *testing.T) {
	// The Fig 10a result: pre-warming the SQL process reduces p50 and p99
	// by more than half.
	top := region.DefaultTopology()
	p := DefaultParams(top)
	rng := randutil.NewRand(42)

	unopt := RunProber(rng, p, Flow{
		PreWarmed: false, Localities: optimizedLocalities(), ClientRegion: "us-central1",
	}, 500)
	opt := RunProber(rng, p, Flow{
		PreWarmed: true, Localities: optimizedLocalities(), ClientRegion: "us-central1",
	}, 500)

	if opt.P50()*2 > unopt.P50() {
		t.Fatalf("pre-warming p50: %v vs %v — less than 2x", opt.P50(), unopt.P50())
	}
	if opt.P99()*2 > unopt.P99() {
		t.Fatalf("pre-warming p99: %v vs %v — less than 2x", opt.P99(), unopt.P99())
	}
	// And the optimized flow is sub-second at p99 (the paper reports a
	// production p99 of 650ms).
	if opt.P99() > time.Second {
		t.Fatalf("optimized p99 = %v, want < 1s", opt.P99())
	}
}

func TestRegionAwareSystemDBSubSecondEverywhere(t *testing.T) {
	// The Fig 10b result: with GLOBAL/REGIONAL BY ROW system tables, every
	// region cold-starts in under a second (p50 <= 0.73s); with leaseholders
	// pinned to asia-southeast1, remote regions pay cross-region RTTs.
	top := region.DefaultTopology()
	p := DefaultParams(top)
	rng := randutil.NewRand(7)

	for _, r := range top.Regions() {
		opt := RunProber(rng, p, Flow{
			PreWarmed: true, Localities: optimizedLocalities(), ClientRegion: r,
		}, 500)
		if opt.P50() > 730*time.Millisecond {
			t.Fatalf("region %s optimized p50 = %v, want <= 0.73s", r, opt.P50())
		}
	}

	// Pinned: the farthest region suffers most.
	pinnedUS := RunProber(rng, p, Flow{
		PreWarmed: true, Localities: pinnedLocalities(), ClientRegion: "us-central1",
	}, 500)
	pinnedAsia := RunProber(rng, p, Flow{
		PreWarmed: true, Localities: pinnedLocalities(), ClientRegion: "asia-southeast1",
	}, 500)
	optUS := RunProber(rng, p, Flow{
		PreWarmed: true, Localities: optimizedLocalities(), ClientRegion: "us-central1",
	}, 500)

	// Cross-region pinning costs at least the extra RTTs (~600ms here).
	if pinnedUS.P50() < optUS.P50()+400*time.Millisecond {
		t.Fatalf("pinned us-central1 p50 = %v vs optimized %v — missing RTT cost",
			pinnedUS.P50(), optUS.P50())
	}
	// In the home region, pinning costs nothing.
	if pinnedAsia.P50() > optUS.P50()+200*time.Millisecond {
		t.Fatalf("pinned asia p50 = %v, should be near local %v", pinnedAsia.P50(), optUS.P50())
	}
}

func TestRetryPenaltyBounds(t *testing.T) {
	rng := randutil.NewRand(3)
	for i := 0; i < 1000; i++ {
		start := time.Duration(rng.Intn(1500)) * time.Millisecond
		p := retryPenalty(rng, start)
		if p < 0 {
			t.Fatalf("negative penalty %v", p)
		}
		// The next retry is at most one backoff step past readiness, and
		// backoff is capped at 2s.
		if p > 2200*time.Millisecond {
			t.Fatalf("penalty %v too large for start %v", p, start)
		}
	}
}

func TestSimulateDeterministicWithSeed(t *testing.T) {
	top := region.DefaultTopology()
	p := DefaultParams(top)
	f := Flow{PreWarmed: true, Localities: optimizedLocalities(), ClientRegion: "europe-west1"}
	a := Simulate(randutil.NewRand(9), p, f)
	b := Simulate(randutil.NewRand(9), p, f)
	if a != b {
		t.Fatalf("same seed, different results: %v vs %v", a, b)
	}
}
