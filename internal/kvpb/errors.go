package kvpb

import (
	"errors"
	"fmt"

	"crdbserverless/internal/hlc"
	"crdbserverless/internal/keys"
)

// NodeID identifies a KV node in the cluster.
type NodeID int32

// NotLeaseholderError redirects the sender to the replica currently holding
// the range lease.
type NotLeaseholderError struct {
	RangeID     int64
	Leaseholder NodeID
}

// Error implements error.
func (e *NotLeaseholderError) Error() string {
	return fmt.Sprintf("range %d: not leaseholder; try node %d", e.RangeID, e.Leaseholder)
}

// RangeKeyMismatchError indicates the request addressed a range that does not
// contain its key (e.g. after a split); the sender refreshes its range cache
// from the META range and retries.
type RangeKeyMismatchError struct {
	RequestedKey keys.Key
	ActualSpan   keys.Span
}

// Error implements error.
func (e *RangeKeyMismatchError) Error() string {
	return fmt.Sprintf("key %s outside range bounds %s", e.RequestedKey, e.ActualSpan)
}

// WriteIntentError indicates the operation encountered another transaction's
// provisional write.
type WriteIntentError struct {
	Key   keys.Key
	TxnID uint64
}

// Error implements error.
func (e *WriteIntentError) Error() string {
	return fmt.Sprintf("conflicting intent on %s from txn %d", e.Key, e.TxnID)
}

// WriteTooOldError indicates a write at a timestamp below an existing
// committed version; the transaction must retry at ActualTs or higher.
type WriteTooOldError struct {
	Key      keys.Key
	ActualTs hlc.Timestamp
}

// Error implements error.
func (e *WriteTooOldError) Error() string {
	return fmt.Sprintf("write on %s too old; retry at %s", e.Key, e.ActualTs)
}

// TenantAuthError indicates a request attempted to escape its tenant keyspace
// or presented an identity that does not match the addressed tenant. This is
// the security boundary of §3.2.3.
type TenantAuthError struct {
	Authenticated keys.TenantID
	Requested     keys.TenantID
	Key           keys.Key
}

// Error implements error.
func (e *TenantAuthError) Error() string {
	return fmt.Sprintf("tenant %s is not authorized for key %s (requested tenant %s)",
		e.Authenticated, e.Key, e.Requested)
}

// TenantRateLimitedError indicates the tenant's token bucket rejected the
// operation outright (as opposed to smoothly delaying it).
type TenantRateLimitedError struct {
	Tenant keys.TenantID
}

// Error implements error.
func (e *TenantRateLimitedError) Error() string {
	return fmt.Sprintf("%s exceeded its resource quota", e.Tenant)
}

// RangeNotFoundError indicates the addressed range does not exist on the
// target node.
type RangeNotFoundError struct {
	RangeID int64
}

// Error implements error.
func (e *RangeNotFoundError) Error() string {
	return fmt.Sprintf("range %d not found on node", e.RangeID)
}

// TransactionAbortedError indicates the transaction was aborted by a
// conflicting transaction or the system and must restart.
type TransactionAbortedError struct {
	TxnID uint64
}

// Error implements error.
func (e *TransactionAbortedError) Error() string {
	return fmt.Sprintf("txn %d aborted", e.TxnID)
}

// retriableFault is implemented by injected fault errors
// (internal/faultinject) so retry loops can treat them as transient
// transport failures without kvpb importing the injector.
type retriableFault interface{ RetriableFault() bool }

// IsRetriable reports whether the error indicates the operation may succeed
// if retried (possibly after refreshing caches or at a new timestamp).
func IsRetriable(err error) bool {
	var rf retriableFault
	if errors.As(err, &rf) {
		return rf.RetriableFault()
	}
	var (
		nle *NotLeaseholderError
		rkm *RangeKeyMismatchError
		wie *WriteIntentError
		wto *WriteTooOldError
		ta  *TransactionAbortedError
	)
	return errors.As(err, &nle) || errors.As(err, &rkm) ||
		errors.As(err, &wie) || errors.As(err, &wto) || errors.As(err, &ta)
}
