// Package kvpb defines the KV API spoken across the SQL/KV boundary (§3.1 of
// the paper): batched GET/PUT/DELETE/SCAN requests, responses with resumption
// markers (§5.1.4), structured routing errors, and the request metadata
// (tenant identity, priority) that the authorization and admission layers
// consume.
package kvpb

import (
	"fmt"

	"crdbserverless/internal/hlc"
	"crdbserverless/internal/keys"
)

// Method enumerates the KV operations.
type Method int

// The supported KV methods.
const (
	Get Method = iota
	Put
	Delete
	Scan
	DeleteRange
	// ResolveIntent finalizes a transaction's provisional write on a key.
	// Issued by the transaction coordinator at commit/abort time.
	ResolveIntent
	// ResolveIntentRange finalizes a transaction's provisional writes over a
	// key span. The coordinator issues it for DeleteRange footprints, whose
	// exact keys it may never have learned (the batch can fail after partial
	// application); the leaseholder enumerates the matching intents itself.
	ResolveIntentRange
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Get:
		return "Get"
	case Put:
		return "Put"
	case Delete:
		return "Delete"
	case Scan:
		return "Scan"
	case DeleteRange:
		return "DeleteRange"
	case ResolveIntent:
		return "ResolveIntent"
	case ResolveIntentRange:
		return "ResolveIntentRange"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// IsWrite reports whether the method mutates the keyspace.
func (m Method) IsWrite() bool {
	return m == Put || m == Delete || m == DeleteRange ||
		m == ResolveIntent || m == ResolveIntentRange
}

// Priority orders work within a tenant's admission queue.
type Priority int

// Priorities, lowest to highest.
const (
	PriorityLow    Priority = -10
	PriorityNormal Priority = 0
	PriorityHigh   Priority = 10
)

// Request is a single KV operation.
type Request struct {
	Method Method
	Key    keys.Key
	// EndKey bounds Scan and DeleteRange requests; unused otherwise.
	EndKey keys.Key
	// Value is the payload for Put.
	Value []byte
	// MaxKeys bounds the number of rows a Scan may return before setting a
	// resume span. Zero means unlimited.
	MaxKeys int64
	// ResolveTxnID, ResolveCommit, and ResolveTs parameterize ResolveIntent
	// requests: which transaction's intent to finalize, whether it commits,
	// and at what timestamp.
	ResolveTxnID  uint64
	ResolveCommit bool
	ResolveTs     hlc.Timestamp
	// Filter, when non-nil on a Scan, is an encoded rowfilter.Filter the KV
	// node evaluates before returning rows — the row-filtering push-down of
	// the paper's §8: rows failing the predicate never cross the process
	// boundary.
	Filter []byte
}

// Span returns the span the request touches.
func (r Request) Span() keys.Span {
	if len(r.EndKey) == 0 {
		return keys.Span{Key: r.Key}
	}
	return keys.Span{Key: r.Key, EndKey: r.EndKey}
}

// KeyValue is one row of a scan response.
type KeyValue struct {
	Key   keys.Key
	Value []byte
}

// Response is the result of a single Request.
type Response struct {
	Method Method
	// Value is the result of a Get (nil if the key is absent).
	Value []byte
	// Exists reports whether a Get found the key.
	Exists bool
	// Rows holds Scan results.
	Rows []KeyValue
	// ResumeSpan, when non-nil, is the portion of the request's span that
	// was not processed because a limit was reached (the resumption marker
	// of §5.1.4); the caller re-issues the request with this span.
	ResumeSpan *keys.Span
	// ScannedBytes is the volume the KV node read to serve a Scan — it can
	// exceed the returned bytes when a pushed-down filter dropped rows, and
	// it is what the scan's CPU cost is charged on.
	ScannedBytes int64
}

// TxnMeta carries the transaction identity a batch executes under.
type TxnMeta struct {
	ID       uint64
	Ts       hlc.Timestamp
	Priority Priority
}

// BatchRequest groups requests that execute at one timestamp for one tenant.
// Every KV API call across the SQL/KV boundary is a BatchRequest; the tenant
// identity is validated by the authorizer (§3.2.3) against the client's
// certificate before the batch reaches a replica.
type BatchRequest struct {
	// Tenant is the tenant whose keyspace this batch addresses.
	Tenant keys.TenantID
	// Timestamp is the read/write timestamp for non-transactional batches.
	Timestamp hlc.Timestamp
	// Txn, when non-nil, makes the batch part of a transaction.
	Txn *TxnMeta
	// Priority applies to admission queueing when Txn is nil.
	Priority Priority
	// FollowerRead permits a read-only batch to be served by any replica at
	// a (possibly slightly stale) timestamp instead of the leaseholder
	// (§3.2.5: META-range reads and global-table reads use this).
	FollowerRead bool
	// Colocated marks the batch as issued by a SQL engine running in the
	// same process as the KV node (the traditional deployment of §6.1):
	// responses skip the cross-process marshaling cost.
	Colocated bool
	Requests  []Request
}

// ReadTs returns the timestamp reads in the batch observe.
func (b *BatchRequest) ReadTs() hlc.Timestamp {
	if b.Txn != nil {
		return b.Txn.Ts
	}
	return b.Timestamp
}

// IsReadOnly reports whether no request in the batch writes.
func (b *BatchRequest) IsReadOnly() bool {
	for _, r := range b.Requests {
		if r.Method.IsWrite() {
			return false
		}
	}
	return true
}

// WriteBytes returns the total payload bytes of write requests, an input to
// both admission control's write token bucket and the estimated-CPU model.
func (b *BatchRequest) WriteBytes() int64 {
	var n int64
	for _, r := range b.Requests {
		if r.Method.IsWrite() {
			n += int64(len(r.Key) + len(r.Value))
		}
	}
	return n
}

// BatchResponse carries the per-request responses of a batch.
type BatchResponse struct {
	Timestamp hlc.Timestamp
	Responses []Response
}

// ReadBytes returns the total bytes returned by reads in the response, an
// input to the estimated-CPU model (§5.2.1).
func (b *BatchResponse) ReadBytes() int64 {
	var n int64
	for i := range b.Responses {
		r := &b.Responses[i]
		n += int64(len(r.Value))
		for _, kv := range r.Rows {
			n += int64(len(kv.Key) + len(kv.Value))
		}
	}
	return n
}
