package kvpb

import (
	"errors"
	"fmt"
	"testing"

	"crdbserverless/internal/hlc"
	"crdbserverless/internal/keys"
)

func TestMethodString(t *testing.T) {
	for m, want := range map[Method]string{
		Get: "Get", Put: "Put", Delete: "Delete", Scan: "Scan",
		DeleteRange: "DeleteRange", Method(99): "Method(99)",
	} {
		if got := m.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", m, got, want)
		}
	}
}

func TestMethodIsWrite(t *testing.T) {
	if Get.IsWrite() || Scan.IsWrite() {
		t.Fatal("reads flagged as writes")
	}
	if !Put.IsWrite() || !Delete.IsWrite() || !DeleteRange.IsWrite() {
		t.Fatal("writes not flagged")
	}
}

func TestRequestSpan(t *testing.T) {
	p := Request{Method: Get, Key: keys.Key("a")}
	if !p.Span().IsPoint() {
		t.Fatal("point request should yield point span")
	}
	s := Request{Method: Scan, Key: keys.Key("a"), EndKey: keys.Key("z")}
	if s.Span().IsPoint() || !s.Span().ContainsKey(keys.Key("m")) {
		t.Fatal("scan span broken")
	}
}

func TestBatchReadTs(t *testing.T) {
	ts1 := hlc.Timestamp{WallTime: 10}
	ts2 := hlc.Timestamp{WallTime: 20}
	b := BatchRequest{Timestamp: ts1}
	if !b.ReadTs().Equal(ts1) {
		t.Fatal("non-txn batch should read at batch ts")
	}
	b.Txn = &TxnMeta{ID: 1, Ts: ts2}
	if !b.ReadTs().Equal(ts2) {
		t.Fatal("txn batch should read at txn ts")
	}
}

func TestBatchIsReadOnlyAndWriteBytes(t *testing.T) {
	b := BatchRequest{Requests: []Request{
		{Method: Get, Key: keys.Key("a")},
		{Method: Scan, Key: keys.Key("a"), EndKey: keys.Key("b")},
	}}
	if !b.IsReadOnly() {
		t.Fatal("read batch reported as writing")
	}
	if b.WriteBytes() != 0 {
		t.Fatal("read batch has write bytes")
	}
	b.Requests = append(b.Requests, Request{Method: Put, Key: keys.Key("kk"), Value: []byte("vvv")})
	if b.IsReadOnly() {
		t.Fatal("write batch reported read-only")
	}
	if got := b.WriteBytes(); got != 5 {
		t.Fatalf("WriteBytes = %d, want 5", got)
	}
}

func TestBatchResponseReadBytes(t *testing.T) {
	r := BatchResponse{Responses: []Response{
		{Method: Get, Value: []byte("1234")},
		{Method: Scan, Rows: []KeyValue{{Key: keys.Key("k"), Value: []byte("vv")}}},
	}}
	if got := r.ReadBytes(); got != 4+1+2 {
		t.Fatalf("ReadBytes = %d, want 7", got)
	}
}

func TestErrorsFormatAndRetriable(t *testing.T) {
	errs := []error{
		&NotLeaseholderError{RangeID: 1, Leaseholder: 3},
		&RangeKeyMismatchError{RequestedKey: keys.Key("a"), ActualSpan: keys.Span{Key: keys.Key("b"), EndKey: keys.Key("c")}},
		&WriteIntentError{Key: keys.Key("k"), TxnID: 9},
		&WriteTooOldError{Key: keys.Key("k"), ActualTs: hlc.Timestamp{WallTime: 5}},
		&TransactionAbortedError{TxnID: 2},
	}
	for _, err := range errs {
		if err.Error() == "" {
			t.Fatalf("%T has empty message", err)
		}
		if !IsRetriable(err) {
			t.Fatalf("%T should be retriable", err)
		}
		if !IsRetriable(fmt.Errorf("wrapped: %w", err)) {
			t.Fatalf("wrapped %T should be retriable", err)
		}
	}
	notRetriable := []error{
		&TenantAuthError{Authenticated: 2, Requested: 3, Key: keys.Key("k")},
		&TenantRateLimitedError{Tenant: 2},
		&RangeNotFoundError{RangeID: 4},
		errors.New("generic"),
	}
	for _, err := range notRetriable {
		if err.Error() == "" {
			t.Fatalf("%T has empty message", err)
		}
		if IsRetriable(err) {
			t.Fatalf("%T should not be retriable", err)
		}
	}
}

func TestPriorityOrdering(t *testing.T) {
	if !(PriorityLow < PriorityNormal && PriorityNormal < PriorityHigh) {
		t.Fatal("priority constants misordered")
	}
}
