// Package debug is the deployment's introspection surface: a plain-text
// /debug/tracez page (per-operation span-duration percentiles plus
// retained slow traces, from the tracer's recorder) and a /debug/metrics
// page (Prometheus-style exposition of every metric registry in the
// deployment, one labeled section per region). cmd/crdb-sim serves it
// over HTTP and dumps it on demand; cmd/repro dumps it after the tracez
// experiment.
package debug

import (
	"io"
	"net/http"

	"crdbserverless/internal/metric"
	"crdbserverless/internal/trace"
)

// Section is one metric registry on the exposition page, distinguished
// from the others by a label set (e.g. region="us-east1"). A nil or
// empty label map exposes the registry's metrics unlabeled.
type Section struct {
	Labels   map[string]string
	Registry *metric.Registry
}

// Handler renders the debug pages. The zero value renders empty pages.
type Handler struct {
	Tracer   *trace.Tracer
	Sections []Section
}

// WriteTracez writes the /debug/tracez page.
func (h *Handler) WriteTracez(w io.Writer) error {
	return h.Tracer.Recorder().WriteTracez(w)
}

// WriteMetrics writes the /debug/metrics page: every section's registry
// in registration-name order, sections in declaration order.
func (h *Handler) WriteMetrics(w io.Writer) error {
	for _, s := range h.Sections {
		if s.Registry == nil {
			continue
		}
		if err := s.Registry.WriteExpositionLabels(w, s.Labels); err != nil {
			return err
		}
	}
	return nil
}

// HTTPHandler returns an http.Handler serving /debug/tracez and
// /debug/metrics as text/plain.
func (h *Handler) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/tracez", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = h.WriteTracez(w)
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = h.WriteMetrics(w)
	})
	return mux
}
