// Package debug is the deployment's introspection surface: a plain-text
// /debug/tracez page (per-operation span-duration percentiles plus
// retained slow traces, from the tracer's recorder), a /debug/metrics
// page (Prometheus-style exposition of every metric registry in the
// deployment, one labeled section per region), and the tenant pages —
// /debug/tenantz (top-k tenants by QPS/p99/RU/burn-rate, with ?tenant=
// drill-down) and /debug/slo (per-tenant objectives and multi-window burn
// rates) — backed by the tenant observability plane. cmd/crdb-sim serves
// it over HTTP and dumps it on demand; cmd/repro dumps it after the
// tracez experiment.
package debug

import (
	"io"
	"net/http"
	"strconv"

	"crdbserverless/internal/metric"
	"crdbserverless/internal/tenantobs"
	"crdbserverless/internal/trace"
)

// Section is one metric registry on the exposition page, distinguished
// from the others by a label set (e.g. region="us-east1"). A nil or
// empty label map exposes the registry's metrics unlabeled.
type Section struct {
	Labels   map[string]string
	Registry *metric.Registry
}

// Handler renders the debug pages. The zero value renders empty pages.
type Handler struct {
	Tracer   *trace.Tracer
	Sections []Section
	// Tenantz backs /debug/tenantz and /debug/slo; nil renders an
	// explanatory placeholder.
	Tenantz *tenantobs.Plane
}

// WriteTracez writes the /debug/tracez page.
func (h *Handler) WriteTracez(w io.Writer) error {
	return h.Tracer.Recorder().WriteTracez(w)
}

// WriteMetrics writes the /debug/metrics page: every section's registry
// in registration-name order, sections in declaration order.
func (h *Handler) WriteMetrics(w io.Writer) error {
	for _, s := range h.Sections {
		if s.Registry == nil {
			continue
		}
		if err := s.Registry.WriteExpositionLabels(w, s.Labels); err != nil {
			return err
		}
	}
	return nil
}

// WriteTenantz writes the /debug/tenantz page (top-k tables), or the
// drill-down for one tenant when tenant is non-empty.
func (h *Handler) WriteTenantz(w io.Writer, tenant string, topK int) error {
	if tenant != "" {
		return h.Tenantz.WriteTenant(w, tenant, h.Tenantz.Now())
	}
	return h.Tenantz.WriteTenantz(w, h.Tenantz.Now(), topK)
}

// WriteSLO writes the /debug/slo page.
func (h *Handler) WriteSLO(w io.Writer) error {
	return h.Tenantz.WriteSLO(w, h.Tenantz.Now())
}

// HTTPHandler returns an http.Handler serving /debug/tracez,
// /debug/metrics, /debug/tenantz (optional ?tenant= drill-down and ?k=
// top-k override), and /debug/slo as text/plain.
func (h *Handler) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/tracez", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = h.WriteTracez(w)
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = h.WriteMetrics(w)
	})
	mux.HandleFunc("/debug/tenantz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		topK, _ := strconv.Atoi(r.URL.Query().Get("k"))
		_ = h.WriteTenantz(w, r.URL.Query().Get("tenant"), topK)
	})
	mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = h.WriteSLO(w)
	})
	return mux
}
