package raftlite

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/metric"
	"crdbserverless/internal/timeutil"
)

// groupFixture builds a 3-node group on a real clock with commit metrics and
// the given per-round overhead — the shape the group-commit tests need.
func groupFixture(t *testing.T, overhead time.Duration, disable bool) (*Group, []*memSM, *CommitMetrics) {
	t.Helper()
	cm := NewCommitMetrics(metric.NewRegistry())
	var nodes []NodeID
	var sms []StateMachine
	var mems []*memSM
	for i := 1; i <= 3; i++ {
		sm := &memSM{}
		mems = append(mems, sm)
		nodes = append(nodes, NodeID(i))
		sms = append(sms, sm)
	}
	g, err := NewGroup(Config{
		RangeID:            11,
		Clock:              timeutil.NewRealClock(),
		LeaseDuration:      time.Hour,
		DisableGroupCommit: disable,
		CommitOverhead:     overhead,
		CommitMetrics:      cm,
	}, nodes, sms)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AcquireLease(1); err != nil {
		t.Fatal(err)
	}
	return g, mems, cm
}

// proposeConcurrently fires proposers×perProposer proposals at the group and
// returns total wall time. Every proposal must succeed.
func proposeConcurrently(t *testing.T, g *Group, proposers, perProposer int) time.Duration {
	t.Helper()
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, proposers*perProposer)
	for w := 0; w < proposers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perProposer; i++ {
				if err := g.Propose(1, []byte(fmt.Sprintf("w%d-%03d", w, i))); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	return time.Since(start)
}

// With a per-round overhead and many concurrent proposers, the sequencer must
// coalesce: strictly fewer commit rounds than entries, with every entry
// durable on every replica.
func TestGroupCommitCoalesces(t *testing.T) {
	const proposers, perProposer = 8, 25
	g, mems, cm := groupFixture(t, 2*time.Millisecond, false)
	proposeConcurrently(t, g, proposers, perProposer)

	total := int64(proposers * perProposer)
	if cm.Entries.Value() != total {
		t.Fatalf("entries = %d, want %d", cm.Entries.Value(), total)
	}
	if cm.Batches.Value() >= total {
		t.Fatalf("batches = %d entries = %d: no coalescing happened", cm.Batches.Value(), total)
	}
	if got := cm.BatchSize.Count(); got != uint64(cm.Batches.Value()) {
		t.Fatalf("batch_size histogram count = %d, batches = %d", got, cm.Batches.Value())
	}
	if cm.BatchSize.Max() < 2 {
		t.Fatalf("max batch size = %d, want >= 2", cm.BatchSize.Max())
	}
	if g.CommitIndex() != uint64(total) {
		t.Fatalf("commit index = %d, want %d", g.CommitIndex(), total)
	}
	// Durability and order: every replica applied the same sequence, and that
	// sequence is a permutation of everything proposed.
	ref := mems[0].applied()
	if len(ref) != int(total) {
		t.Fatalf("replica 1 applied %d entries, want %d", len(ref), total)
	}
	for i, sm := range mems[1:] {
		if got := sm.applied(); fmt.Sprint(got) != fmt.Sprint(ref) {
			t.Fatalf("replica %d apply order diverges from replica 1", i+2)
		}
	}
	seen := make(map[string]bool, total)
	for _, cmd := range ref {
		if seen[cmd] {
			t.Fatalf("command %q applied twice", cmd)
		}
		seen[cmd] = true
	}
	for w := 0; w < proposers; w++ {
		// FIFO per proposer: a proposer's own commands keep their issue order.
		last := -1
		for i, cmd := range ref {
			var ww, ii int
			if _, err := fmt.Sscanf(cmd, "w%d-%d", &ww, &ii); err != nil || ww != w {
				continue
			}
			if i < last {
				t.Fatalf("proposer %d commands reordered", w)
			}
			last = i
		}
	}
}

// Group commit must beat the one-round-per-proposal baseline on wall clock
// when rounds carry a fixed overhead. The CI bench gate enforces the >=1.5x
// bar; here we only require a strict win so scheduler noise can't flake it.
func TestGroupCommitFasterThanBaseline(t *testing.T) {
	const proposers, perProposer = 8, 10
	base, _, _ := groupFixture(t, time.Millisecond, true)
	baseT := proposeConcurrently(t, base, proposers, perProposer)
	grouped, _, cm := groupFixture(t, time.Millisecond, false)
	groupT := proposeConcurrently(t, grouped, proposers, perProposer)
	if cm.Batches.Value() >= cm.Entries.Value() {
		t.Fatalf("grouped run did not coalesce: %d batches for %d entries",
			cm.Batches.Value(), cm.Entries.Value())
	}
	if groupT >= baseT {
		t.Fatalf("group commit slower than baseline: %v >= %v", groupT, baseT)
	}
}

// DisableGroupCommit must mean exactly one round per proposal.
func TestDisableGroupCommitOneRoundPerProposal(t *testing.T) {
	const proposers, perProposer = 4, 8
	g, _, cm := groupFixture(t, 0, true)
	proposeConcurrently(t, g, proposers, perProposer)
	total := int64(proposers * perProposer)
	if cm.Batches.Value() != total || cm.Entries.Value() != total {
		t.Fatalf("batches=%d entries=%d, want both %d", cm.Batches.Value(), cm.Entries.Value(), total)
	}
	if cm.BatchSize.Max() != 1 {
		t.Fatalf("max batch size = %d, want 1", cm.BatchSize.Max())
	}
}

// A rejected proposal must not fail its round-mates: drive one commit round
// holding both a leaseholder proposal and a non-leaseholder proposal, and
// check each gets its own verdict.
func TestGroupCommitPerProposalErrors(t *testing.T) {
	g, mems, cm := groupFixture(t, 0, false)
	good := &proposal{node: 1, cmd: []byte("good"), done: make(chan struct{})}
	bad := &proposal{node: 2, cmd: []byte("bad"), done: make(chan struct{})}
	g.commitRound([]*proposal{bad, good})
	<-bad.done
	<-good.done
	var nle *kvpb.NotLeaseholderError
	if !errors.As(bad.err, &nle) || nle.Leaseholder != 1 {
		t.Fatalf("non-leaseholder proposal err = %v", bad.err)
	}
	if good.err != nil {
		t.Fatalf("leaseholder proposal err = %v", good.err)
	}
	if good.index != 1 || good.batch != 1 {
		t.Fatalf("good proposal index=%d batch=%d, want 1/1", good.index, good.batch)
	}
	if got := mems[0].applied(); len(got) != 1 || got[0] != "good" {
		t.Fatalf("applied %v, want [good]", got)
	}
	if cm.Batches.Value() != 1 || cm.Entries.Value() != 1 {
		t.Fatalf("batches=%d entries=%d after mixed round", cm.Batches.Value(), cm.Entries.Value())
	}
}

// An all-rejected batch commits nothing and records no round.
func TestGroupCommitAllRejectedRecordsNothing(t *testing.T) {
	g, _, cm := groupFixture(t, 0, false)
	p1 := &proposal{node: 2, cmd: []byte("a"), done: make(chan struct{})}
	p2 := &proposal{node: 3, cmd: []byte("b"), done: make(chan struct{})}
	g.commitRound([]*proposal{p1, p2})
	var nle *kvpb.NotLeaseholderError
	if !errors.As(p1.err, &nle) || !errors.As(p2.err, &nle) {
		t.Fatalf("errs = %v / %v", p1.err, p2.err)
	}
	if g.CommitIndex() != 0 || cm.Batches.Value() != 0 {
		t.Fatalf("commit=%d batches=%d after rejected round", g.CommitIndex(), cm.Batches.Value())
	}
}

// An apply error inside a round surfaces on the round's committed proposals,
// matching the one-proposal-per-round path.
func TestGroupCommitApplyErrorHitsWholeRound(t *testing.T) {
	g, mems, _ := groupFixture(t, 0, false)
	mems[1].errs = true
	p1 := &proposal{node: 1, cmd: []byte("a"), done: make(chan struct{})}
	p2 := &proposal{node: 1, cmd: []byte("b"), done: make(chan struct{})}
	rejected := &proposal{node: 3, cmd: []byte("c"), done: make(chan struct{})}
	g.commitRound([]*proposal{p1, rejected, p2})
	if p1.err == nil || p2.err == nil {
		t.Fatalf("apply error not surfaced: %v / %v", p1.err, p2.err)
	}
	var nle *kvpb.NotLeaseholderError
	if !errors.As(rejected.err, &nle) {
		t.Fatalf("rejected proposal should keep its own error, got %v", rejected.err)
	}
}

// With a single synchronous proposer — every deterministic harness in the
// repo — the sequencer must degenerate to one entry per round, so grouped and
// baseline paths apply identical sequences.
func TestGroupCommitSingleProposerMatchesBaseline(t *testing.T) {
	run := func(disable bool) ([]string, *CommitMetrics) {
		g, mems, cm := groupFixture(t, 0, disable)
		for i := 0; i < 20; i++ {
			if err := g.Propose(1, []byte(fmt.Sprintf("c%02d", i))); err != nil {
				t.Fatal(err)
			}
		}
		return mems[0].applied(), cm
	}
	grouped, gcm := run(false)
	baseline, bcm := run(true)
	if fmt.Sprint(grouped) != fmt.Sprint(baseline) {
		t.Fatalf("apply sequences diverge:\n grouped %v\n baseline %v", grouped, baseline)
	}
	if gcm.Batches.Value() != 20 || gcm.BatchSize.Max() != 1 {
		t.Fatalf("single proposer: batches=%d max=%d, want 20 rounds of 1",
			gcm.Batches.Value(), gcm.BatchSize.Max())
	}
	if bcm.Batches.Value() != 20 {
		t.Fatalf("baseline batches = %d", bcm.Batches.Value())
	}
}
