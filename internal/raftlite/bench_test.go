package raftlite

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"crdbserverless/internal/timeutil"
)

// benchGroup builds a 3-replica group with a leaseholder on node 1.
func benchGroup(b *testing.B, disable bool, overhead time.Duration) *Group {
	b.Helper()
	g, err := NewGroup(Config{
		RangeID:            1,
		Clock:              timeutil.NewRealClock(),
		LeaseDuration:      time.Hour,
		DisableGroupCommit: disable,
		CommitOverhead:     overhead,
	}, []NodeID{1, 2, 3}, []StateMachine{&memSM{}, &memSM{}, &memSM{}})
	if err != nil {
		b.Fatal(err)
	}
	if err := g.AcquireLease(1); err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkKVProposeSequential measures the sequencer's own overhead on the
// single-proposer path, where every round carries exactly one entry.
func BenchmarkKVProposeSequential(b *testing.B) {
	g := benchGroup(b, false, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Propose(1, []byte("cmd")); err != nil {
			b.Fatal(err)
		}
	}
}

// benchConcurrentPropose drives b.N proposals from 8 goroutines against a
// group whose commit rounds cost 100µs each.
func benchConcurrentPropose(b *testing.B, disable bool) {
	g := benchGroup(b, disable, 100*time.Microsecond)
	const proposers = 8
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < proposers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("p%d", w))
			for i := w; i < b.N; i += proposers {
				if err := g.Propose(1, payload); err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkKVProposeGroupCommit8 is 8 concurrent proposers with coalescing.
func BenchmarkKVProposeGroupCommit8(b *testing.B) {
	benchConcurrentPropose(b, false)
}

// BenchmarkKVProposeOneRoundEach8 is the same load with one commit round per
// proposal — the pre-group-commit baseline.
func BenchmarkKVProposeOneRoundEach8(b *testing.B) {
	benchConcurrentPropose(b, true)
}
