// Package raftlite implements per-range quorum replication with epoch-style
// leases, in the spirit of CockroachDB's use of Raft (§3.1 of the paper). A
// Group replicates a command log across peers, commits entries once a quorum
// of live peers has accepted them, and applies committed entries to each
// peer's state machine. Leases gate serving: only the leaseholder may propose
// writes or serve consistent reads, and an overloaded node that stops
// heartbeating loses its leases — the destabilizing behavior the paper's
// Fig 12 shows admission control preventing.
package raftlite

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"crdbserverless/internal/faultinject"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/timeutil"
)

// NodeID identifies a node hosting replicas.
type NodeID = kvpb.NodeID

// StateMachine is the replicated state a peer applies committed commands to.
type StateMachine interface {
	// Apply applies the command at the given log index. Apply is invoked in
	// strictly increasing index order on each peer.
	Apply(index uint64, cmd []byte) error
}

// LivenessFunc reports whether a node is currently live (heartbeating). The
// KV layer wires this to its node-health tracker; an overloaded node that
// misses heartbeats reads as dead and cannot hold leases or ack proposals.
type LivenessFunc func(NodeID) bool

// Lease grants one node the right to serve a range until expiration.
type Lease struct {
	Holder     NodeID
	Expiration time.Time
	Sequence   uint64
}

// Valid reports whether the lease is held at the given instant.
func (l Lease) Valid(now time.Time) bool {
	return l.Holder != 0 && now.Before(l.Expiration)
}

// Errors returned by Group methods.
var (
	ErrNotLeaseholder = errors.New("raftlite: not leaseholder")
	ErrNoQuorum       = errors.New("raftlite: no quorum of live replicas")
	ErrUnknownPeer    = errors.New("raftlite: node has no replica of this range")
)

type entry struct {
	term uint64
	cmd  []byte
}

type peer struct {
	id      NodeID
	sm      StateMachine
	applied uint64
}

// Group is a single range's replication group.
type Group struct {
	rangeID  int64
	clock    timeutil.Clock
	live     LivenessFunc
	leaseDur time.Duration
	faults   *faultinject.Registry

	mu     sync.Mutex
	term   uint64
	log    []entry
	commit uint64
	peers  []*peer
	lease  Lease
}

// Config configures a Group.
type Config struct {
	RangeID int64
	Clock   timeutil.Clock
	// Liveness reports node health; nil means all nodes are always live.
	Liveness LivenessFunc
	// LeaseDuration is how long a lease lasts without extension. Defaults
	// to 9 seconds (3 missed 3s heartbeats), mirroring CRDB defaults.
	LeaseDuration time.Duration
	// Faults, when non-nil, arms the group's fault-injection sites
	// (raftlite.propose.delay, raftlite.propose.err, raftlite.lease.expire).
	Faults *faultinject.Registry
}

// NewGroup creates a replication group over the given nodes. Each node's
// replica applies committed commands to the corresponding state machine.
func NewGroup(cfg Config, nodes []NodeID, sms []StateMachine) (*Group, error) {
	if len(nodes) == 0 || len(nodes) != len(sms) {
		return nil, fmt.Errorf("raftlite: %d nodes with %d state machines", len(nodes), len(sms))
	}
	if cfg.Clock == nil {
		cfg.Clock = timeutil.NewRealClock()
	}
	if cfg.Liveness == nil {
		cfg.Liveness = func(NodeID) bool { return true }
	}
	if cfg.LeaseDuration == 0 {
		cfg.LeaseDuration = 9 * time.Second
	}
	g := &Group{
		rangeID:  cfg.RangeID,
		clock:    cfg.Clock,
		live:     cfg.Liveness,
		leaseDur: cfg.LeaseDuration,
		faults:   cfg.Faults,
		term:     1,
	}
	for i, id := range nodes {
		g.peers = append(g.peers, &peer{id: id, sm: sms[i]})
	}
	return g, nil
}

// RangeID returns the range this group replicates.
func (g *Group) RangeID() int64 { return g.rangeID }

// Replicas returns the node IDs holding replicas.
func (g *Group) Replicas() []NodeID {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]NodeID, len(g.peers))
	for i, p := range g.peers {
		out[i] = p.id
	}
	return out
}

// quorum returns the number of replicas needed to commit.
func (g *Group) quorum() int { return len(g.peers)/2 + 1 }

// Lease returns the current lease (which may be expired).
func (g *Group) Lease() Lease {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.lease
}

// Leaseholder returns the node holding a valid lease, or (0, false).
func (g *Group) Leaseholder() (NodeID, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	now := g.clock.Now()
	if g.lease.Valid(now) && g.live(g.lease.Holder) {
		return g.lease.Holder, true
	}
	return 0, false
}

// AcquireLease attempts to grant the lease to node. It succeeds when the
// current lease is invalid (expired or holder dead) or already held by node,
// and a quorum of replicas is live. Lease acquisition is itself a replicated
// decision in real Raft; here the quorum check models that requirement.
func (g *Group) AcquireLease(node NodeID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.hasPeerLocked(node) {
		return ErrUnknownPeer
	}
	if !g.live(node) {
		return fmt.Errorf("raftlite: node %d is not live", node)
	}
	now := g.clock.Now()
	if g.lease.Valid(now) && g.live(g.lease.Holder) && g.lease.Holder != node {
		return &kvpb.NotLeaseholderError{RangeID: g.rangeID, Leaseholder: g.lease.Holder}
	}
	if g.liveCountLocked() < g.quorum() {
		return ErrNoQuorum
	}
	// A node that was dead while entries committed must apply them before it
	// may serve: leases gate consistent reads, and reads serve from applied
	// state, so granting first would open a stale-read window on the new
	// leaseholder until something else triggered a catch-up.
	if err := g.catchUpPeerLocked(node); err != nil {
		return err
	}
	g.lease = Lease{
		Holder:     node,
		Expiration: now.Add(g.leaseDur),
		Sequence:   g.lease.Sequence + 1,
	}
	return nil
}

// TransferLease moves a valid lease from its holder to another replica.
func (g *Group) TransferLease(from, to NodeID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.hasPeerLocked(to) {
		return ErrUnknownPeer
	}
	now := g.clock.Now()
	if !g.lease.Valid(now) || g.lease.Holder != from {
		return ErrNotLeaseholder
	}
	// Same catch-up-before-grant rule as AcquireLease: the target may have
	// been dead while entries committed.
	if err := g.catchUpPeerLocked(to); err != nil {
		return err
	}
	g.lease = Lease{
		Holder:     to,
		Expiration: now.Add(g.leaseDur),
		Sequence:   g.lease.Sequence + 1,
	}
	return nil
}

// ExtendLease renews the holder's lease (the heartbeat path). Extending a
// lease the node does not hold is an error.
func (g *Group) ExtendLease(node NodeID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	now := g.clock.Now()
	if !g.lease.Valid(now) || g.lease.Holder != node {
		return ErrNotLeaseholder
	}
	g.lease.Expiration = now.Add(g.leaseDur)
	return nil
}

// Propose replicates cmd through the group on behalf of node, which must
// hold a valid lease. On success the command is committed and applied to
// every live replica; dead replicas catch up when they next apply.
func (g *Group) Propose(node NodeID, cmd []byte) error {
	// Fault sites, consulted before the group lock so configured delays do
	// not sleep under it: a scheduling delay before the proposal enters the
	// group, and an outright proposal failure (dropped before append — the
	// caller sees an error and nothing replicated).
	g.faults.Should("raftlite.propose.delay")
	if err := g.faults.MaybeErr("raftlite.propose.err"); err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	now := g.clock.Now()
	if g.faults.Should("raftlite.lease.expire") {
		// Simulated lease loss (a liveness blip reaching the lease record):
		// force-expire so the validity check below redirects the proposer
		// into reacquisition.
		g.lease.Expiration = now
	}
	if !g.lease.Valid(now) || g.lease.Holder != node {
		holder := g.lease.Holder
		if !g.lease.Valid(now) {
			holder = 0
		}
		return &kvpb.NotLeaseholderError{RangeID: g.rangeID, Leaseholder: holder}
	}
	if !g.live(node) {
		return ErrNoQuorum
	}
	// Count acks from live replicas (the proposer acks implicitly).
	acks := 0
	for _, p := range g.peers {
		if g.live(p.id) {
			acks++
		}
	}
	if acks < g.quorum() {
		return ErrNoQuorum
	}
	g.log = append(g.log, entry{term: g.term, cmd: cmd})
	g.commit = uint64(len(g.log))
	return g.applyCommittedLocked()
}

// applyCommittedLocked applies newly committed entries to every live peer,
// and lets previously-dead peers catch up.
func (g *Group) applyCommittedLocked() error {
	var firstErr error
	for _, p := range g.peers {
		if !g.live(p.id) {
			continue
		}
		for p.applied < g.commit {
			e := g.log[p.applied]
			if err := p.sm.Apply(p.applied+1, e.cmd); err != nil && firstErr == nil {
				firstErr = err
			}
			p.applied++
		}
	}
	return firstErr
}

// CatchUp applies any committed entries a peer missed while dead. Call after
// a node becomes live again.
func (g *Group) CatchUp(node NodeID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.catchUpPeerLocked(node)
}

// catchUpPeerLocked applies committed entries the peer has not yet applied.
// Lease acquisition and transfer run it before granting.
func (g *Group) catchUpPeerLocked(node NodeID) error {
	for _, p := range g.peers {
		if p.id != node {
			continue
		}
		for p.applied < g.commit {
			e := g.log[p.applied]
			if err := p.sm.Apply(p.applied+1, e.cmd); err != nil {
				return err
			}
			p.applied++
		}
		return nil
	}
	return ErrUnknownPeer
}

// AppliedIndex returns a peer's applied index (for tests and rebalancing).
func (g *Group) AppliedIndex(node NodeID) (uint64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, p := range g.peers {
		if p.id == node {
			return p.applied, nil
		}
	}
	return 0, ErrUnknownPeer
}

// CommitIndex returns the group's commit index.
func (g *Group) CommitIndex() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.commit
}

func (g *Group) hasPeerLocked(node NodeID) bool {
	for _, p := range g.peers {
		if p.id == node {
			return true
		}
	}
	return false
}

func (g *Group) liveCountLocked() int {
	n := 0
	for _, p := range g.peers {
		if g.live(p.id) {
			n++
		}
	}
	return n
}
