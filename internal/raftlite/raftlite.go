// Package raftlite implements per-range quorum replication with epoch-style
// leases, in the spirit of CockroachDB's use of Raft (§3.1 of the paper). A
// Group replicates a command log across peers, commits entries once a quorum
// of live peers has accepted them, and applies committed entries to each
// peer's state machine. Leases gate serving: only the leaseholder may propose
// writes or serve consistent reads, and an overloaded node that stops
// heartbeating loses its leases — the destabilizing behavior the paper's
// Fig 12 shows admission control preventing.
package raftlite

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"crdbserverless/internal/faultinject"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/metric"
	"crdbserverless/internal/timeutil"
	"crdbserverless/internal/trace"
)

// NodeID identifies a node hosting replicas.
type NodeID = kvpb.NodeID

// StateMachine is the replicated state a peer applies committed commands to.
type StateMachine interface {
	// Apply applies the command at the given log index. Apply is invoked in
	// strictly increasing index order on each peer.
	Apply(index uint64, cmd []byte) error
}

// SnapshotStateMachine is a StateMachine that can ship its full state to a
// peer that has fallen behind the group's log truncation point. Snapshot
// serializes the donor's applied state; ApplySnapshot replaces the target's
// state with it and fast-forwards the target to the donor's applied index.
// Log replay resumes from there.
type SnapshotStateMachine interface {
	StateMachine
	Snapshot() ([]byte, error)
	ApplySnapshot(index uint64, data []byte) error
}

// LivenessFunc reports whether a node is currently live (heartbeating). The
// KV layer wires this to its node-health tracker; an overloaded node that
// misses heartbeats reads as dead and cannot hold leases or ack proposals.
type LivenessFunc func(NodeID) bool

// Lease grants one node the right to serve a range until expiration.
type Lease struct {
	Holder     NodeID
	Expiration time.Time
	Sequence   uint64
}

// Valid reports whether the lease is held at the given instant.
func (l Lease) Valid(now time.Time) bool {
	return l.Holder != 0 && now.Before(l.Expiration)
}

// Errors returned by Group methods.
var (
	ErrNotLeaseholder = errors.New("raftlite: not leaseholder")
	ErrNoQuorum       = errors.New("raftlite: no quorum of live replicas")
	ErrUnknownPeer    = errors.New("raftlite: node has no replica of this range")
	// ErrSnapshotUnavailable reports a peer behind the log truncation point
	// with no live snapshot-capable donor to catch it up from.
	ErrSnapshotUnavailable = errors.New("raftlite: peer behind truncation point and no snapshot donor available")
)

type entry struct {
	term uint64
	cmd  []byte
}

// CommitMetrics holds the group-commit instrumentation. One instance is
// shared by every Group registered against the same metric.Registry (the
// Registry panics on duplicate names, so per-group registration is not an
// option), mirroring lsm.ReadMetrics.
type CommitMetrics struct {
	// BatchSize is the raft.commit.batch_size histogram: entries committed
	// per commit round. Histogram buckets are duration-typed, so a round of
	// n entries records as n nanoseconds — a unit pun that keeps the
	// exposition machinery unchanged (1ns tick = 1 entry).
	BatchSize *metric.Histogram
	// Batches and Entries count commit rounds and committed entries; their
	// ratio is the realized group-commit factor.
	Batches *metric.Counter
	Entries *metric.Counter
}

// NewCommitMetrics registers the commit-round instrumentation on reg and
// returns the shared instance to hand to each Group's Config.
func NewCommitMetrics(reg *metric.Registry) *CommitMetrics {
	return &CommitMetrics{
		BatchSize: reg.NewHistogram("raft.commit.batch_size"),
		Batches:   reg.NewCounter("raft.commit.batches"),
		Entries:   reg.NewCounter("raft.commit.entries"),
	}
}

// record notes one commit round of n entries. Nil-safe: groups without
// metrics pay only the nil check.
func (m *CommitMetrics) record(n int) {
	if m == nil {
		return
	}
	m.BatchSize.Record(time.Duration(n))
	m.Batches.Inc(1)
	m.Entries.Inc(int64(n))
}

// proposal is one waiter in the group-commit queue.
type proposal struct {
	node NodeID
	cmd  []byte
	// index is the log index assigned at append (0 when rejected), and
	// batch the number of entries committed by the round that served this
	// proposal; both are read only after done is closed.
	index uint64
	batch int
	err   error
	done  chan struct{}
}

type peer struct {
	id      NodeID
	sm      StateMachine
	applied uint64
}

// Group is a single range's replication group.
type Group struct {
	rangeID        int64
	clock          timeutil.Clock
	live           LivenessFunc
	leaseDur       time.Duration
	faults         *faultinject.Registry
	commitOverhead time.Duration
	disableGroup   bool
	commitMetrics  *CommitMetrics

	// seq is the group-commit sequencer: proposers enqueue, the first
	// arrival becomes the round leader and drains the queue into commit
	// rounds. seq.mu orders the queue and is never held across a round.
	seq struct {
		mu      sync.Mutex
		queue   []*proposal
		leading bool
	}

	retention uint64

	mu   sync.Mutex
	term uint64
	// log holds the entries after the truncation point: log[i] is the entry
	// at index truncated+i+1. Entries at or below truncated were compacted
	// away once every live peer applied them (keeping retention extras); a
	// peer behind the truncation point rejoins via snapshot.
	log       []entry
	truncated uint64
	commit    uint64
	peers     []*peer
	lease     Lease
	// snapshots counts snapshot catch-ups performed (observability; the
	// chaos harness reports it per run).
	snapshots int64
}

// Config configures a Group.
type Config struct {
	RangeID int64
	Clock   timeutil.Clock
	// Liveness reports node health; nil means all nodes are always live.
	Liveness LivenessFunc
	// LeaseDuration is how long a lease lasts without extension. Defaults
	// to 9 seconds (3 missed 3s heartbeats), mirroring CRDB defaults.
	LeaseDuration time.Duration
	// Faults, when non-nil, arms the group's fault-injection sites
	// (raftlite.propose.delay, raftlite.propose.err, raftlite.lease.expire).
	// The lease.expire site is consulted under the group lock, so configure
	// it without a Delay.
	Faults *faultinject.Registry
	// DisableGroupCommit forces one commit round per proposal — the
	// pre-group-commit write path. Benchmarks use it as the baseline, the
	// same role lsm.Options.DisableReadAcceleration plays for reads.
	DisableGroupCommit bool
	// CommitOverhead models the fixed cost of one commit round (quorum
	// round-trip + log sync) as a sleep while the round is in flight. Group
	// commit amortizes it over the batch. Zero, the default, skips the
	// sleep entirely, keeping simulated-clock and chaos runs unchanged.
	CommitOverhead time.Duration
	// CommitMetrics, when non-nil, receives the commit-round
	// instrumentation (raft.commit.batch_size and friends). Shared across
	// groups; see NewCommitMetrics.
	CommitMetrics *CommitMetrics
	// LogRetention, when > 0, enables log truncation: after each commit
	// round the log is compacted up to the minimum applied index over live
	// peers minus LogRetention entries of slack (so a briefly-lagging peer
	// can still catch up from the log). A peer that falls behind the
	// truncation point — dead through many rounds, or a recovered store
	// whose durable applied index regressed — rejoins via snapshot from a
	// live SnapshotStateMachine peer. 0 (the default) never truncates.
	LogRetention uint64
}

// NewGroup creates a replication group over the given nodes. Each node's
// replica applies committed commands to the corresponding state machine.
func NewGroup(cfg Config, nodes []NodeID, sms []StateMachine) (*Group, error) {
	if len(nodes) == 0 || len(nodes) != len(sms) {
		return nil, fmt.Errorf("raftlite: %d nodes with %d state machines", len(nodes), len(sms))
	}
	if cfg.Clock == nil {
		cfg.Clock = timeutil.NewRealClock()
	}
	if cfg.Liveness == nil {
		cfg.Liveness = func(NodeID) bool { return true }
	}
	if cfg.LeaseDuration == 0 {
		cfg.LeaseDuration = 9 * time.Second
	}
	g := &Group{
		rangeID:        cfg.RangeID,
		clock:          cfg.Clock,
		live:           cfg.Liveness,
		leaseDur:       cfg.LeaseDuration,
		faults:         cfg.Faults,
		commitOverhead: cfg.CommitOverhead,
		disableGroup:   cfg.DisableGroupCommit,
		commitMetrics:  cfg.CommitMetrics,
		retention:      cfg.LogRetention,
		term:           1,
	}
	for i, id := range nodes {
		g.peers = append(g.peers, &peer{id: id, sm: sms[i]})
	}
	return g, nil
}

// RangeID returns the range this group replicates.
func (g *Group) RangeID() int64 { return g.rangeID }

// Replicas returns the node IDs holding replicas.
func (g *Group) Replicas() []NodeID {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]NodeID, len(g.peers))
	for i, p := range g.peers {
		out[i] = p.id
	}
	return out
}

// quorum returns the number of replicas needed to commit.
func (g *Group) quorum() int { return len(g.peers)/2 + 1 }

// Lease returns the current lease (which may be expired).
func (g *Group) Lease() Lease {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.lease
}

// Leaseholder returns the node holding a valid lease, or (0, false).
func (g *Group) Leaseholder() (NodeID, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	now := g.clock.Now()
	if g.lease.Valid(now) && g.live(g.lease.Holder) {
		return g.lease.Holder, true
	}
	return 0, false
}

// AcquireLease attempts to grant the lease to node. It succeeds when the
// current lease is invalid (expired or holder dead) or already held by node,
// and a quorum of replicas is live. Lease acquisition is itself a replicated
// decision in real Raft; here the quorum check models that requirement.
func (g *Group) AcquireLease(node NodeID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.hasPeerLocked(node) {
		return ErrUnknownPeer
	}
	if !g.live(node) {
		return fmt.Errorf("raftlite: node %d is not live", node)
	}
	now := g.clock.Now()
	if g.lease.Valid(now) && g.live(g.lease.Holder) && g.lease.Holder != node {
		return &kvpb.NotLeaseholderError{RangeID: g.rangeID, Leaseholder: g.lease.Holder}
	}
	if g.liveCountLocked() < g.quorum() {
		return ErrNoQuorum
	}
	// A node that was dead while entries committed must apply them before it
	// may serve: leases gate consistent reads, and reads serve from applied
	// state, so granting first would open a stale-read window on the new
	// leaseholder until something else triggered a catch-up.
	if err := g.catchUpPeerLocked(node); err != nil {
		return err
	}
	g.lease = Lease{
		Holder:     node,
		Expiration: now.Add(g.leaseDur),
		Sequence:   g.lease.Sequence + 1,
	}
	return nil
}

// TransferLease moves a valid lease from its holder to another replica.
func (g *Group) TransferLease(from, to NodeID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.hasPeerLocked(to) {
		return ErrUnknownPeer
	}
	now := g.clock.Now()
	if !g.lease.Valid(now) || g.lease.Holder != from {
		return ErrNotLeaseholder
	}
	// Same catch-up-before-grant rule as AcquireLease: the target may have
	// been dead while entries committed.
	if err := g.catchUpPeerLocked(to); err != nil {
		return err
	}
	g.lease = Lease{
		Holder:     to,
		Expiration: now.Add(g.leaseDur),
		Sequence:   g.lease.Sequence + 1,
	}
	return nil
}

// ExtendLease renews the holder's lease (the heartbeat path). Extending a
// lease the node does not hold is an error.
func (g *Group) ExtendLease(node NodeID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	now := g.clock.Now()
	if !g.lease.Valid(now) || g.lease.Holder != node {
		return ErrNotLeaseholder
	}
	g.lease.Expiration = now.Add(g.leaseDur)
	return nil
}

// Propose replicates cmd through the group on behalf of node, which must
// hold a valid lease. On success the command is committed and applied to
// every live replica; dead replicas catch up when they next apply. See
// ProposeCtx for the group-commit mechanics.
func (g *Group) Propose(node NodeID, cmd []byte) error {
	return g.ProposeCtx(context.Background(), node, cmd)
}

// ProposeCtx is Propose with trace propagation: if ctx carries a span, the
// commit outcome is recorded on it as an event (never a child span, so
// Fig-10-style decompositions of the parent keep summing exactly).
//
// Concurrent proposals are coalesced by a group-commit sequencer: the first
// proposer to find no round in flight becomes the leader, drains the queue,
// and runs one append+quorum+apply round for the whole batch, waking every
// waiter with its per-entry result. The queue is FIFO and the leader appends
// in arrival order, so proposals never reorder. Admission (lease validity,
// proposer liveness, quorum of live acks) is checked per proposal inside the
// round: a rejected proposal neither blocks nor fails its round-mates. With
// exactly one proposer at a time — every deterministic single-threaded
// harness in this repo — each round carries exactly one entry and the
// observable behavior (fault-consult order, clock reads, apply order) is
// identical to the pre-batching path.
func (g *Group) ProposeCtx(ctx context.Context, node NodeID, cmd []byte) error {
	// Fault sites, consulted before the sequencer and the group lock so
	// configured delays do not sleep under either: a scheduling delay before
	// the proposal enters the group, and an outright proposal failure
	// (dropped before append — the caller sees an error and nothing
	// replicated).
	g.faults.Should("raftlite.propose.delay")
	if err := g.faults.MaybeErr("raftlite.propose.err"); err != nil {
		return err
	}
	p := &proposal{node: node, cmd: cmd, done: make(chan struct{})}
	if g.disableGroup {
		// Baseline: one commit round per proposal, no coalescing.
		g.commitRound([]*proposal{p})
		g.traceCommit(ctx, p)
		return p.err
	}
	g.seq.mu.Lock()
	g.seq.queue = append(g.seq.queue, p)
	if g.seq.leading {
		// A leader is draining the queue; it will carry this proposal in
		// its next round.
		g.seq.mu.Unlock()
		<-p.done
		g.traceCommit(ctx, p)
		return p.err
	}
	g.seq.leading = true
	for len(g.seq.queue) > 0 {
		batch := g.seq.queue
		g.seq.queue = nil
		g.seq.mu.Unlock()
		g.commitRound(batch)
		g.seq.mu.Lock()
	}
	g.seq.leading = false
	g.seq.mu.Unlock()
	g.traceCommit(ctx, p)
	return p.err
}

// commitRound runs one append+quorum+apply round for a batch of proposals,
// filling each proposal's err/index, and wakes the waiters.
func (g *Group) commitRound(batch []*proposal) {
	g.mu.Lock()
	now := g.clock.Now()
	//lint:allow lockscope fault site is delay-free by contract (Config.Faults)
	if g.faults.Should("raftlite.lease.expire") {
		// Simulated lease loss (a liveness blip reaching the lease record):
		// force-expire so the validity check below redirects the proposers
		// into reacquisition.
		g.lease.Expiration = now
	}
	appended := 0
	for _, p := range batch {
		if p.err = g.admitProposalLocked(p.node, now); p.err != nil {
			continue
		}
		g.log = append(g.log, entry{term: g.term, cmd: p.cmd})
		p.index = g.truncated + uint64(len(g.log))
		appended++
	}
	if appended > 0 {
		if g.commitOverhead > 0 {
			// One quorum round-trip + log sync per commit round. Rounds are
			// serialized at the leader — an unpipelined log has at most one
			// round in flight — so the sleep stays inside the critical
			// section: that serialization is precisely the cost group
			// commit amortizes over the batch.
			//lint:allow lockscope models the serialized commit round; zero in every deterministic config
			g.clock.Sleep(g.commitOverhead)
		}
		g.commit = g.truncated + uint64(len(g.log))
		if roundErr := g.applyCommittedLocked(); roundErr != nil {
			// An apply error surfaces on every proposal that committed in
			// this round, matching the old one-proposal-per-round path where
			// the lone proposer received it.
			for _, p := range batch {
				if p.err == nil {
					p.err = roundErr
				}
			}
		}
		g.maybeTruncateLocked()
		g.commitMetrics.record(appended)
	}
	g.mu.Unlock()
	for _, p := range batch {
		p.batch = appended
		close(p.done)
	}
}

// admitProposalLocked checks whether node may commit a proposal right now:
// it must hold a valid lease, be live, and see a quorum of live replicas
// (the proposer acks implicitly).
func (g *Group) admitProposalLocked(node NodeID, now time.Time) error {
	if !g.lease.Valid(now) || g.lease.Holder != node {
		holder := g.lease.Holder
		if !g.lease.Valid(now) {
			holder = 0
		}
		return &kvpb.NotLeaseholderError{RangeID: g.rangeID, Leaseholder: holder}
	}
	if !g.live(node) {
		return ErrNoQuorum
	}
	acks := 0
	for _, p := range g.peers {
		if g.live(p.id) {
			acks++
		}
	}
	if acks < g.quorum() {
		return ErrNoQuorum
	}
	return nil
}

// traceCommit records the commit outcome on the caller's span. Events carry
// error classes, never error strings, per the determinism rules (DESIGN.md
// §9). Nil-safe: an untraced ctx costs one nil check.
func (g *Group) traceCommit(ctx context.Context, p *proposal) {
	sp := trace.SpanFromContext(ctx)
	if sp == nil {
		return
	}
	if p.err != nil {
		sp.Eventf("raft.commit: r%d rejected (%s)", g.rangeID, proposalErrClass(p.err))
		return
	}
	sp.Eventf("raft.commit: r%d index=%d batch=%d", g.rangeID, p.index, p.batch)
}

// proposalErrClass maps a proposal error to a stable class name for trace
// events.
func proposalErrClass(err error) string {
	var nle *kvpb.NotLeaseholderError
	switch {
	case errors.As(err, &nle):
		return "not_leaseholder"
	case errors.Is(err, ErrNoQuorum):
		return "no_quorum"
	default:
		return "apply_error"
	}
}

// entryLocked returns the log entry at index (must be above the truncation
// point and at most the last appended index).
func (g *Group) entryLocked(index uint64) entry {
	return g.log[index-g.truncated-1]
}

// applyCommittedLocked applies newly committed entries to every live peer,
// and lets previously-dead peers catch up. A live peer that has fallen
// behind the truncation point (it was dead while the log compacted, or its
// recovered store regressed) is first restored via snapshot; if no donor is
// available it is skipped this round and retried on the next.
func (g *Group) applyCommittedLocked() error {
	var firstErr error
	for _, p := range g.peers {
		if !g.live(p.id) {
			continue
		}
		if p.applied < g.truncated {
			if err := g.snapshotCatchUpLocked(p); err != nil {
				continue // stays behind; a later round or explicit CatchUp retries
			}
		}
		for p.applied < g.commit {
			e := g.entryLocked(p.applied + 1)
			if err := p.sm.Apply(p.applied+1, e.cmd); err != nil && firstErr == nil {
				firstErr = err
			}
			p.applied++
		}
	}
	return firstErr
}

// maybeTruncateLocked compacts the log prefix every live peer has applied,
// keeping retention entries of slack so short-lived laggards can still use
// log replay. Dead peers do not hold back truncation — that is the point:
// they rejoin via snapshot. No-op unless Config.LogRetention was set.
func (g *Group) maybeTruncateLocked() {
	if g.retention == 0 {
		return
	}
	min := g.commit
	for _, p := range g.peers {
		if g.live(p.id) && p.applied < min {
			min = p.applied
		}
	}
	if min <= g.retention {
		return
	}
	target := min - g.retention
	if target <= g.truncated {
		return
	}
	drop := target - g.truncated
	g.log = append([]entry(nil), g.log[drop:]...)
	g.truncated = target
}

// snapshotCatchUpLocked restores a peer that is behind the truncation point
// from the most advanced live snapshot-capable donor, then leaves log replay
// to the caller. Donor choice is deterministic: highest applied index wins,
// first peer in replica order on ties.
func (g *Group) snapshotCatchUpLocked(p *peer) error {
	target, ok := p.sm.(SnapshotStateMachine)
	if !ok {
		return ErrSnapshotUnavailable
	}
	var donor *peer
	for _, d := range g.peers {
		if d == p || !g.live(d.id) {
			continue
		}
		if _, ok := d.sm.(SnapshotStateMachine); !ok {
			continue
		}
		if donor == nil || d.applied > donor.applied {
			donor = d
		}
	}
	// The donor must reach the replayable log: a snapshot lands the target at
	// the donor's applied index, and replay needs every entry above it to
	// still exist. Truncation only advances past indexes every live peer
	// applied, so live donors normally qualify — but a group seeded from a
	// predecessor (SeedState) can hold live peers below its truncation point,
	// and they must not donate.
	if donor == nil || donor.applied <= p.applied || donor.applied < g.truncated {
		return ErrSnapshotUnavailable
	}
	data, err := donor.sm.(SnapshotStateMachine).Snapshot()
	if err != nil {
		return err
	}
	if err := target.ApplySnapshot(donor.applied, data); err != nil {
		return err
	}
	p.applied = donor.applied
	g.snapshots++
	return nil
}

// SeedState initializes a fresh group as the logical continuation of a
// predecessor whose commit index had reached commit — the right half of a
// range split, or a group rebuilt after a replica move. The data below commit
// already lives in the peers' state machines, so the log starts empty with
// everything at or below commit treated as truncated, and each peer's applied
// index carries over from the predecessor (capped at commit; peers missing
// from the map start at zero). A peer that was lagging in the predecessor is
// behind this group's truncation point and rejoins via snapshot — without
// seeding, a fresh group at commit zero would consider such a peer caught up
// and its stale state would never heal. Call before the group serves
// proposals.
func (g *Group) SeedState(commit uint64, applied map[NodeID]uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.truncated = commit
	g.commit = commit
	for _, p := range g.peers {
		a := applied[p.id]
		if a > commit {
			a = commit
		}
		p.applied = a
	}
}

// CatchUp applies any committed entries a peer missed while dead. Call after
// a node becomes live again.
func (g *Group) CatchUp(node NodeID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.catchUpPeerLocked(node)
}

// catchUpPeerLocked applies committed entries the peer has not yet applied,
// going through a snapshot first when the peer is behind the truncation
// point. Lease acquisition and transfer run it before granting.
func (g *Group) catchUpPeerLocked(node NodeID) error {
	for _, p := range g.peers {
		if p.id != node {
			continue
		}
		if p.applied < g.truncated {
			if err := g.snapshotCatchUpLocked(p); err != nil {
				return err
			}
		}
		for p.applied < g.commit {
			e := g.entryLocked(p.applied + 1)
			if err := p.sm.Apply(p.applied+1, e.cmd); err != nil {
				return err
			}
			p.applied++
		}
		return nil
	}
	return ErrUnknownPeer
}

// RegressApplied lowers a peer's applied index to the given value (no-op if
// the peer is already at or below it). A store that crashed and recovered
// calls this with the applied index its durable state actually reached, so
// the group replays — or snapshots — the suffix the crash tore away.
func (g *Group) RegressApplied(node NodeID, applied uint64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, p := range g.peers {
		if p.id == node {
			if applied < p.applied {
				p.applied = applied
			}
			return nil
		}
	}
	return ErrUnknownPeer
}

// Snapshots returns the cumulative number of snapshot catch-ups performed.
func (g *Group) Snapshots() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.snapshots
}

// TruncatedIndex returns the log truncation point (0 when never truncated).
func (g *Group) TruncatedIndex() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.truncated
}

// AppliedIndex returns a peer's applied index (for tests and rebalancing).
func (g *Group) AppliedIndex(node NodeID) (uint64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, p := range g.peers {
		if p.id == node {
			return p.applied, nil
		}
	}
	return 0, ErrUnknownPeer
}

// CommitIndex returns the group's commit index.
func (g *Group) CommitIndex() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.commit
}

func (g *Group) hasPeerLocked(node NodeID) bool {
	for _, p := range g.peers {
		if p.id == node {
			return true
		}
	}
	return false
}

func (g *Group) liveCountLocked() int {
	n := 0
	for _, p := range g.peers {
		if g.live(p.id) {
			n++
		}
	}
	return n
}
