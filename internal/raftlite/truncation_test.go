package raftlite

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"crdbserverless/internal/timeutil"
)

// snapSM is a SnapshotStateMachine over a simple key=value map. Snapshot
// serializes the map deterministically; ApplySnapshot replaces the state.
type snapSM struct {
	mu    sync.Mutex
	state map[string]string
	order []string // insertion order, for deterministic snapshots
	snaps int
}

func newSnapSM() *snapSM { return &snapSM{state: map[string]string{}} }

func (m *snapSM) Apply(index uint64, cmd []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	k, v, ok := strings.Cut(string(cmd), "=")
	if !ok {
		return fmt.Errorf("bad command %q", cmd)
	}
	if _, exists := m.state[k]; !exists {
		m.order = append(m.order, k)
	}
	m.state[k] = v
	return nil
}

func (m *snapSM) Snapshot() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sb strings.Builder
	for _, k := range m.order {
		fmt.Fprintf(&sb, "%s=%s\n", k, m.state[k])
	}
	return []byte(sb.String()), nil
}

func (m *snapSM) ApplySnapshot(index uint64, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.state = map[string]string{}
	m.order = nil
	for _, line := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
		if line == "" {
			continue
		}
		k, v, ok := strings.Cut(line, "=")
		if !ok {
			return fmt.Errorf("bad snapshot line %q", line)
		}
		m.state[k] = v
		m.order = append(m.order, k)
	}
	m.snaps++
	return nil
}

func (m *snapSM) get(k string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state[k]
}

type snapFixture struct {
	clock *timeutil.ManualClock
	sms   []*snapSM
	group *Group
	dead  map[NodeID]bool
}

func newSnapFixture(t *testing.T, n int, retention uint64) *snapFixture {
	t.Helper()
	f := &snapFixture{
		clock: timeutil.NewManualClock(time.Unix(0, 0)),
		dead:  map[NodeID]bool{},
	}
	var nodes []NodeID
	var sms []StateMachine
	for i := 1; i <= n; i++ {
		sm := newSnapSM()
		f.sms = append(f.sms, sm)
		nodes = append(nodes, NodeID(i))
		sms = append(sms, sm)
	}
	g, err := NewGroup(Config{
		RangeID:       9,
		Clock:         f.clock,
		Liveness:      func(id NodeID) bool { return !f.dead[id] },
		LeaseDuration: time.Hour,
		LogRetention:  retention,
	}, nodes, sms)
	if err != nil {
		t.Fatal(err)
	}
	f.group = g
	return f
}

func (f *snapFixture) propose(t *testing.T, kv string) {
	t.Helper()
	if err := f.group.Propose(1, []byte(kv)); err != nil {
		t.Fatalf("propose %q: %v", kv, err)
	}
}

// TestLogTruncationAdvances: with every peer live, the log compacts down to
// the retention window as commits advance.
func TestLogTruncationAdvances(t *testing.T) {
	f := newSnapFixture(t, 3, 4)
	if err := f.group.AcquireLease(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		f.propose(t, fmt.Sprintf("k%02d=v%02d", i, i))
	}
	if got, want := f.group.CommitIndex(), uint64(20); got != want {
		t.Fatalf("commit = %d, want %d", got, want)
	}
	if got, want := f.group.TruncatedIndex(), uint64(16); got != want {
		t.Fatalf("truncated = %d, want %d", got, want)
	}
	f.group.mu.Lock()
	logLen := len(f.group.log)
	f.group.mu.Unlock()
	if logLen != 4 {
		t.Fatalf("log holds %d entries, want 4 (retention)", logLen)
	}
}

// TestSnapshotCatchUpBehindTruncation: a peer dead through enough commits to
// fall behind the truncation point rejoins via snapshot and converges.
func TestSnapshotCatchUpBehindTruncation(t *testing.T) {
	f := newSnapFixture(t, 3, 2)
	if err := f.group.AcquireLease(1); err != nil {
		t.Fatal(err)
	}
	f.propose(t, "a=1")
	f.dead[3] = true
	for i := 0; i < 15; i++ {
		f.propose(t, fmt.Sprintf("k%02d=v%02d", i, i))
	}
	if tr := f.group.TruncatedIndex(); tr == 0 {
		t.Fatal("log never truncated")
	}
	ap3, _ := f.group.AppliedIndex(3)
	if ap3 >= f.group.TruncatedIndex() {
		t.Fatalf("test setup: peer 3 (applied=%d) not behind truncation (%d)",
			ap3, f.group.TruncatedIndex())
	}
	f.dead[3] = false
	if err := f.group.CatchUp(3); err != nil {
		t.Fatal(err)
	}
	if f.sms[2].snaps != 1 {
		t.Fatalf("peer 3 received %d snapshots, want 1", f.sms[2].snaps)
	}
	if got := f.group.Snapshots(); got != 1 {
		t.Fatalf("Snapshots() = %d, want 1", got)
	}
	ap3, _ = f.group.AppliedIndex(3)
	if ap3 != f.group.CommitIndex() {
		t.Fatalf("peer 3 applied %d, commit %d", ap3, f.group.CommitIndex())
	}
	if got := f.sms[2].get("k14"); got != "v14" {
		t.Fatalf("peer 3 state k14 = %q, want v14", got)
	}
	if got := f.sms[2].get("a"); got != "1" {
		t.Fatalf("peer 3 state a = %q, want 1 (pre-truncation write)", got)
	}
}

// TestLaggardWithinRetentionUsesLogReplay: a peer behind but above the
// truncation point catches up from the log alone — no snapshot.
func TestLaggardWithinRetentionUsesLogReplay(t *testing.T) {
	f := newSnapFixture(t, 3, 100)
	if err := f.group.AcquireLease(1); err != nil {
		t.Fatal(err)
	}
	f.dead[3] = true
	for i := 0; i < 10; i++ {
		f.propose(t, fmt.Sprintf("k%02d=v%02d", i, i))
	}
	f.dead[3] = false
	if err := f.group.CatchUp(3); err != nil {
		t.Fatal(err)
	}
	if f.sms[2].snaps != 0 {
		t.Fatalf("peer 3 received %d snapshots, want 0 (within retention)", f.sms[2].snaps)
	}
	if got := f.sms[2].get("k09"); got != "v09" {
		t.Fatalf("peer 3 state k09 = %q, want v09", got)
	}
}

// TestRegressAppliedReplaysSuffix models a crashed store: its durable state
// regressed to an earlier applied index; after RegressApplied the group
// replays (or snapshots) the lost suffix on the next catch-up.
func TestRegressAppliedReplaysSuffix(t *testing.T) {
	f := newSnapFixture(t, 3, 50)
	if err := f.group.AcquireLease(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		f.propose(t, fmt.Sprintf("k%02d=v%02d", i, i))
	}
	// "Crash" peer 2 back to applied=5; wipe its post-5 state the way a
	// recovered store would have (keys k05..k11 lost).
	f.sms[1].mu.Lock()
	for i := 5; i < 12; i++ {
		delete(f.sms[1].state, fmt.Sprintf("k%02d", i))
	}
	f.sms[1].mu.Unlock()
	if err := f.group.RegressApplied(2, 5); err != nil {
		t.Fatal(err)
	}
	if ap, _ := f.group.AppliedIndex(2); ap != 5 {
		t.Fatalf("applied after regress = %d, want 5", ap)
	}
	if err := f.group.CatchUp(2); err != nil {
		t.Fatal(err)
	}
	if ap, _ := f.group.AppliedIndex(2); ap != 12 {
		t.Fatalf("applied after catch-up = %d, want 12", ap)
	}
	if got := f.sms[1].get("k11"); got != "v11" {
		t.Fatalf("peer 2 state k11 = %q, want v11 (replayed)", got)
	}
	// Regressing upward is a no-op.
	if err := f.group.RegressApplied(2, 99); err != nil {
		t.Fatal(err)
	}
	if ap, _ := f.group.AppliedIndex(2); ap != 12 {
		t.Fatalf("applied after upward regress = %d, want 12", ap)
	}
}

// TestRegressBehindTruncationSnapshots: combining both paths — a regressed
// peer whose replay target was truncated away goes through a snapshot.
func TestRegressBehindTruncationSnapshots(t *testing.T) {
	f := newSnapFixture(t, 3, 2)
	if err := f.group.AcquireLease(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		f.propose(t, fmt.Sprintf("k%02d=v%02d", i, i))
	}
	if err := f.group.RegressApplied(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.group.CatchUp(2); err != nil {
		t.Fatal(err)
	}
	if f.sms[1].snaps != 1 {
		t.Fatalf("peer 2 received %d snapshots, want 1", f.sms[1].snaps)
	}
	if ap, _ := f.group.AppliedIndex(2); ap != f.group.CommitIndex() {
		t.Fatalf("peer 2 applied %d, commit %d", ap, f.group.CommitIndex())
	}
}

// TestSeedStateLaggingPeerSnapshots: a group seeded as the continuation of a
// predecessor (a split's right half) treats a peer that was lagging in the
// predecessor as behind its truncation point, and heals it via snapshot —
// without seeding the peer would read as caught up and stay stale forever.
func TestSeedStateLaggingPeerSnapshots(t *testing.T) {
	f := newSnapFixture(t, 3, 2)
	// The predecessor committed through 10; peer 3 had applied only 4 of it.
	// Its state machine carries what it applied (the kvserver analog: the
	// right-span keys in its engine are stale).
	for _, sm := range f.sms[:2] {
		for i := 0; i < 10; i++ {
			sm.Apply(uint64(i+1), []byte(fmt.Sprintf("k%02d=new", i)))
		}
	}
	for i := 0; i < 4; i++ {
		f.sms[2].Apply(uint64(i+1), []byte(fmt.Sprintf("k%02d=new", i)))
	}
	f.group.SeedState(10, map[NodeID]uint64{1: 10, 2: 10, 3: 4})
	if got, want := f.group.CommitIndex(), uint64(10); got != want {
		t.Fatalf("commit = %d, want %d", got, want)
	}
	if got, want := f.group.TruncatedIndex(), uint64(10); got != want {
		t.Fatalf("truncated = %d, want %d", got, want)
	}
	// The seeded group keeps serving: the next proposal lands at index 11.
	if err := f.group.AcquireLease(1); err != nil {
		t.Fatal(err)
	}
	f.propose(t, "post=split")
	if got, want := f.group.CommitIndex(), uint64(11); got != want {
		t.Fatalf("commit after propose = %d, want %d", got, want)
	}
	if err := f.group.CatchUp(3); err != nil {
		t.Fatal(err)
	}
	if f.sms[2].snaps != 1 {
		t.Fatalf("peer 3 received %d snapshots, want 1", f.sms[2].snaps)
	}
	if ap, _ := f.group.AppliedIndex(3); ap != 11 {
		t.Fatalf("peer 3 applied %d, want 11", ap)
	}
	if got := f.sms[2].get("k09"); got != "new" {
		t.Fatalf("peer 3 state k09 = %q, want new (healed via snapshot)", got)
	}
	if got := f.sms[2].get("post"); got != "split" {
		t.Fatalf("peer 3 state post = %q, want split (replayed)", got)
	}
}

// TestSeedStateNoDonorBelowTruncation: in a seeded group a live peer below
// the truncation point must not donate snapshots — its state predates the
// seed point. With no caught-up donor, catch-up reports the typed error.
func TestSeedStateNoDonorBelowTruncation(t *testing.T) {
	f := newSnapFixture(t, 3, 2)
	// Everyone was lagging in the predecessor: the best peer (3, applied 7)
	// is still below the seed point and must not donate — its snapshot would
	// install pre-seed state that the replayable log cannot repair.
	f.group.SeedState(10, map[NodeID]uint64{1: 5, 2: 4, 3: 7})
	if err := f.group.CatchUp(2); err != ErrSnapshotUnavailable {
		t.Fatalf("CatchUp with best donor below truncation = %v, want ErrSnapshotUnavailable", err)
	}

	// Applied indexes above the seed commit are capped at it, and a peer at
	// the seed point is a valid donor.
	f2 := newSnapFixture(t, 3, 2)
	f2.group.SeedState(10, map[NodeID]uint64{1: 12})
	if ap, _ := f2.group.AppliedIndex(1); ap != 10 {
		t.Fatalf("applied capped = %d, want 10 (commit)", ap)
	}
	if err := f2.group.CatchUp(2); err != nil {
		t.Fatal(err)
	}
	if f2.sms[1].snaps != 1 {
		t.Fatalf("peer 2 received %d snapshots, want 1", f2.sms[1].snaps)
	}
}

// TestSnapshotUnavailableWithoutCapableDonor: a memSM (no Snapshot method)
// group never truncates into trouble... but if a peer regresses behind a
// truncated log with non-snapshot SMs, catch-up reports the typed error.
func TestSnapshotUnavailableWithoutCapableDonor(t *testing.T) {
	f := newFixture(t, 3)
	f.group.retention = 1
	if err := f.group.AcquireLease(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := f.group.Propose(1, []byte(fmt.Sprintf("c%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.group.RegressApplied(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.group.CatchUp(2); err != ErrSnapshotUnavailable {
		t.Fatalf("CatchUp = %v, want ErrSnapshotUnavailable", err)
	}
}
