package raftlite

import (
	"errors"
	"testing"
	"time"

	"crdbserverless/internal/faultinject"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/timeutil"
)

// Regression: a replica that was dead while entries committed could acquire
// the lease (once the old one lapsed) without first applying those entries.
// Reads serve from applied state, so the new leaseholder answered from a
// stale snapshot until something else happened to trigger a catch-up.
func TestAcquireLeaseAppliesPendingEntries(t *testing.T) {
	f := newFixture(t, 3)
	g := f.group
	if err := g.AcquireLease(1); err != nil {
		t.Fatal(err)
	}
	f.dead[3] = true
	for i := 0; i < 5; i++ {
		if err := g.Propose(1, []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := g.AppliedIndex(3); n != 0 {
		t.Fatalf("dead replica applied %d entries", n)
	}
	// Liveness flap: node 3 revives, the holder's lease lapses, and node 3
	// grabs it.
	f.dead[3] = false
	f.clock.Advance(10 * time.Second)
	if err := g.AcquireLease(3); err != nil {
		t.Fatal(err)
	}
	applied, err := g.AppliedIndex(3)
	if err != nil {
		t.Fatal(err)
	}
	if commit := g.CommitIndex(); applied != commit {
		t.Fatalf("new leaseholder applied=%d commit=%d: stale-read window", applied, commit)
	}
	if got := f.sms[2].applied(); len(got) != 5 {
		t.Fatalf("state machine applied %d entries, want 5", len(got))
	}
}

// Same rule on the transfer path: the target may have been dead while
// entries committed.
func TestTransferLeaseAppliesPendingEntries(t *testing.T) {
	f := newFixture(t, 3)
	g := f.group
	if err := g.AcquireLease(1); err != nil {
		t.Fatal(err)
	}
	f.dead[2] = true
	for i := 0; i < 3; i++ {
		if err := g.Propose(1, []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	f.dead[2] = false
	if err := g.TransferLease(1, 2); err != nil {
		t.Fatal(err)
	}
	applied, _ := g.AppliedIndex(2)
	if commit := g.CommitIndex(); applied != commit {
		t.Fatalf("transfer target applied=%d commit=%d", applied, commit)
	}
}

// newFaultGroup builds a 3-node group wired to a fault registry.
func newFaultGroup(t *testing.T, reg *faultinject.Registry) (*Group, *timeutil.ManualClock) {
	t.Helper()
	clock := timeutil.NewManualClock(time.Unix(0, 0))
	nodes := []NodeID{1, 2, 3}
	sms := []StateMachine{&memSM{}, &memSM{}, &memSM{}}
	g, err := NewGroup(Config{RangeID: 7, Clock: clock, Faults: reg}, nodes, sms)
	if err != nil {
		t.Fatal(err)
	}
	return g, clock
}

func TestLeaseExpireFaultForcesReacquisition(t *testing.T) {
	reg := faultinject.New(7, nil)
	g, _ := newFaultGroup(t, reg)
	if err := g.AcquireLease(1); err != nil {
		t.Fatal(err)
	}
	if err := g.Propose(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	reg.Enable("raftlite.lease.expire", faultinject.Site{Probability: 1, MaxFires: 1})
	var nlhe *kvpb.NotLeaseholderError
	if err := g.Propose(1, []byte("y")); !errors.As(err, &nlhe) {
		t.Fatalf("propose under expired lease = %v, want NotLeaseholderError", err)
	}
	if got := g.CommitIndex(); got != 1 {
		t.Fatalf("commit index = %d after rejected proposal, want 1", got)
	}
	// The proposer reacquires (its own expired lease is up for grabs) and
	// the write goes through.
	if err := g.AcquireLease(1); err != nil {
		t.Fatal(err)
	}
	if err := g.Propose(1, []byte("y")); err != nil {
		t.Fatal(err)
	}
}

func TestProposeErrFaultIsRetriable(t *testing.T) {
	reg := faultinject.New(8, nil)
	g, _ := newFaultGroup(t, reg)
	if err := g.AcquireLease(1); err != nil {
		t.Fatal(err)
	}
	reg.Enable("raftlite.propose.err", faultinject.Site{Probability: 1, MaxFires: 1, Retriable: true})
	err := g.Propose(1, []byte("x"))
	if !faultinject.IsInjected(err) || !kvpb.IsRetriable(err) {
		t.Fatalf("err = %v, want retriable injected fault", err)
	}
	if got := g.CommitIndex(); got != 0 {
		t.Fatalf("commit index = %d after dropped proposal, want 0", got)
	}
	if err := g.Propose(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := g.CommitIndex(); got != 1 {
		t.Fatalf("commit index = %d, want 1", got)
	}
}
