package raftlite

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/timeutil"
)

// memSM is a StateMachine recording applied commands.
type memSM struct {
	mu   sync.Mutex
	cmds []string
	errs bool
}

func (m *memSM) Apply(index uint64, cmd []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.errs {
		return errors.New("apply failed")
	}
	if int(index) != len(m.cmds)+1 {
		return fmt.Errorf("apply out of order: index %d after %d entries", index, len(m.cmds))
	}
	m.cmds = append(m.cmds, string(cmd))
	return nil
}

func (m *memSM) applied() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.cmds...)
}

type fixture struct {
	clock *timeutil.ManualClock
	sms   []*memSM
	group *Group
	dead  map[NodeID]bool
}

func newFixture(t *testing.T, n int) *fixture {
	t.Helper()
	f := &fixture{
		clock: timeutil.NewManualClock(time.Unix(0, 0)),
		dead:  map[NodeID]bool{},
	}
	var nodes []NodeID
	var sms []StateMachine
	for i := 1; i <= n; i++ {
		sm := &memSM{}
		f.sms = append(f.sms, sm)
		nodes = append(nodes, NodeID(i))
		sms = append(sms, sm)
	}
	g, err := NewGroup(Config{
		RangeID:       7,
		Clock:         f.clock,
		Liveness:      func(id NodeID) bool { return !f.dead[id] },
		LeaseDuration: 9 * time.Second,
	}, nodes, sms)
	if err != nil {
		t.Fatal(err)
	}
	f.group = g
	return f
}

func TestNewGroupValidation(t *testing.T) {
	if _, err := NewGroup(Config{}, nil, nil); err == nil {
		t.Fatal("empty group should be rejected")
	}
	if _, err := NewGroup(Config{}, []NodeID{1}, []StateMachine{&memSM{}, &memSM{}}); err == nil {
		t.Fatal("mismatched lengths should be rejected")
	}
}

func TestAcquireLeaseAndPropose(t *testing.T) {
	f := newFixture(t, 3)
	if _, ok := f.group.Leaseholder(); ok {
		t.Fatal("new group should have no leaseholder")
	}
	if err := f.group.AcquireLease(1); err != nil {
		t.Fatal(err)
	}
	if lh, ok := f.group.Leaseholder(); !ok || lh != 1 {
		t.Fatalf("leaseholder = %d %v", lh, ok)
	}
	if err := f.group.Propose(1, []byte("cmd1")); err != nil {
		t.Fatal(err)
	}
	for i, sm := range f.sms {
		if got := sm.applied(); len(got) != 1 || got[0] != "cmd1" {
			t.Fatalf("replica %d applied %v", i+1, got)
		}
	}
}

func TestProposeWithoutLeaseFails(t *testing.T) {
	f := newFixture(t, 3)
	err := f.group.Propose(1, []byte("x"))
	var nle *kvpb.NotLeaseholderError
	if !errors.As(err, &nle) {
		t.Fatalf("expected NotLeaseholderError, got %v", err)
	}
	f.group.AcquireLease(1)
	err = f.group.Propose(2, []byte("x"))
	if !errors.As(err, &nle) || nle.Leaseholder != 1 {
		t.Fatalf("non-holder propose: %v", err)
	}
}

func TestLeaseExpiry(t *testing.T) {
	f := newFixture(t, 3)
	f.group.AcquireLease(1)
	f.clock.Advance(10 * time.Second)
	if _, ok := f.group.Leaseholder(); ok {
		t.Fatal("lease should have expired")
	}
	// Another node can now acquire.
	if err := f.group.AcquireLease(2); err != nil {
		t.Fatal(err)
	}
	if lh, _ := f.group.Leaseholder(); lh != 2 {
		t.Fatalf("leaseholder = %d", lh)
	}
}

func TestExtendLeaseKeepsHolding(t *testing.T) {
	f := newFixture(t, 3)
	f.group.AcquireLease(1)
	for i := 0; i < 5; i++ {
		f.clock.Advance(5 * time.Second)
		if err := f.group.ExtendLease(1); err != nil {
			t.Fatal(err)
		}
	}
	if lh, ok := f.group.Leaseholder(); !ok || lh != 1 {
		t.Fatal("extended lease lost")
	}
	if err := f.group.ExtendLease(2); err != ErrNotLeaseholder {
		t.Fatalf("non-holder extend = %v", err)
	}
}

func TestAcquireLeaseConflicts(t *testing.T) {
	f := newFixture(t, 3)
	f.group.AcquireLease(1)
	err := f.group.AcquireLease(2)
	var nle *kvpb.NotLeaseholderError
	if !errors.As(err, &nle) || nle.Leaseholder != 1 {
		t.Fatalf("competing acquire = %v", err)
	}
	// Re-acquiring by the holder extends.
	if err := f.group.AcquireLease(1); err != nil {
		t.Fatal(err)
	}
	if err := f.group.AcquireLease(99); err != ErrUnknownPeer {
		t.Fatalf("unknown peer acquire = %v", err)
	}
}

func TestDeadHolderLeaseTakenOver(t *testing.T) {
	f := newFixture(t, 3)
	f.group.AcquireLease(1)
	f.dead[1] = true
	// Holder is dead: leaseholder query reports none, and node 2 may take
	// the lease immediately (epoch-based takeover).
	if _, ok := f.group.Leaseholder(); ok {
		t.Fatal("dead holder should not be reported")
	}
	if err := f.group.AcquireLease(2); err != nil {
		t.Fatal(err)
	}
	if lh, _ := f.group.Leaseholder(); lh != 2 {
		t.Fatalf("leaseholder = %d", lh)
	}
}

func TestQuorumLoss(t *testing.T) {
	f := newFixture(t, 3)
	f.group.AcquireLease(1)
	f.dead[2] = true
	// 2 of 3 live: still a quorum.
	if err := f.group.Propose(1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	f.dead[3] = true
	// 1 of 3 live: no quorum.
	if err := f.group.Propose(1, []byte("fails")); err != ErrNoQuorum {
		t.Fatalf("propose without quorum = %v", err)
	}
	if err := f.group.AcquireLease(1); err == nil {
		// Lease still held by 1, so re-acquire extends... but quorum is
		// gone; the implementation allows extension via AcquireLease only
		// with quorum.
		t.Fatal("lease acquisition without quorum should fail")
	}
}

func TestDeadReplicaCatchesUp(t *testing.T) {
	f := newFixture(t, 3)
	f.group.AcquireLease(1)
	f.dead[3] = true
	f.group.Propose(1, []byte("a"))
	f.group.Propose(1, []byte("b"))
	if got := f.sms[2].applied(); len(got) != 0 {
		t.Fatalf("dead replica applied %v", got)
	}
	f.dead[3] = false
	if err := f.group.CatchUp(3); err != nil {
		t.Fatal(err)
	}
	if got := f.sms[2].applied(); fmt.Sprint(got) != fmt.Sprint([]string{"a", "b"}) {
		t.Fatalf("caught-up replica applied %v", got)
	}
	idx, err := f.group.AppliedIndex(3)
	if err != nil || idx != 2 {
		t.Fatalf("applied index = %d %v", idx, err)
	}
	if f.group.CommitIndex() != 2 {
		t.Fatalf("commit index = %d", f.group.CommitIndex())
	}
}

func TestCatchUpUnknownPeer(t *testing.T) {
	f := newFixture(t, 3)
	if err := f.group.CatchUp(99); err != ErrUnknownPeer {
		t.Fatalf("CatchUp(99) = %v", err)
	}
	if _, err := f.group.AppliedIndex(99); err != ErrUnknownPeer {
		t.Fatalf("AppliedIndex(99) = %v", err)
	}
}

func TestTransferLease(t *testing.T) {
	f := newFixture(t, 3)
	f.group.AcquireLease(1)
	if err := f.group.TransferLease(1, 2); err != nil {
		t.Fatal(err)
	}
	if lh, _ := f.group.Leaseholder(); lh != 2 {
		t.Fatalf("leaseholder after transfer = %d", lh)
	}
	// Old holder can no longer propose.
	var nle *kvpb.NotLeaseholderError
	if err := f.group.Propose(1, []byte("x")); !errors.As(err, &nle) {
		t.Fatalf("old holder propose = %v", err)
	}
	if err := f.group.TransferLease(1, 2); err != ErrNotLeaseholder {
		t.Fatalf("transfer from non-holder = %v", err)
	}
	if err := f.group.TransferLease(2, 99); err != ErrUnknownPeer {
		t.Fatalf("transfer to unknown = %v", err)
	}
}

func TestLeaseSequenceIncrements(t *testing.T) {
	f := newFixture(t, 3)
	f.group.AcquireLease(1)
	s1 := f.group.Lease().Sequence
	f.group.TransferLease(1, 2)
	s2 := f.group.Lease().Sequence
	if s2 != s1+1 {
		t.Fatalf("sequence %d -> %d", s1, s2)
	}
}

func TestProposalOrderPreserved(t *testing.T) {
	f := newFixture(t, 5)
	f.group.AcquireLease(3)
	want := make([]string, 0, 50)
	for i := 0; i < 50; i++ {
		cmd := fmt.Sprintf("cmd%02d", i)
		want = append(want, cmd)
		if err := f.group.Propose(3, []byte(cmd)); err != nil {
			t.Fatal(err)
		}
	}
	for i, sm := range f.sms {
		if got := sm.applied(); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("replica %d order mismatch: %v", i+1, got)
		}
	}
	if got := f.group.Replicas(); len(got) != 5 {
		t.Fatalf("replicas = %v", got)
	}
}

func TestApplyErrorSurfaces(t *testing.T) {
	f := newFixture(t, 3)
	f.group.AcquireLease(1)
	f.sms[1].errs = true
	if err := f.group.Propose(1, []byte("x")); err == nil {
		t.Fatal("apply error should surface")
	}
}
