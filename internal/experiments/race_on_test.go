//go:build race

package experiments

// raceEnabled reports whether this test binary was built with the race
// detector. The wall-clock experiments run an order of magnitude slower
// under it, which erases the timing contrasts some assertions rely on.
const raceEnabled = true
