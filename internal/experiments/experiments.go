// Package experiments reproduces every table and figure of the paper's
// evaluation (§6). Each experiment is a function returning a structured
// result plus a text rendering that mirrors the paper's rows/series;
// cmd/repro prints them and bench_test.go wraps them as benchmarks.
//
// Absolute numbers differ from the paper's GCP testbed — the substrate here
// is the simulator described in DESIGN.md — but each experiment preserves
// the paper's shape: who wins, by roughly what factor, and where the
// crossovers fall.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"crdbserverless/internal/core"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/sql"
	"crdbserverless/internal/tenantcost"
	"crdbserverless/internal/tenantobs"
	"crdbserverless/internal/timeutil"
	"crdbserverless/internal/txn"
)

// Table renders experiment output as aligned columns.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// testbed is a self-contained KV cluster + tenant registry for experiments.
type testbed struct {
	cluster *kvserver.Cluster
	reg     *core.Registry
	buckets *tenantcost.BucketServer
	clock   timeutil.Clock
	model   *tenantcost.Model
}

// testbedOptions configure newTestbed.
type testbedOptions struct {
	kvNodes   int
	vcpus     int
	cost      kvserver.CostConfig
	admission bool
	clock     timeutil.Clock
	// livenessLimit overrides the executor queue depth beyond which a node
	// fails liveness.
	livenessLimit int
	// obs, when set, receives per-tenant admission-wait observations from
	// each node's CPU queue.
	obs *tenantobs.Plane
}

func newTestbed(opts testbedOptions) (*testbed, error) {
	if opts.kvNodes == 0 {
		opts.kvNodes = 3
	}
	if opts.vcpus == 0 {
		opts.vcpus = 4
	}
	if opts.cost == (kvserver.CostConfig{}) {
		opts.cost = kvserver.DefaultCostConfig()
	}
	if opts.clock == nil {
		opts.clock = timeutil.NewRealClock()
	}
	var nodes []*kvserver.Node
	for i := 1; i <= opts.kvNodes; i++ {
		nodes = append(nodes, kvserver.NewNode(kvserver.NodeConfig{
			ID:                 kvserver.NodeID(i),
			VCPUs:              opts.vcpus,
			Clock:              opts.clock,
			Cost:               opts.cost,
			AdmissionEnabled:   opts.admission,
			LivenessQueueLimit: opts.livenessLimit,
			Obs:                opts.obs,
		}))
	}
	cluster, err := kvserver.NewCluster(kvserver.ClusterConfig{Clock: opts.clock}, nodes)
	if err != nil {
		return nil, err
	}
	cluster.SetRowDecoder(sql.KVRowDecoder())
	buckets := tenantcost.NewBucketServer(opts.clock)
	reg, err := core.NewRegistry(cluster, buckets)
	if err != nil {
		cluster.Close()
		return nil, err
	}
	return &testbed{
		cluster: cluster,
		reg:     reg,
		buckets: buckets,
		clock:   opts.clock,
		model:   tenantcost.DefaultModel(),
	}, nil
}

func (tb *testbed) close() { tb.cluster.Close() }

// tenantHandle bundles a tenant's full SQL stack, with metering and optional
// eCPU throttling — the in-process equivalent of a SQL node.
type tenantHandle struct {
	tenant  *core.Tenant
	metered *tenantMeter
	exec    *sql.Executor
	bucket  *tenantcost.NodeBucket
	model   *tenantcost.Model
	clock   timeutil.Clock
}

// tenantMeter is a MeteredSender-alike local to the experiments package.
type tenantMeter struct {
	inner    txn.Sender
	mu       chan struct{} // 1-slot semaphore avoids importing sync here
	features tenantcost.BatchFeatures
}

func newTenantMeter(inner txn.Sender) *tenantMeter {
	m := &tenantMeter{inner: inner, mu: make(chan struct{}, 1)}
	m.mu <- struct{}{}
	return m
}

// Send implements txn.Sender.
func (m *tenantMeter) Send(ctx context.Context, ba *kvpb.BatchRequest) (*kvpb.BatchResponse, error) {
	resp, err := m.inner.Send(ctx, ba)
	if err != nil {
		return nil, err
	}
	f := tenantcost.FeaturesFromBatch(ba, resp)
	<-m.mu
	m.features.Add(f)
	m.mu <- struct{}{}
	return resp, nil
}

// Features returns accumulated features.
func (m *tenantMeter) Features() tenantcost.BatchFeatures {
	<-m.mu
	f := m.features
	m.mu <- struct{}{}
	return f
}

// newTenant provisions a tenant and its SQL stack. colocated selects the
// traditional deployment cost model; quotaVCPUs > 0 enables eCPU limiting.
func (tb *testbed) newTenant(ctx context.Context, name string, colocated bool, quotaVCPUs float64) (*tenantHandle, error) {
	return tb.newTenantCfg(ctx, name, sql.ExecutorConfig{Colocated: colocated}, quotaVCPUs)
}

// newTenantCfg is newTenant with full executor configuration.
func (tb *testbed) newTenantCfg(ctx context.Context, name string, cfg sql.ExecutorConfig, quotaVCPUs float64) (*tenantHandle, error) {
	colocated := cfg.Colocated
	t, err := tb.reg.CreateTenant(ctx, name, core.TenantOptions{QuotaVCPUs: quotaVCPUs})
	if err != nil {
		return nil, err
	}
	ds := kvserver.NewDistSender(tb.cluster, kvserver.Identity{Tenant: t.ID})
	var sender txn.Sender = colocatedSender{inner: ds, colocated: colocated}
	meter := newTenantMeter(sender)
	coord := txn.NewCoordinator(meter, tb.cluster.Clock(), t.ID)
	catalog := sql.NewCatalog(coord, t.ID)
	exec := sql.NewExecutor(catalog, coord, cfg)
	h := &tenantHandle{
		tenant:  t,
		metered: meter,
		exec:    exec,
		model:   tb.model,
		clock:   tb.clock,
	}
	if quotaVCPUs > 0 {
		h.bucket = tenantcost.NewNodeBucket(tb.buckets, tb.clock, t.ID, 1)
	}
	return h, nil
}

// session returns a fresh session on the tenant's executor.
func (h *tenantHandle) session() *sql.Session { return sql.NewSession(h.exec, "bench") }

// ecpuTokens returns the tenant's cumulative estimated CPU in tokens.
func (h *tenantHandle) ecpuTokens() float64 {
	est := h.model.Estimate(tenantcost.ECPU(h.exec.SQLCPUSeconds()), h.metered.Features())
	return est.Tokens()
}

type colocatedSender struct {
	inner     txn.Sender
	colocated bool
}

func (c colocatedSender) Send(ctx context.Context, ba *kvpb.BatchRequest) (*kvpb.BatchResponse, error) {
	ba.Colocated = c.colocated
	return c.inner.Send(ctx, ba)
}

// throttledDB wraps a session with per-statement eCPU quota enforcement —
// the role server.SQLNode.enforceQuota plays on the wire path.
type throttledDB struct {
	sess   *sql.Session
	handle *tenantHandle
	last   float64
}

// Execute implements workload.DB.
func (d *throttledDB) Execute(ctx context.Context, q string, args ...sql.Datum) (*sql.Result, error) {
	res, err := d.sess.Execute(ctx, q, args...)
	if d.handle.bucket != nil {
		total := d.handle.ecpuTokens()
		delta := total - d.last
		d.last = total
		if delta > 0 {
			if delay := d.handle.bucket.Consume(delta); delay > 0 {
				d.handle.clock.Sleep(delay)
			}
		}
	}
	return res, err
}

// fmtDur renders a duration with 3 significant-ish digits.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	}
}
