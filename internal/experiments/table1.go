package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/metric"
	"crdbserverless/internal/tenantcost"
	"crdbserverless/internal/timeutil"
	"crdbserverless/internal/workload"
)

// scaleCost multiplies every ground-truth cost constant by f.
func scaleCost(c kvserver.CostConfig, f float64) kvserver.CostConfig {
	scale := func(d time.Duration) time.Duration { return time.Duration(float64(d) * f) }
	c.ReadBatchOverhead = scale(c.ReadBatchOverhead)
	c.WriteBatchOverhead = scale(c.WriteBatchOverhead)
	c.ReadRequestCost = scale(c.ReadRequestCost)
	c.WriteRequestCost = scale(c.WriteRequestCost)
	c.ReadByteCost = scale(c.ReadByteCost)
	c.WriteByteCost = scale(c.WriteByteCost)
	c.MarshalByteCost = scale(c.MarshalByteCost)
	return c
}

// scaleModel multiplies the estimated-CPU model's per-feature curves by f.
func scaleModel(m *tenantcost.Model, f float64) *tenantcost.Model {
	scaleCurve := func(p tenantcost.PiecewiseLinear) tenantcost.PiecewiseLinear {
		out := tenantcost.PiecewiseLinear{Points: make([]tenantcost.Point, len(p.Points))}
		for i, pt := range p.Points {
			out.Points[i] = tenantcost.Point{X: pt.X, Y: pt.Y * f}
		}
		return out
	}
	return &tenantcost.Model{
		ReadBatch:    scaleCurve(m.ReadBatch),
		ReadRequest:  scaleCurve(m.ReadRequest),
		ReadByte:     scaleCurve(m.ReadByte),
		WriteBatch:   scaleCurve(m.WriteBatch),
		WriteRequest: scaleCurve(m.WriteRequest),
		WriteByte:    scaleCurve(m.WriteByte),
	}
}

// NoisyConfig selects a resource-control configuration of §6.6.
type NoisyConfig int

// The three configurations of Table 1.
const (
	NoLimits NoisyConfig = iota
	ACOnly
	ACAndECPU
)

// String implements fmt.Stringer.
func (c NoisyConfig) String() string {
	switch c {
	case NoLimits:
		return "No Limits"
	case ACOnly:
		return "AC only"
	case ACAndECPU:
		return "AC & eCPU Limits"
	default:
		return fmt.Sprintf("NoisyConfig(%d)", int(c))
	}
}

// Table1Row is one configuration's outcome for the well-behaved tenant.
type Table1Row struct {
	Config NoisyConfig
	P50    time.Duration
	P99    time.Duration
	// TpmC is the test tenant's transactions per minute.
	TpmC float64
	// Aborts counts failed test-tenant transactions.
	Aborts int64
	// MeanUtilization is the mean per-node CPU utilization.
	MeanUtilization float64
}

// TimelineSample is one point of the Fig 12 / Fig 13 series.
type TimelineSample struct {
	At time.Duration
	// CoresPerNode is CPU cores in use on each KV node (Fig 12 top).
	CoresPerNode []float64
	// LeasesPerNode counts range leases per node (Fig 12 bottom).
	LeasesPerNode []int
	// ECPUPerTenant is each tenant's estimated-CPU consumption rate in
	// vCPUs (Fig 13).
	ECPUPerTenant map[string]float64
}

// Table1Options size the experiment.
type Table1Options struct {
	// Duration per configuration (wall clock). Default 2s.
	Duration time.Duration
	// NoisyTenants and NoisyWorkers shape the antagonists. Defaults 3, 24.
	NoisyTenants int
	NoisyWorkers int
	// CostScale multiplies the ground-truth KV service costs so the noisy
	// load saturates the scaled-down cluster the way 10K-warehouse TPC-C
	// saturates the paper's 96-core one. Default 8.
	CostScale float64
	// TestWorkers and ThinkTime shape the well-behaved tenant. Defaults 4,
	// 25ms.
	TestWorkers int
	ThinkTime   time.Duration
	// NoisyQuotaVCPUs is the eCPU limit per noisy tenant in the third
	// configuration. Default 1.2 (10% of a 12-vCPU cluster, matching the
	// paper's limit-of-10 on 96 cores).
	NoisyQuotaVCPUs float64
	// LivenessQueueLimit is the per-node executor queue depth beyond which
	// a node fails liveness. Default 40 — low enough that the unthrottled
	// noisy backlog destabilizes the cluster, comfortably above anything
	// admission control lets through.
	LivenessQueueLimit int
	// Clock drives all waiting and latency measurement. Defaults to the
	// real clock (the workers burn real CPU); tests may inject their own.
	Clock timeutil.Clock
	// Configs to run; default all three.
	Configs []NoisyConfig
}

func (o *Table1Options) defaults() {
	if o.Duration == 0 {
		o.Duration = 2 * time.Second
	}
	if o.NoisyTenants == 0 {
		o.NoisyTenants = 3
	}
	if o.NoisyWorkers == 0 {
		o.NoisyWorkers = 48
	}
	if o.CostScale == 0 {
		o.CostScale = 8
	}
	if o.TestWorkers == 0 {
		o.TestWorkers = 4
	}
	if o.ThinkTime == 0 {
		o.ThinkTime = 25 * time.Millisecond
	}
	if o.NoisyQuotaVCPUs == 0 {
		o.NoisyQuotaVCPUs = 1.2
	}
	if o.LivenessQueueLimit == 0 {
		o.LivenessQueueLimit = 40
	}
	if len(o.Configs) == 0 {
		o.Configs = []NoisyConfig{NoLimits, ACOnly, ACAndECPU}
	}
	if o.Clock == nil {
		o.Clock = timeutil.NewRealClock()
	}
}

// Table1Result bundles Table 1 with the Fig 12/13 timelines.
type Table1Result struct {
	Rows      []Table1Row
	Timelines map[NoisyConfig][]TimelineSample
}

// Table1 reproduces §6.6: three noisy TPC-C tenants run transactions in a
// tight loop (each worker on its own warehouse, no contention) while a
// well-behaved tenant runs a stock TPC-C configuration with think time. The
// well-behaved tenant's p50/p99/tpmC are measured under no limits, admission
// control only, and admission control plus per-tenant eCPU limits.
func Table1(opts Table1Options) (*Table1Result, *Table, error) {
	opts.defaults()
	res := &Table1Result{Timelines: make(map[NoisyConfig][]TimelineSample)}

	for _, cfg := range opts.Configs {
		row, timeline, err := runNoisyConfig(cfg, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", cfg, err)
		}
		res.Rows = append(res.Rows, *row)
		res.Timelines[cfg] = timeline
	}

	table := &Table{
		Title:   "Table 1: well-behaved tenant under noisy neighbors (§6.6)",
		Columns: []string{"", res.Rows[0].Config.String(), "", ""},
	}
	// Rebuild columns from actual configs.
	table.Columns = []string{"metric"}
	for _, r := range res.Rows {
		table.Columns = append(table.Columns, r.Config.String())
	}
	p50Row := []string{"p50"}
	p99Row := []string{"p99"}
	tpmRow := []string{"tpmC"}
	utilRow := []string{"cpu util"}
	abortRow := []string{"aborts"}
	for _, r := range res.Rows {
		p50Row = append(p50Row, fmtDur(r.P50))
		p99Row = append(p99Row, fmtDur(r.P99))
		tpmRow = append(tpmRow, fmt.Sprintf("%.0f", r.TpmC))
		utilRow = append(utilRow, fmt.Sprintf("%.0f%%", r.MeanUtilization*100))
		abortRow = append(abortRow, fmt.Sprintf("%d", r.Aborts))
	}
	table.Rows = [][]string{p50Row, p99Row, tpmRow, utilRow, abortRow}
	return res, table, nil
}

func runNoisyConfig(cfg NoisyConfig, opts Table1Options) (*Table1Row, []TimelineSample, error) {
	ctx := context.Background()
	tb, err := newTestbed(testbedOptions{
		kvNodes:   3,
		vcpus:     4,
		clock:     opts.Clock,
		cost:      scaleCost(kvserver.DefaultCostConfig(), opts.CostScale),
		admission: cfg != NoLimits,
		// A tight liveness bound: the unthrottled noisy backlog makes
		// nodes miss heartbeats and shed leases (the Fig 12 chaos);
		// admission control keeps executor queues short and nodes live.
		livenessLimit: opts.LivenessQueueLimit,
	})
	if err != nil {
		return nil, nil, err
	}
	defer tb.close()
	// The pricing model must match the scaled ground truth, or eCPU limits
	// would underprice the noisy tenants by the same factor.
	tb.model = scaleModel(tenantcost.DefaultModel(), opts.CostScale)

	// Provision tenants. Noisy tenants get quotas only in the third config.
	quota := 0.0
	if cfg == ACAndECPU {
		quota = opts.NoisyQuotaVCPUs
	}
	var noisy []*tenantHandle
	for i := 0; i < opts.NoisyTenants; i++ {
		h, err := tb.newTenant(ctx, fmt.Sprintf("noisy-%d", i), false, quota)
		if err != nil {
			return nil, nil, err
		}
		noisy = append(noisy, h)
	}
	test, err := tb.newTenant(ctx, "test", false, 0)
	if err != nil {
		return nil, nil, err
	}

	// Load schemas: noisy tenants get one warehouse per worker (slim rows —
	// their job is offered load, not data volume); the test tenant uses the
	// stock shape.
	slimTPCC := func(seed int64) *workload.TPCC {
		gen := workload.NewTPCC(opts.NoisyWorkers, seed)
		gen.DistrictsPerWH = 1
		gen.CustomersPerDistrict = 1
		gen.Items = 10
		return gen
	}
	for i, h := range noisy {
		if err := slimTPCC(int64(100+i)).Setup(ctx, h.session()); err != nil {
			return nil, nil, err
		}
	}
	testGen := workload.NewTPCC(2, 7)
	if err := testGen.Setup(ctx, test.session()); err != nil {
		return nil, nil, err
	}

	// Ensure leases are placed before the storm.
	tb.cluster.Tick()

	var (
		stop       atomic.Bool
		wg         sync.WaitGroup
		testHist   = metric.NewHistogram()
		testTxns   int64
		testAborts int64
	)

	// Noisy workers: tight loop, pinned warehouses, per-worker sessions.
	for ti, h := range noisy {
		for w := 1; w <= opts.NoisyWorkers; w++ {
			gen := slimTPCC(int64(1000*ti + w))
			gen.PinnedWarehouse = w
			db := &throttledDB{sess: h.session(), handle: h}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					_ = gen.NewOrder(ctx, db) //lint:allow faulterr retriable conflicts are expected noise from the noisy neighbor; the measured tenant's errors are checked
				}
			}()
		}
	}

	// Test tenant workers: stock mix with think time. Like the paper's
	// client, a worker retries a failed transaction until it completes (or
	// the run ends), so cluster instability shows up as high latency and
	// lost throughput; aborts count the retries consumed.
	for w := 0; w < opts.TestWorkers; w++ {
		gen := workload.NewTPCC(2, int64(9000+w))
		sess := test.session()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				start := tb.clock.Now()
				for {
					err := gen.RunMix(ctx, sess)
					if err == nil {
						testHist.Record(tb.clock.Since(start))
						atomic.AddInt64(&testTxns, 1)
						break
					}
					atomic.AddInt64(&testAborts, 1)
					if stop.Load() {
						return
					}
					tb.clock.Sleep(5 * time.Millisecond)
				}
				tb.clock.Sleep(opts.ThinkTime)
			}
		}()
	}

	// Sampler: cluster maintenance + the Fig 12/13 series.
	var timeline []TimelineSample
	nodes := tb.cluster.Nodes()
	prevBusy := make([]time.Duration, len(nodes))
	prevECPU := map[string]float64{}
	for _, h := range noisy {
		prevECPU[h.tenant.Name] = h.ecpuTokens()
	}
	prevECPU["test"] = test.ecpuTokens()
	var utilSum float64
	var utilN int

	sampleEvery := 100 * time.Millisecond
	begin := tb.clock.Now()
	deadline := begin.Add(opts.Duration)
	for tb.clock.Now().Before(deadline) {
		tb.clock.Sleep(sampleEvery)
		tb.cluster.Tick()
		s := TimelineSample{At: tb.clock.Since(begin), ECPUPerTenant: map[string]float64{}}
		for i, n := range nodes {
			busy := n.CPUBusy()
			cores := (busy - prevBusy[i]).Seconds() / sampleEvery.Seconds()
			prevBusy[i] = busy
			s.CoresPerNode = append(s.CoresPerNode, cores)
			utilSum += cores / float64(n.VCPUs())
			utilN++
		}
		counts := tb.cluster.LeaseCounts()
		for _, n := range nodes {
			s.LeasesPerNode = append(s.LeasesPerNode, counts[n.ID()])
		}
		all := append(append([]*tenantHandle(nil), noisy...), test)
		for _, h := range all {
			cur := h.ecpuTokens()
			rate := (cur - prevECPU[h.tenant.Name]) / 1000 / sampleEvery.Seconds() // vCPUs
			prevECPU[h.tenant.Name] = cur
			s.ECPUPerTenant[h.tenant.Name] = rate
		}
		timeline = append(timeline, s)
	}
	if len(timeline) > 1 {
		timeline = timeline[1:] // the first sample straddles worker launch
	}
	// Snapshot throughput at stop time: throttled noisy workers may take
	// long to observe the stop flag, and that drain time is not part of
	// the measurement window.
	elapsed := tb.clock.Since(begin)
	txns := atomic.LoadInt64(&testTxns)
	aborts := atomic.LoadInt64(&testAborts)
	stop.Store(true)
	wgWaitTimeout(tb.clock, &wg, 30*time.Second)

	row := &Table1Row{
		Config: cfg,
		P50:    testHist.P50(),
		P99:    testHist.P99(),
		TpmC:   float64(txns) / elapsed.Minutes(),
		Aborts: aborts,
	}
	if utilN > 0 {
		row.MeanUtilization = utilSum / float64(utilN)
	}
	return row, timeline, nil
}

// wgWaitTimeout waits for wg, giving up after d on the given clock (stuck
// workers under extreme no-AC queueing should not hang the harness).
func wgWaitTimeout(clock timeutil.Clock, wg *sync.WaitGroup, d time.Duration) {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-clock.After(d):
	}
}

// Fig12Table renders the per-node cores and lease series for one config.
func Fig12Table(cfg NoisyConfig, timeline []TimelineSample) *Table {
	table := &Table{
		Title:   fmt.Sprintf("Fig 12 (%s): cores used and range leases per node", cfg),
		Columns: []string{"t", "cores n1", "cores n2", "cores n3", "leases n1", "leases n2", "leases n3"},
	}
	for i, s := range timeline {
		if i%2 != 0 {
			continue
		}
		row := []string{fmt.Sprintf("%.1fs", s.At.Seconds())}
		for _, c := range s.CoresPerNode {
			row = append(row, fmt.Sprintf("%.1f", c))
		}
		for _, l := range s.LeasesPerNode {
			row = append(row, fmt.Sprintf("%d", l))
		}
		table.Rows = append(table.Rows, row)
	}
	return table
}

// Fig13Table renders the per-tenant eCPU series for one config.
func Fig13Table(cfg NoisyConfig, timeline []TimelineSample) *Table {
	table := &Table{
		Title:   fmt.Sprintf("Fig 13 (%s): eCPU used per tenant (vCPUs)", cfg),
		Columns: []string{"t", "noisy-0", "noisy-1", "noisy-2", "test"},
	}
	for i, s := range timeline {
		if i%2 != 0 {
			continue
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%.1fs", s.At.Seconds()),
			fmt.Sprintf("%.2f", s.ECPUPerTenant["noisy-0"]),
			fmt.Sprintf("%.2f", s.ECPUPerTenant["noisy-1"]),
			fmt.Sprintf("%.2f", s.ECPUPerTenant["noisy-2"]),
			fmt.Sprintf("%.2f", s.ECPUPerTenant["test"]),
		})
	}
	return table
}
