package experiments

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"crdbserverless/internal/admission"
	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/metric"
	"crdbserverless/internal/tenantcost"
	"crdbserverless/internal/timeutil"
)

// AblationFairnessResult compares tenant-fair admission against FIFO.
type AblationFairnessResult struct {
	FIFOLightP99 time.Duration
	FairLightP99 time.Duration
}

// AblationFIFOvsFair isolates the heap-of-heaps design of §5.1.2: a heavy
// tenant floods a CPU queue while a light tenant submits occasional work.
// Under FIFO (modeled by giving every request the same tenant ID, so
// fairness cannot distinguish them) the light tenant waits behind the whole
// backlog; under tenant-fair queueing it is served next.
func AblationFIFOvsFair() (*AblationFairnessResult, *Table, error) {
	// The slot-holding workers burn real wall time, so the real clock is
	// threaded explicitly rather than injected per-option.
	clock := timeutil.NewRealClock()
	run := func(fair bool) (time.Duration, error) {
		q := admission.NewCPUQueue(admission.CPUQueueOptions{InitialSlots: 2})
		ctx := context.Background()
		lightHist := metric.NewHistogram()
		var wg sync.WaitGroup
		stop := make(chan struct{})

		heavyTenant := keys.TenantID(100)
		lightTenant := keys.TenantID(200)
		if !fair {
			lightTenant = heavyTenant // FIFO: indistinguishable tenants
		}

		// Heavy tenant: 16 workers, each op holds a slot ~2ms. CreateTime is
		// set so same-tenant ordering is true FIFO (arrival order), not
		// arbitrary.
		for w := 0; w < 16; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					release, err := q.Admit(ctx, admission.WorkInfo{
						Tenant: heavyTenant, CreateTime: clock.Now(),
					})
					if err != nil {
						return
					}
					clock.Sleep(2 * time.Millisecond)
					release(2 * time.Millisecond)
				}
			}()
		}
		// Light tenant: occasional short ops; measure wait+service. Under
		// FIFO each op waits behind the heavy tenant's whole arrival
		// backlog; under tenant-fair queueing it is served next.
		for i := 0; i < 30; i++ {
			start := clock.Now()
			release, err := q.Admit(ctx, admission.WorkInfo{
				Tenant: lightTenant, CreateTime: clock.Now(),
			})
			if err != nil {
				return 0, err
			}
			clock.Sleep(200 * time.Microsecond)
			release(200 * time.Microsecond)
			lightHist.Record(clock.Since(start))
			clock.Sleep(3 * time.Millisecond)
		}
		close(stop)
		wg.Wait()
		return lightHist.P99(), nil
	}

	fifo, err := run(false)
	if err != nil {
		return nil, nil, err
	}
	fair, err := run(true)
	if err != nil {
		return nil, nil, err
	}
	res := &AblationFairnessResult{FIFOLightP99: fifo, FairLightP99: fair}
	table := &Table{
		Title:   "Ablation: FIFO vs tenant-fair admission (light tenant p99)",
		Columns: []string{"queueing", "light tenant p99"},
		Rows: [][]string{
			{"FIFO", fmtDur(fifo)},
			{"tenant-fair (heap of heaps)", fmtDur(fair)},
		},
	}
	return res, table, nil
}

// AblationTrickleResult compares trickle grants with stop/start behavior.
type AblationTrickleResult struct {
	TrickleMaxStall   time.Duration
	StopStartMaxStall time.Duration
	TrickleStddev     time.Duration
	StopStartStddev   time.Duration
}

// AblationTrickleGrants isolates §5.2.2's trickle grants: a node consuming
// at twice its quota either receives tokens/second trickles (smooth small
// delays per operation) or naive whole-bucket refills (run at full speed,
// then stall until the bucket refills). The trickle keeps the maximum
// per-operation stall and the delay variance far lower.
func AblationTrickleGrants() (*AblationTrickleResult, *Table) {
	const quotaVCPUs = 1.0 // 1000 tokens/s
	const opTokens = 100.0 // each op = 100ms of eCPU
	const ops = 200

	// Trickle: the real NodeBucket against the real server.
	mc := timeutil.NewManualClock(time.Unix(0, 0))
	srv := tenantcost.NewBucketServer(mc)
	srv.SetQuota(2, quotaVCPUs)
	nb := tenantcost.NewNodeBucket(srv, mc, 2, 1)
	var trickleDelays []time.Duration
	for i := 0; i < ops; i++ {
		d := nb.Consume(opTokens)
		trickleDelays = append(trickleDelays, d)
		mc.Advance(d + 50*time.Millisecond) // offered at 2x quota
	}

	// Stop/start: run ops against a local bucket that only refills in full
	// bursts (the failure mode trickle grants remove).
	var stopStartDelays []time.Duration
	tokens := quotaVCPUs * tenantcost.TokensPerVCPUSecond * 10 // full burst
	var now time.Duration
	lastRefill := time.Duration(0)
	refillEvery := 10 * time.Second
	for i := 0; i < ops; i++ {
		var wait time.Duration
		if tokens < opTokens {
			// Stall until the next whole-bucket refill.
			next := lastRefill + refillEvery
			wait = next - now
			if wait < 0 {
				wait = 0
			}
			now = next
			lastRefill = next
			tokens = quotaVCPUs * tenantcost.TokensPerVCPUSecond * 10
		}
		tokens -= opTokens
		stopStartDelays = append(stopStartDelays, wait)
		now += 50 * time.Millisecond
	}

	maxOf := func(ds []time.Duration) time.Duration {
		var m time.Duration
		for _, d := range ds {
			if d > m {
				m = d
			}
		}
		return m
	}
	stddev := func(ds []time.Duration) time.Duration {
		var sum float64
		for _, d := range ds {
			sum += d.Seconds()
		}
		mean := sum / float64(len(ds))
		var varsum float64
		for _, d := range ds {
			varsum += (d.Seconds() - mean) * (d.Seconds() - mean)
		}
		return time.Duration(math.Sqrt(varsum/float64(len(ds))) * float64(time.Second))
	}

	res := &AblationTrickleResult{
		TrickleMaxStall:   maxOf(trickleDelays),
		StopStartMaxStall: maxOf(stopStartDelays),
		TrickleStddev:     stddev(trickleDelays),
		StopStartStddev:   stddev(stopStartDelays),
	}
	table := &Table{
		Title:   "Ablation: trickle grants vs whole-bucket refills (§5.2.2)",
		Columns: []string{"granting", "max per-op stall", "delay stddev"},
		Rows: [][]string{
			{"whole-bucket (stop/start)", fmtDur(res.StopStartMaxStall), fmtDur(res.StopStartStddev)},
			{"trickle grants", fmtDur(res.TrickleMaxStall), fmtDur(res.TrickleStddev)},
		},
	}
	return res, table
}

// AblationCostShapeResult compares the piecewise-linear per-feature model
// against a single-slope linear fit over the Fig 5 sweep.
type AblationCostShapeResult struct {
	PiecewiseMaxErrPct float64
	LinearMaxErrPct    float64
}

// AblationCostModelShape quantifies why the per-feature models are piecewise
// linear (§5.2.1, Fig 5): a single-slope fit cannot follow the batching
// efficiency curve and misprices low- or high-rate workloads.
func AblationCostModelShape() (*AblationCostShapeResult, *Table) {
	cost := kvserver.DefaultCostConfig()
	batch := oneWriteBatch()
	rates := []float64{10, 50, 100, 250, 500, 1000, 2000, 4000, 8000, 16000}
	var xs, ys []float64
	for _, rate := range rates {
		xs = append(xs, rate)
		ys = append(ys, cost.BatchCost(batch, nil, rate, false).Seconds()*rate)
	}
	pw, err := tenantcost.FitPiecewise(xs, ys, 6)
	if err != nil {
		panic(err)
	}
	lin := admission.FitLinearModel(xs, ys)

	res := &AblationCostShapeResult{}
	table := &Table{
		Title:   "Ablation: piecewise-linear vs single-slope cost model",
		Columns: []string{"batches/s", "truth cpu/s", "piecewise err", "linear err"},
	}
	for i, rate := range rates {
		truth := ys[i]
		pwErr := 100 * math.Abs(pw.Eval(rate)-truth) / truth
		linErr := 100 * math.Abs(lin.Predict(rate)-truth) / truth
		if pwErr > res.PiecewiseMaxErrPct {
			res.PiecewiseMaxErrPct = pwErr
		}
		if linErr > res.LinearMaxErrPct {
			res.LinearMaxErrPct = linErr
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%.0f", rate),
			fmt.Sprintf("%.4f", truth),
			fmt.Sprintf("%.1f%%", pwErr),
			fmt.Sprintf("%.1f%%", linErr),
		})
	}
	table.Rows = append(table.Rows, []string{"max", "",
		fmt.Sprintf("%.1f%%", res.PiecewiseMaxErrPct),
		fmt.Sprintf("%.1f%%", res.LinearMaxErrPct)})
	return res, table
}
