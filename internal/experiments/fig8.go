package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"crdbserverless/internal/autoscaler"
	"crdbserverless/internal/core"
	"crdbserverless/internal/orchestrator"
	"crdbserverless/internal/timeutil"
)

// Fig8Point is one sample of the autoscaling trace.
type Fig8Point struct {
	At             time.Duration // offset from trace start
	UsedVCPUs      float64
	AllocatedVCPUs float64
}

// Fig8Result is the autoscaler-tracking trace plus fit statistics.
type Fig8Result struct {
	Series []Fig8Point
	// MeanHeadroom is mean(allocated/used) over samples with load — the
	// paper's expectation is ~4x (one node per average vCPU at 4-vCPU
	// nodes).
	MeanHeadroom float64
	// UnderProvisionedFrac is the fraction of loaded samples where usage
	// exceeded allocation.
	UnderProvisionedFrac float64
}

// Fig8 reproduces §6.3: replay a bursty CPU trace through the autoscaler
// (driven on a manual clock at the 3s scrape cadence) and record used vs
// allocated vCPUs. The allocation curve should track the load with ~4x
// average headroom and react to spikes within seconds.
func Fig8() (*Fig8Result, *Table, error) {
	ctx := context.Background()
	clock := timeutil.NewManualClock(time.Unix(0, 0))
	tb, err := newTestbed(testbedOptions{kvNodes: 1, clock: clock})
	if err != nil {
		return nil, nil, err
	}
	defer tb.close()
	orch, err := orchestrator.New(orchestrator.Config{
		Cluster:         tb.cluster,
		Registry:        tb.reg,
		Buckets:         tb.buckets,
		Clock:           clock,
		Region:          "us-central1",
		WarmPoolSize:    2,
		PreStartProcess: true,
		NodeVCPUs:       4,
	})
	if err != nil {
		return nil, nil, err
	}
	defer orch.Close()
	as := autoscaler.New(autoscaler.Config{
		Orchestrator: orch,
		Registry:     tb.reg,
		Clock:        clock,
		SuspendAfter: time.Hour, // keep the tenant alive for the whole trace
	})

	tenant, err := tb.reg.CreateTenant(ctx, "trace", core.TenantOptions{})
	if err != nil {
		return nil, nil, err
	}
	if _, err := orch.ScaleTenant(ctx, tenant, 1); err != nil {
		return nil, nil, err
	}

	// A production-like trace: quiet, ramp, plateau, spike, decay — over
	// two simulated hours.
	load := func(t time.Duration) float64 {
		minutes := t.Minutes()
		switch {
		case minutes < 10:
			return 0.5
		case minutes < 30:
			return 0.5 + (minutes-10)/20*5 // ramp to 5.5
		case minutes < 60:
			return 5.5 + 1.5*math.Sin(minutes/3)
		case minutes < 65:
			return 14 // spike
		case minutes < 90:
			return 4
		default:
			return 0.8
		}
	}

	res := &Fig8Result{}
	start := clock.Now()
	var headroomSum float64
	var loaded, under int
	traceLen := 2 * time.Hour
	step := as.ScrapeInterval()
	sampleEvery := time.Minute
	nextSample := time.Duration(0)
	for off := time.Duration(0); off < traceLen; off += step {
		vcpus := load(off)
		pods := orch.PodsForTenant("trace")
		per := 0.0
		if len(pods) > 0 {
			per = vcpus / float64(len(pods))
		}
		for _, p := range pods {
			p.Node.SetSyntheticLoad(per)
		}
		clock.Advance(step)
		if err := as.Tick(ctx); err != nil {
			return nil, nil, err
		}
		if off >= nextSample {
			nextSample += sampleEvery
			allocated := float64(len(orch.PodsForTenant("trace"))) * 4
			res.Series = append(res.Series, Fig8Point{
				At:             clock.Now().Sub(start),
				UsedVCPUs:      vcpus,
				AllocatedVCPUs: allocated,
			})
			if vcpus > 1 {
				loaded++
				headroomSum += allocated / vcpus
				if vcpus > allocated {
					under++
				}
			}
		}
	}
	if loaded > 0 {
		res.MeanHeadroom = headroomSum / float64(loaded)
		res.UnderProvisionedFrac = float64(under) / float64(loaded)
	}

	table := &Table{
		Title:   "Fig 8: SQL nodes scale with CPU utilization (4 vCPUs per node)",
		Columns: []string{"t", "used vCPUs", "allocated vCPUs", "nodes"},
	}
	for _, p := range res.Series {
		if int(p.At.Minutes())%5 != 0 {
			continue // print every 5 minutes
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%dm", int(p.At.Minutes())),
			fmt.Sprintf("%.1f", p.UsedVCPUs),
			fmt.Sprintf("%.0f", p.AllocatedVCPUs),
			fmt.Sprintf("%.0f", p.AllocatedVCPUs/4),
		})
	}
	table.Rows = append(table.Rows, []string{"summary",
		fmt.Sprintf("headroom %.1fx", res.MeanHeadroom),
		fmt.Sprintf("under-provisioned %.0f%%", res.UnderProvisionedFrac*100), ""})
	return res, table, nil
}
