package experiments

import (
	"fmt"
	"time"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/tenantcost"
)

// Fig5Result is one point of the write-batch efficiency curve.
type Fig5Result struct {
	BatchesPerSec   float64
	GroundTruthPerB time.Duration // CPU per batch at this rate (ground truth)
	ModelPerB       time.Duration // trained piecewise-linear prediction
	BatchesPerVCPUs float64       // batches one vCPU-second processes
	ModelErrPercent float64
}

// Fig5 reproduces the Fig 5 methodology: controlled tests vary only the
// write-batch rate, the per-batch CPU consumption is measured, and a
// piecewise-linear model is fit to the resulting non-linear curve (§5.2.1).
func Fig5() ([]Fig5Result, *Table) {
	cost := kvserver.DefaultCostConfig()

	// "Run a test that varies only the number of write batches per second":
	// the ground truth per-batch CPU at each rate, from the amortization
	// curve the cost model implements.
	rates := []float64{10, 50, 100, 250, 500, 1000, 2000, 4000, 8000, 16000}
	batch := oneWriteBatch()

	var xs, ys []float64
	for _, rate := range rates {
		perBatch := cost.BatchCost(batch, nil, rate, false)
		// Training samples: cumulative cost of `rate` batches at this rate.
		xs = append(xs, rate)
		ys = append(ys, perBatch.Seconds()*rate)
	}
	fit, err := tenantcost.FitPiecewise(xs, ys, 6)
	if err != nil {
		panic(err) // static inputs; cannot fail
	}

	var out []Fig5Result
	table := &Table{
		Title:   "Fig 5: write batches per second determines CPU usage",
		Columns: []string{"batches/s", "cpu/batch (truth)", "cpu/batch (model)", "batches per vCPU", "model err"},
	}
	for _, rate := range rates {
		truth := cost.BatchCost(batch, nil, rate, false)
		modelTotal := fit.Eval(rate)
		modelPer := time.Duration(modelTotal / rate * float64(time.Second))
		errPct := 100 * (modelPer.Seconds() - truth.Seconds()) / truth.Seconds()
		r := Fig5Result{
			BatchesPerSec:   rate,
			GroundTruthPerB: truth,
			ModelPerB:       modelPer,
			BatchesPerVCPUs: 1 / truth.Seconds(),
			ModelErrPercent: errPct,
		}
		out = append(out, r)
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%.0f", rate),
			fmtDur(truth),
			fmtDur(modelPer),
			fmt.Sprintf("%.0f", r.BatchesPerVCPUs),
			fmt.Sprintf("%+.1f%%", errPct),
		})
	}
	return out, table
}

// oneWriteBatch is the fixed-shape batch the sweep holds constant.
func oneWriteBatch() *kvpb.BatchRequest {
	return &kvpb.BatchRequest{Requests: []kvpb.Request{
		{Method: kvpb.Put, Key: keys.Key("k-000000"), Value: make([]byte, 64)},
	}}
}
