package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"crdbserverless/internal/core"
	"crdbserverless/internal/metric"
	"crdbserverless/internal/orchestrator"
	"crdbserverless/internal/proxy"
	"crdbserverless/internal/wire"
)

// Fig9Result summarizes throughput and latency across a rolling upgrade.
type Fig9Result struct {
	// Phases: before, during, after the rolling upgrade.
	Before, During, After metric.Summary
	QueriesBefore         int64
	QueriesDuring         int64
	QueriesAfter          int64
	Migrations            int64
	Errors                int64
	Aborts                int64
}

// Fig9Options size the experiment.
type Fig9Options struct {
	SQLNodes    int           // default 3
	Connections int           // default 9
	Phase       time.Duration // default 700ms per phase
}

func (o *Fig9Options) defaults() {
	if o.SQLNodes == 0 {
		o.SQLNodes = 3
	}
	if o.Connections == 0 {
		o.Connections = 9
	}
	if o.Phase == 0 {
		o.Phase = 700 * time.Millisecond
	}
}

// Fig9 reproduces §6.4: long-lived connections run a steady point-query
// workload through the proxy while every SQL node is replaced one at a time
// (a rolling upgrade — the scenario that forces every connection to
// migrate). Expected shape: no errors, zero transaction aborts, and no
// visible impact on throughput or latency during the upgrade.
func Fig9(opts Fig9Options) (*Fig9Result, *Table, error) {
	opts.defaults()
	ctx := context.Background()
	tb, err := newTestbed(testbedOptions{kvNodes: 3, vcpus: 8})
	if err != nil {
		return nil, nil, err
	}
	defer tb.close()
	orch, err := orchestrator.New(orchestrator.Config{
		Cluster:         tb.cluster,
		Registry:        tb.reg,
		Buckets:         tb.buckets,
		Region:          "us-central1",
		WarmPoolSize:    opts.SQLNodes + 1,
		PreStartProcess: true,
	})
	if err != nil {
		return nil, nil, err
	}
	defer orch.Close()
	p := proxy.New(proxy.Config{Directory: orch})
	if err := p.Start("127.0.0.1:0"); err != nil {
		return nil, nil, err
	}
	defer p.Close()

	tenant, err := tb.reg.CreateTenant(ctx, "prod", core.TenantOptions{})
	if err != nil {
		return nil, nil, err
	}
	if _, err := orch.ScaleTenant(ctx, tenant, opts.SQLNodes); err != nil {
		return nil, nil, err
	}

	// Seed the schema through the proxy.
	seed, err := wire.Connect(p.Addr(), map[string]string{"tenant": "prod"})
	if err != nil {
		return nil, nil, err
	}
	if _, err := seed.Query("CREATE TABLE t (a INT PRIMARY KEY, b INT)"); err != nil {
		return nil, nil, err
	}
	for i := 0; i < 20; i++ {
		if _, err := seed.Query(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i)); err != nil {
			return nil, nil, err
		}
	}
	seed.Close()

	res := &Fig9Result{}
	var phase atomic.Int32 // 0 before, 1 during, 2 after
	hists := [3]*metric.Histogram{metric.NewHistogram(), metric.NewHistogram(), metric.NewHistogram()}
	var counts [3]int64
	var countsMu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < opts.Connections; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := wire.Connect(p.Addr(), map[string]string{"tenant": "prod", "user": "app"})
			if err != nil {
				atomic.AddInt64(&res.Errors, 1)
				return
			}
			defer conn.Close()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				ph := phase.Load()
				start := tb.clock.Now()
				_, qerr := conn.Query(fmt.Sprintf("SELECT b FROM t WHERE a = %d", i%20))
				if qerr != nil {
					atomic.AddInt64(&res.Errors, 1)
					return
				}
				hists[ph].Record(tb.clock.Since(start))
				countsMu.Lock()
				counts[ph]++
				countsMu.Unlock()
				i++
				tb.clock.Sleep(2 * time.Millisecond)
			}
		}(c)
	}

	tb.clock.Sleep(opts.Phase)
	phase.Store(1)

	// Rolling upgrade: replace each SQL node with a fresh one, migrating
	// its connections.
	pods := orch.PodsForTenant("prod")
	for _, old := range pods {
		// Bring up the replacement first.
		if _, err := orch.AssignPod(ctx, tenant); err != nil {
			return nil, nil, err
		}
		// Drain the old node and migrate its connections to the newest pod.
		candidates := orch.PodsForTenant("prod")
		newest := candidates[len(candidates)-1]
		old.Node.Drain()
		for tries := 0; tries < 100; tries++ {
			if p.RequestMigrations(old.Node.Addr(), newest.Node.Addr()) == 0 &&
				old.Node.ConnCount() == 0 {
				break
			}
			tb.clock.Sleep(10 * time.Millisecond)
		}
		orch.Tick() // reap the drained node
	}

	phase.Store(2)
	tb.clock.Sleep(opts.Phase)
	close(stop)
	wg.Wait()

	res.Before = hists[0].Snapshot()
	res.During = hists[1].Snapshot()
	res.After = hists[2].Snapshot()
	res.QueriesBefore, res.QueriesDuring, res.QueriesAfter = counts[0], counts[1], counts[2]
	res.Migrations = p.Migrations()

	table := &Table{
		Title:   "Fig 9: rolling upgrade with connection migration (§6.4)",
		Columns: []string{"phase", "queries", "p50", "p99"},
	}
	table.Rows = append(table.Rows,
		[]string{"before", fmt.Sprintf("%d", res.QueriesBefore), fmtDur(res.Before.P50), fmtDur(res.Before.P99)},
		[]string{"during upgrade", fmt.Sprintf("%d", res.QueriesDuring), fmtDur(res.During.P50), fmtDur(res.During.P99)},
		[]string{"after", fmt.Sprintf("%d", res.QueriesAfter), fmtDur(res.After.P50), fmtDur(res.After.P99)},
		[]string{"migrations", fmt.Sprintf("%d", res.Migrations), "", ""},
		[]string{"errors", fmt.Sprintf("%d", res.Errors), "aborts", fmt.Sprintf("%d", res.Aborts)},
	)
	return res, table, nil
}
