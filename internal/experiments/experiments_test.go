package experiments

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	out := tab.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "333") {
		t.Fatalf("render = %q", out)
	}
}

func TestFig5Shape(t *testing.T) {
	points, table := Fig5()
	if len(points) < 5 || table == nil {
		t.Fatal("no fig5 points")
	}
	// Non-linearity: per-batch cost falls with rate (Fig 5's batching
	// efficiency), so batches-per-vCPU rises.
	first, last := points[0], points[len(points)-1]
	if last.GroundTruthPerB >= first.GroundTruthPerB {
		t.Fatalf("per-batch cost did not fall: %v -> %v", first.GroundTruthPerB, last.GroundTruthPerB)
	}
	if last.BatchesPerVCPUs <= first.BatchesPerVCPUs {
		t.Fatal("batches per vCPU did not rise with rate")
	}
	// The piecewise fit tracks the curve within 20% everywhere.
	for _, p := range points {
		if p.ModelErrPercent > 20 || p.ModelErrPercent < -20 {
			t.Fatalf("model error %f%% at rate %f", p.ModelErrPercent, p.BatchesPerSec)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	results, table, err := Fig6(Fig6Options{
		TPCCWarehouses: 1, TPCCOps: 15, TPCHRows: 300, TPCHRuns: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if table == nil || len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	byName := map[string]Fig6Workload{}
	for _, r := range results {
		byName[r.Name] = r
	}
	// TPC-C: similar CPU in both modes (within ~40%).
	if r := byName["tpcc"]; r.CPURatio < 0.7 || r.CPURatio > 1.4 {
		t.Fatalf("tpcc ratio = %.2f, want ~1", r.CPURatio)
	}
	// Q1: the full-scan aggregation costs materially more in Serverless.
	if r := byName["tpch-q1"]; r.CPURatio < 1.3 {
		t.Fatalf("q1 ratio = %.2f, want >= 1.3", r.CPURatio)
	}
	// Q9: index joins keep the two modes comparable, and well below Q1's gap.
	if r := byName["tpch-q9"]; r.CPURatio > byName["tpch-q1"].CPURatio {
		t.Fatalf("q9 ratio %.2f exceeds q1 ratio %.2f", r.CPURatio, byName["tpch-q1"].CPURatio)
	}
}

func TestFig7Shape(t *testing.T) {
	res, table, err := Fig7(Fig7Options{
		SuspendedCounts: []int{20, 100},
		IdleCounts:      []int{4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if table == nil || len(res.Suspended) != 2 || len(res.Idle) != 1 {
		t.Fatalf("res = %+v", res)
	}
	// Amortization: per-tenant overhead at 100 tenants <= at 20.
	if res.Suspended[1].BytesPerTenant > res.Suspended[0].BytesPerTenant {
		t.Fatalf("suspended overhead grew: %d -> %d",
			res.Suspended[0].BytesPerTenant, res.Suspended[1].BytesPerTenant)
	}
	// Idle tenants cost much more than suspended ones (live SQL process).
	if res.Idle[0].BytesPerTenant < 2*res.Suspended[1].BytesPerTenant {
		t.Fatalf("idle %d B should dwarf suspended %d B",
			res.Idle[0].BytesPerTenant, res.Suspended[1].BytesPerTenant)
	}
	// Idle CPU is near zero.
	if res.IdleCPUPerTenant > 0.01 {
		t.Fatalf("idle cpu/tenant = %f", res.IdleCPUPerTenant)
	}
}

func TestFig8Shape(t *testing.T) {
	res, table, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if table == nil || len(res.Series) < 60 {
		t.Fatalf("series = %d", len(res.Series))
	}
	// Allocation tracks load: mean headroom in the 1x..8x band (target 4x
	// average with the 1.33x-peak floor adding slack).
	if res.MeanHeadroom < 1 || res.MeanHeadroom > 8 {
		t.Fatalf("mean headroom = %.2f", res.MeanHeadroom)
	}
	// Under-provisioning is rare.
	if res.UnderProvisionedFrac > 0.1 {
		t.Fatalf("under-provisioned %.0f%% of samples", res.UnderProvisionedFrac*100)
	}
	// The spike at minute 60 is reacted to: allocation at minute 64 covers it.
	for _, p := range res.Series {
		if p.At >= 64*time.Minute && p.At < 65*time.Minute {
			if p.AllocatedVCPUs < 14 {
				t.Fatalf("spike not covered: allocated %.0f vCPUs", p.AllocatedVCPUs)
			}
		}
	}
}

func TestFig9Shape(t *testing.T) {
	res, table, err := Fig9(Fig9Options{SQLNodes: 2, Connections: 4, Phase: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if table == nil {
		t.Fatal("no table")
	}
	if res.Errors != 0 || res.Aborts != 0 {
		t.Fatalf("errors=%d aborts=%d", res.Errors, res.Aborts)
	}
	if res.Migrations == 0 {
		t.Fatal("rolling upgrade migrated nothing")
	}
	if res.QueriesDuring == 0 || res.QueriesAfter == 0 {
		t.Fatalf("throughput collapsed: during=%d after=%d", res.QueriesDuring, res.QueriesAfter)
	}
	// Latency during the upgrade is not catastrophically worse (10x).
	if res.During.P50 > 10*res.Before.P50+10*time.Millisecond {
		t.Fatalf("p50 during upgrade %v vs before %v", res.During.P50, res.Before.P50)
	}
}

func TestFig10Shapes(t *testing.T) {
	a, tableA, err := Fig10a(400)
	if err != nil {
		t.Fatal(err)
	}
	if tableA == nil {
		t.Fatal("no table")
	}
	if a.Optimized.P50*2 > a.Unoptimized.P50 {
		t.Fatalf("pre-warming gain too small: %v vs %v", a.Optimized.P50, a.Unoptimized.P50)
	}
	// The cold-start trace decomposes scale-from-zero into the paper's
	// steps: pod assignment, certificate issuance, and the connection
	// migration at the end, with child durations partitioning the root.
	if a.Trace == nil {
		t.Fatal("fig10a returned no trace")
	}
	ops := map[string]bool{}
	var sum time.Duration
	for _, c := range a.Trace.Children() {
		ops[c.Op()] = true
		sum += c.Duration()
	}
	for _, want := range []string{"pod_assign", "cert_issue", "fs_watch", "conn_migrate"} {
		if !ops[want] {
			t.Fatalf("cold-start trace missing step %q (have %v)", want, ops)
		}
	}
	if sum != a.Trace.Duration() {
		t.Fatalf("child spans sum to %v, root is %v", sum, a.Trace.Duration())
	}
	b, tableB := Fig10b(400)
	if tableB == nil || len(b) != 3 {
		t.Fatalf("fig10b rows = %d", len(b))
	}
	for _, r := range b {
		if r.Optimized.P50 > 730*time.Millisecond {
			t.Fatalf("region %s optimized p50 = %v", r.Region, r.Optimized.P50)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiment")
	}
	// A very tight liveness bound makes the no-limits destabilization
	// deterministic at this short test duration; admission control's
	// executor queues stay well below it.
	res, table, err := Table1(Table1Options{
		Duration:           1500 * time.Millisecond,
		LivenessQueueLimit: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if table == nil || len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byCfg := map[NoisyConfig]Table1Row{}
	for _, r := range res.Rows {
		byCfg[r.Config] = r
	}
	// Every configuration must have completed work on the well-behaved
	// tenant; a zero row means the testbed wedged rather than throttled.
	for _, cfg := range []NoisyConfig{NoLimits, ACOnly, ACAndECPU} {
		if _, ok := byCfg[cfg]; !ok {
			t.Fatalf("missing row for config %v", cfg)
		}
	}
	if byCfg[ACOnly].TpmC <= 0 || byCfg[ACOnly].P99 <= 0 {
		t.Fatalf("AC-only row is empty: tpmC %.0f, p99 %v", byCfg[ACOnly].TpmC, byCfg[ACOnly].P99)
	}
	if raceEnabled {
		// The race detector slows the workers ~50x, so the fixed-duration
		// run no longer saturates the executors and the latency/utilization
		// contrasts between configurations vanish. Keep the deterministic
		// shape checks above and log the (uninformative) contrast numbers.
		t.Logf("race build: skipping timing-contrast assertions (p99 %v/%v/%v, util %.2f/%.2f)",
			byCfg[NoLimits].P99, byCfg[ACOnly].P99, byCfg[ACAndECPU].P99,
			byCfg[ACOnly].MeanUtilization, byCfg[ACAndECPU].MeanUtilization)
	} else {
		// Admission control rescues the well-behaved tenant. The no-limits
		// cluster fails in one of two ways depending on timing: completed
		// transactions are slow (p99 blow-up), or almost nothing completes at
		// all (throughput collapse, where the few survivors can even look
		// fast). Either signature demonstrates the destabilization.
		latencyBlowup := byCfg[ACOnly].P99*2 <= byCfg[NoLimits].P99
		throughputCollapse := byCfg[NoLimits].TpmC*2 <= byCfg[ACOnly].TpmC
		if !latencyBlowup && !throughputCollapse {
			t.Fatalf("no-limits run not visibly worse: p99 %v vs AC %v, tpmC %.0f vs AC %.0f",
				byCfg[NoLimits].P99, byCfg[ACOnly].P99, byCfg[NoLimits].TpmC, byCfg[ACOnly].TpmC)
		}
		// eCPU limits improve latency further (or at least not worse) and drop
		// utilization well below the AC-only (work-conserving) level.
		if byCfg[ACAndECPU].P99 > byCfg[ACOnly].P99*2 {
			t.Fatalf("AC+eCPU p99 %v vs AC %v", byCfg[ACAndECPU].P99, byCfg[ACOnly].P99)
		}
		if byCfg[ACAndECPU].MeanUtilization >= byCfg[ACOnly].MeanUtilization {
			t.Fatalf("eCPU limits did not reduce utilization: %.2f vs %.2f",
				byCfg[ACAndECPU].MeanUtilization, byCfg[ACOnly].MeanUtilization)
		}
		// Throughput of the think-time-paced tenant does not degrade under AC
		// (allow a sliver of noise).
		if byCfg[ACOnly].TpmC < byCfg[NoLimits].TpmC*0.9 {
			t.Fatalf("tpmC fell with AC: %.0f vs %.0f", byCfg[ACOnly].TpmC, byCfg[NoLimits].TpmC)
		}
	}
	// Fig 12/13 render.
	if Fig12Table(ACOnly, res.Timelines[ACOnly]) == nil ||
		Fig13Table(ACOnly, res.Timelines[ACOnly]) == nil {
		t.Fatal("timeline tables missing")
	}
}

func TestFig11SampledWorkloads(t *testing.T) {
	// The full 23-workload sweep runs in the bench harness; here a sample
	// checks the estimate/actual machinery end to end.
	ctx := context.Background()
	specs := fig11Workloads()
	if len(specs) != 23 {
		t.Fatalf("workload count = %d, want 23", len(specs))
	}
	for _, name := range []string{"ycsb-C", "kv-read50"} {
		var spec fig11Workload
		for _, s := range specs {
			if s.name == name {
				spec = s
				break
			}
		}
		est, err := fig11Run(ctx, spec, false)
		if err != nil {
			t.Fatal(err)
		}
		act, err := fig11Run(ctx, spec, true)
		if err != nil {
			t.Fatal(err)
		}
		if est.estimated <= 0 || act.actual <= 0 {
			t.Fatalf("%s: est=%v act=%v", name, est.estimated, act.actual)
		}
		ratio := float64(est.estimated) / float64(act.actual)
		if ratio < 0.4 || ratio > 2.5 {
			t.Fatalf("%s: ratio %.2f wildly off", name, ratio)
		}
	}
}

func TestAblations(t *testing.T) {
	fair, table, err := AblationFIFOvsFair()
	if err != nil || table == nil {
		t.Fatal(err)
	}
	if fair.FairLightP99 >= fair.FIFOLightP99 {
		t.Fatalf("fair p99 %v not better than FIFO %v", fair.FairLightP99, fair.FIFOLightP99)
	}
	trickle, table2 := AblationTrickleGrants()
	if table2 == nil {
		t.Fatal("no trickle table")
	}
	if trickle.TrickleMaxStall >= trickle.StopStartMaxStall {
		t.Fatalf("trickle max stall %v not better than stop/start %v",
			trickle.TrickleMaxStall, trickle.StopStartMaxStall)
	}
	shape, table3 := AblationCostModelShape()
	if table3 == nil {
		t.Fatal("no shape table")
	}
	if shape.PiecewiseMaxErrPct >= shape.LinearMaxErrPct {
		t.Fatalf("piecewise err %.1f%% not better than linear %.1f%%",
			shape.PiecewiseMaxErrPct, shape.LinearMaxErrPct)
	}
	_, table4 := AblationWarmPool(20, 500)
	if table4 == nil {
		t.Fatal("no warm pool table")
	}
}

func TestTracezObservability(t *testing.T) {
	res, table, err := Tracez(TracezOptions{Queries: 8})
	if err != nil {
		t.Fatal(err)
	}
	if table == nil {
		t.Fatal("no table")
	}
	// The full point-read path nests proxy.conn -> proxy.exchange ->
	// sqlnode.query -> sql.exec -> txn.run -> dist.send -> kv.eval.
	if res.DeepestChain < 5 {
		t.Fatalf("deepest span chain = %d, want >= 5\n%s", res.DeepestChain, res.Tracez)
	}
	// Admission-queue wait must surface as a span attribute the
	// experiment consumed.
	if res.AdmissionWaits == 0 {
		t.Fatalf("no kv.eval spans carried admission.wait\n%s", res.Tracez)
	}
	if !strings.Contains(res.Tracez, "proxy.conn") || !strings.Contains(res.Tracez, "kv.eval") {
		t.Fatalf("tracez dump missing ops:\n%s", res.Tracez)
	}
	if !strings.Contains(res.Metrics, "trace_spans_finished") {
		t.Fatalf("metrics dump missing trace counters:\n%s", res.Metrics)
	}
}
