package experiments

import (
	"context"
	"fmt"
	"time"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/kvscaler"
	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/timeutil"
)

// KVScalingPoint is one sample of the KV fleet-size trace.
type KVScalingPoint struct {
	At          time.Duration
	Utilization float64
	Nodes       int
}

// KVScalingResult is the automatic KV scaling trace.
type KVScalingResult struct {
	Series   []KVScalingPoint
	MaxNodes int
	EndNodes int
	DataOK   bool
}

// ExtensionKVScaling exercises the paper's first future-work item (§8):
// automatic KV/storage node scaling. A write-heavy phase pushes fleet
// utilization over the high-water mark — nodes are added and replicas
// rebalanced onto them — then an idle phase drains the fleet back to its
// minimum, with a data-integrity check across the whole cycle.
func ExtensionKVScaling() (*KVScalingResult, *Table, error) {
	clock := timeutil.NewManualClock(time.Unix(0, 0))
	mkNode := func(id kvserver.NodeID) *kvserver.Node {
		return kvserver.NewNode(kvserver.NodeConfig{
			ID:    id,
			VCPUs: 2,
			Clock: clock,
			Cost: kvserver.CostConfig{
				ReadBatchOverhead:  time.Microsecond,
				WriteBatchOverhead: 2 * time.Microsecond,
				WriteByteCost:      8 * time.Microsecond,
			},
		})
	}
	var nodes []*kvserver.Node
	for i := 1; i <= 3; i++ {
		nodes = append(nodes, mkNode(kvserver.NodeID(i)))
	}
	cluster, err := kvserver.NewCluster(kvserver.ClusterConfig{Clock: clock}, nodes)
	if err != nil {
		return nil, nil, err
	}
	defer cluster.Close()
	for tid := keys.TenantID(2); tid < 12; tid++ {
		if err := cluster.SplitAt(keys.MakeTenantPrefix(tid)); err != nil {
			return nil, nil, err
		}
	}
	scaler, err := kvscaler.New(kvscaler.Config{
		Cluster:     cluster,
		Clock:       clock,
		Provisioner: mkNode,
		Window:      30 * time.Second,
		Cooldown:    10 * time.Second,
	})
	if err != nil {
		return nil, nil, err
	}

	ds := kvserver.NewDistSender(cluster, kvserver.Identity{Tenant: 2})
	ctx := context.Background()
	sentinel := append(keys.MakeTenantPrefix(2), []byte("sentinel")...)
	if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
		{Method: kvpb.Put, Key: sentinel, Value: []byte("v")},
	}}); err != nil {
		return nil, nil, err
	}

	res := &KVScalingResult{}
	start := clock.Now()
	step := func(heavy bool, ticks int) error {
		i := 0
		for t := 0; t < ticks; t++ {
			if heavy {
				for j := 0; j < 400; j++ {
					i++
					k := append(keys.MakeTenantPrefix(2), []byte(fmt.Sprintf("k%06d", i%512))...)
					if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
						{Method: kvpb.Put, Key: k, Value: make([]byte, 8<<10)},
					}}); err != nil {
						return err
					}
				}
			}
			clock.Advance(5 * time.Second)
			if _, err := scaler.Tick(); err != nil {
				return err
			}
			n := len(cluster.Nodes())
			if n > res.MaxNodes {
				res.MaxNodes = n
			}
			res.Series = append(res.Series, KVScalingPoint{
				At:          clock.Now().Sub(start),
				Utilization: scaler.Utilization(),
				Nodes:       n,
			})
		}
		return nil
	}
	if err := step(true, 16); err != nil { // sustained write pressure
		return nil, nil, err
	}
	if err := step(false, 30); err != nil { // idle drain
		return nil, nil, err
	}
	res.EndNodes = len(cluster.Nodes())

	// Data integrity across add/rebalance/drain/remove.
	ds2 := kvserver.NewDistSender(cluster, kvserver.Identity{Tenant: 2})
	resp, err := ds2.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
		{Method: kvpb.Get, Key: sentinel},
	}})
	res.DataOK = err == nil && resp.Responses[0].Exists

	table := &Table{
		Title:   "Extension (§8): automatic KV node scaling across a load cycle",
		Columns: []string{"t", "fleet util", "kv nodes"},
	}
	for i, p := range res.Series {
		if i%4 != 0 {
			continue
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%.0fs", p.At.Seconds()),
			fmt.Sprintf("%.0f%%", p.Utilization*100),
			fmt.Sprintf("%d", p.Nodes),
		})
	}
	table.Rows = append(table.Rows, []string{"summary",
		fmt.Sprintf("peak %d nodes", res.MaxNodes),
		fmt.Sprintf("end %d nodes, data ok=%v", res.EndNodes, res.DataOK)})
	return res, table, nil
}
