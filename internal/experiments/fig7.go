package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"crdbserverless/internal/core"
	"crdbserverless/internal/orchestrator"
	"crdbserverless/internal/wire"
)

// Fig7Point is the amortized per-tenant overhead at one fleet size.
type Fig7Point struct {
	Tenants        int
	BytesPerTenant int64
}

// Fig7Result reports suspended- and idle-tenant overhead (§6.2).
type Fig7Result struct {
	Suspended []Fig7Point
	Idle      []Fig7Point
	// IdleCPUPerTenant is CPU seconds/second per idle tenant.
	IdleCPUPerTenant float64
}

// Fig7Options size the experiment.
type Fig7Options struct {
	// SuspendedCounts are the fleet sizes measured for suspended tenants.
	SuspendedCounts []int
	// IdleCounts are the fleet sizes for idle tenants (each has a SQL node
	// with one open connection).
	IdleCounts []int
}

func (o *Fig7Options) defaults() {
	if len(o.SuspendedCounts) == 0 {
		o.SuspendedCounts = []int{50, 200, 500, 1000}
	}
	if len(o.IdleCounts) == 0 {
		o.IdleCounts = []int{5, 15, 30}
	}
}

// Fig7 reproduces §6.2: create fleets of empty tenants — suspended (no SQL
// nodes) and idle (a SQL node holding one connection, no queries) — and
// divide the total resource footprint by the tenant count. Per-tenant
// overhead falls as fixed costs amortize; idle tenants cost far more than
// suspended ones because each holds a live SQL process and session.
func Fig7(opts Fig7Options) (*Fig7Result, *Table, error) {
	opts.defaults()
	ctx := context.Background()
	res := &Fig7Result{}

	// Suspended tenants: registry records + keyspace boundaries only.
	for _, n := range opts.SuspendedCounts {
		tb, err := newTestbed(testbedOptions{kvNodes: 1})
		if err != nil {
			return nil, nil, err
		}
		base := heapInUse()
		for i := 0; i < n; i++ {
			t, err := tb.reg.CreateTenant(ctx, fmt.Sprintf("susp-%d", i), core.TenantOptions{})
			if err != nil {
				tb.close()
				return nil, nil, err
			}
			if err := tb.reg.Suspend(ctx, t.Name); err != nil {
				tb.close()
				return nil, nil, err
			}
		}
		after := heapInUse()
		res.Suspended = append(res.Suspended, Fig7Point{
			Tenants:        n,
			BytesPerTenant: int64(after-base) / int64(n),
		})
		tb.close()
	}

	// Idle tenants: each gets a SQL node with one open connection.
	for _, n := range opts.IdleCounts {
		tb, err := newTestbed(testbedOptions{kvNodes: 1})
		if err != nil {
			return nil, nil, err
		}
		orch, err := orchestrator.New(orchestrator.Config{
			Cluster:         tb.cluster,
			Registry:        tb.reg,
			Buckets:         tb.buckets,
			Region:          "us-central1",
			WarmPoolSize:    0,
			PreStartProcess: true,
		})
		if err != nil {
			tb.close()
			return nil, nil, err
		}
		base := heapInUse()
		var kvBusyBase time.Duration
		for _, kn := range tb.cluster.Nodes() {
			kvBusyBase += kn.CPUBusy()
		}
		var conns []*wire.Client
		for i := 0; i < n; i++ {
			t, err := tb.reg.CreateTenant(ctx, fmt.Sprintf("idle-%d", i), core.TenantOptions{})
			if err != nil {
				tb.close()
				return nil, nil, err
			}
			pod, err := orch.AssignPod(ctx, t)
			if err != nil {
				tb.close()
				return nil, nil, err
			}
			c, err := wire.Connect(pod.Node.Addr(), map[string]string{"tenant": t.Name})
			if err != nil {
				tb.close()
				return nil, nil, err
			}
			conns = append(conns, c)
		}
		// Let the fleet sit idle briefly and measure CPU drift.
		idleWindow := 200 * time.Millisecond
		tb.clock.Sleep(idleWindow)
		var kvBusy time.Duration
		for _, kn := range tb.cluster.Nodes() {
			kvBusy += kn.CPUBusy()
		}
		after := heapInUse()
		res.Idle = append(res.Idle, Fig7Point{
			Tenants:        n,
			BytesPerTenant: int64(after-base) / int64(n),
		})
		res.IdleCPUPerTenant = (kvBusy - kvBusyBase).Seconds() / idleWindow.Seconds() / float64(n)
		for _, c := range conns {
			c.Close()
		}
		orch.Close()
		tb.close()
	}

	table := &Table{
		Title:   "Fig 7: per-tenant overhead amortizes with fleet size (§6.2)",
		Columns: []string{"kind", "tenants", "memory/tenant"},
	}
	for _, p := range res.Suspended {
		table.Rows = append(table.Rows, []string{"suspended", fmt.Sprintf("%d", p.Tenants), fmtBytes(p.BytesPerTenant)})
	}
	for _, p := range res.Idle {
		table.Rows = append(table.Rows, []string{"idle", fmt.Sprintf("%d", p.Tenants), fmtBytes(p.BytesPerTenant)})
	}
	table.Rows = append(table.Rows, []string{"idle", "cpu/tenant",
		fmt.Sprintf("%.5f cpu-sec/sec", res.IdleCPUPerTenant)})
	return res, table, nil
}

func heapInUse() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapInuse
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
