package experiments

import "testing"

func TestPushdownAblationShape(t *testing.T) {
	res, table, err := AblationFilterPushdown(600, 4)
	if err != nil {
		t.Fatal(err)
	}
	if table == nil {
		t.Fatal("no table")
	}
	t.Logf("no-push %.2fx, push %.2fx", res.PenaltyNoPushdown, res.PenaltyWithPushdown)
	if res.PenaltyWithPushdown >= res.PenaltyNoPushdown {
		t.Fatalf("pushdown did not reduce the penalty: %.2fx vs %.2fx",
			res.PenaltyWithPushdown, res.PenaltyNoPushdown)
	}
}
