package experiments

import (
	"strings"
	"testing"
	"time"
)

// Small fleet so the test stays fast; the shapes under test (heavy tail,
// storm, cardinality overflow, determinism) are size-independent.
var fleetTestOpts = FleetObsOptions{Tenants: 96, CalmTicks: 10, StormTicks: 5}

func TestFleetObsIsolationContrast(t *testing.T) {
	res, tbl, err := FleetObs(fleetTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DeterminismOK {
		t.Fatal("same-seed isolated runs rendered different debug pages")
	}
	// Isolation: the victim's storm p99 is unchanged from calm, while the
	// shared queue inflates it by at least an order of magnitude.
	if res.VictimP99StormIso != res.VictimP99Calm {
		t.Errorf("isolated victim p99 moved during storm: calm=%v storm=%v",
			res.VictimP99Calm, res.VictimP99StormIso)
	}
	if res.IsolationFactor < 10 {
		t.Errorf("isolation factor = %.1f, want >= 10", res.IsolationFactor)
	}
	// The aggressor burns its SLO budget; the isolated victim does not.
	if res.AggressorBurnIso < 10 {
		t.Errorf("aggressor burn = %.1f, want >= 10", res.AggressorBurnIso)
	}
	if res.VictimBurnIso != 0 {
		t.Errorf("isolated victim burn = %.1f, want 0", res.VictimBurnIso)
	}
	if res.VictimBurnShared <= res.VictimBurnIso {
		t.Errorf("shared victim burn = %.1f, want > isolated %.1f",
			res.VictimBurnShared, res.VictimBurnIso)
	}
	// Cardinality policy: the fleet plus the system tenant exceed the cap
	// by a quarter of the fleet (and one more for "system"), the pages say
	// so, and the overflow pseudo-tenant is visible.
	wantAbsorbed := int64(res.Tenants + 1 - res.Tenants*3/4)
	if res.Absorbed != wantAbsorbed {
		t.Errorf("absorbed = %d, want %d", res.Absorbed, wantAbsorbed)
	}
	if !strings.Contains(res.Tenantz, "__overflow__") {
		t.Error("tenantz page does not show the __overflow__ pseudo-tenant")
	}
	// The real KV/admission/RU paths fed the labeled registry.
	for _, needle := range []string{
		"dist_tenant_batches{tenant=\"t-0001\"}",
		"admission_tenant_wait_count{tenant=\"t-0001\"}",
		"tenantcost_tenant_ru{tenant=\"t-0001\"}",
		"sql_tenant_queries{result=\"error\",tenant=\"t-0001\"}",
	} {
		if !strings.Contains(res.Metrics, needle) {
			t.Errorf("exposition page missing %q", needle)
		}
	}
	if tbl == nil || len(tbl.Rows) == 0 {
		t.Fatal("empty result table")
	}
}

func TestFleetObsSameSeedBytesAcrossInvocations(t *testing.T) {
	a, _, err := FleetObs(fleetTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := FleetObs(fleetTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tenantz != b.Tenantz {
		t.Error("tenantz pages differ across same-seed invocations")
	}
	if a.SLO != b.SLO {
		t.Error("slo pages differ across same-seed invocations")
	}
	if a.Metrics != b.Metrics {
		t.Error("metrics pages differ across same-seed invocations")
	}
	if a.VictimPage != b.VictimPage || a.AggressorPage != b.AggressorPage {
		t.Error("drill-down pages differ across same-seed invocations")
	}
}

func TestFleetObsOverflowRunStaysDeterministic(t *testing.T) {
	// Clamp the plane so hard that most of the fleet lands in the overflow
	// bucket: the pages must stay byte-stable and the absorbed count exact.
	opts := fleetTestOpts
	opts.MaxTenants = 8
	a, _, err := FleetObs(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !a.DeterminismOK {
		t.Fatal("overflow-heavy same-seed runs rendered different debug pages")
	}
	if want := int64(opts.Tenants + 1 - 8); a.Absorbed != want {
		t.Errorf("absorbed = %d, want %d", a.Absorbed, want)
	}
	if !strings.Contains(a.Metrics, "sql_tenant_queries{result=\"ok\",tenant=\"__overflow__\"}") {
		t.Error("exposition page missing the overflow query series")
	}
}

func TestFleetCalmLoadHeavyTail(t *testing.T) {
	if fleetCalmLoad(1) <= 10*fleetCalmLoad(100) {
		t.Errorf("load curve not heavy-tailed: rank1=%d rank100=%d",
			fleetCalmLoad(1), fleetCalmLoad(100))
	}
	if fleetCalmLoad(100000) != 1 {
		t.Errorf("deep-tail load = %d, want floor of 1", fleetCalmLoad(100000))
	}
}

func TestFleetTickMatchesWindowWidth(t *testing.T) {
	// The storm/calm phase math assumes ticks align with the plane's
	// default window width.
	if fleetTick != 15*time.Second {
		t.Errorf("fleetTick = %v, want 15s", fleetTick)
	}
}
