package experiments

import (
	"context"
	"testing"
)

// A short chaos run must complete with zero invariant violations and must
// actually have exercised the fault surface.
func TestChaosSmoke(t *testing.T) {
	res, err := Chaos(context.Background(), ChaosOptions{Seed: 1, Ops: 400})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Commits == 0 {
		t.Fatal("chaos run committed nothing")
	}
	if res.TotalFires == 0 {
		t.Fatal("chaos run fired no faults")
	}
}

// The same seed must produce a byte-identical fault schedule and operation
// trace: that is what makes a chaos failure reproducible.
func TestChaosDeterminism(t *testing.T) {
	ctx := context.Background()
	a, err := Chaos(ctx, ChaosOptions{Seed: 42, Ops: 300})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chaos(ctx, ChaosOptions{Seed: 42, Ops: 300})
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedule != b.Schedule {
		t.Errorf("fault schedules diverge for the same seed:\n--- run 1 ---\n%s--- run 2 ---\n%s", a.Schedule, b.Schedule)
	}
	if a.Trace != b.Trace {
		t.Errorf("operation traces diverge for the same seed:\n--- run 1 ---\n%s--- run 2 ---\n%s", a.Trace, b.Trace)
	}
	if a.Commits != b.Commits || a.Aborts != b.Aborts || a.TotalFires != b.TotalFires {
		t.Errorf("summary counters diverge: run1={c:%d a:%d f:%d} run2={c:%d a:%d f:%d}",
			a.Commits, a.Aborts, a.TotalFires, b.Commits, b.Aborts, b.TotalFires)
	}
}

// The full-length run from the acceptance criteria; skipped under -short.
func TestChaosFullRun(t *testing.T) {
	if testing.Short() {
		t.Skip("5000-op chaos run skipped in -short mode")
	}
	res, err := Chaos(context.Background(), ChaosOptions{Seed: 7, Ops: 5000})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Commits == 0 || res.TotalFires == 0 {
		t.Fatalf("run did not exercise the system: commits=%d fires=%d", res.Commits, res.TotalFires)
	}
}

// The merge-storm profile churns the directory in both directions while the
// full fault surface stays armed. The run must stay consistent, and both
// split and merge machinery must actually fire.
func TestMergeStormSmoke(t *testing.T) {
	res, err := Chaos(context.Background(), ChaosOptions{Seed: 11, Ops: 600, MergeStorm: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Splits == 0 || res.Merges == 0 {
		t.Fatalf("storm did not churn the directory: splits=%d merges=%d", res.Splits, res.Merges)
	}
	if res.Commits == 0 {
		t.Fatal("storm run committed nothing")
	}
}

// Merge storms must replay byte-identically from the seed, like every other
// chaos profile — merges are driven by the registry and cluster state, never
// by wall-clock load signals.
func TestMergeStormDeterminism(t *testing.T) {
	ctx := context.Background()
	a, err := Chaos(ctx, ChaosOptions{Seed: 23, Ops: 400, MergeStorm: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chaos(ctx, ChaosOptions{Seed: 23, Ops: 400, MergeStorm: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedule != b.Schedule {
		t.Errorf("fault schedules diverge for the same seed:\n--- run 1 ---\n%s--- run 2 ---\n%s", a.Schedule, b.Schedule)
	}
	if a.Trace != b.Trace {
		t.Errorf("operation traces diverge for the same seed:\n--- run 1 ---\n%s--- run 2 ---\n%s", a.Trace, b.Trace)
	}
	if a.Merges != b.Merges || a.Splits != b.Splits {
		t.Errorf("directory churn diverges: run1={s:%d m:%d} run2={s:%d m:%d}",
			a.Splits, a.Merges, b.Splits, b.Merges)
	}
}
