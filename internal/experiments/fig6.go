package experiments

import (
	"context"
	"fmt"
	"time"

	"crdbserverless/internal/metric"
	"crdbserverless/internal/workload"
)

// Fig6Workload is one workload's Serverless-vs-Traditional comparison.
type Fig6Workload struct {
	Name           string
	ServerlessCPU  time.Duration
	TraditionalCPU time.Duration
	CPURatio       float64 // serverless / traditional
	ServerlessLat  metric.Summary
	TraditionalLat metric.Summary
}

// Fig6Options size the experiment.
type Fig6Options struct {
	TPCCWarehouses int // default 2
	TPCCOps        int // default 60
	TPCHRows       int // default 800
	TPCHRuns       int // default 10
}

func (o *Fig6Options) defaults() {
	if o.TPCCWarehouses == 0 {
		o.TPCCWarehouses = 2
	}
	if o.TPCCOps == 0 {
		o.TPCCOps = 60
	}
	if o.TPCHRows == 0 {
		o.TPCHRows = 800
	}
	if o.TPCHRuns == 0 {
		o.TPCHRuns = 10
	}
}

// Fig6 reproduces §6.1: TPC-C and TPC-H Q1/Q9 against a Serverless
// deployment (separate SQL process; rows marshaled across the SQL/KV
// boundary) and a Traditional deployment (SQL colocated with KV). The
// expected shape: TPC-C and Q9 have similar CPU in both modes; Q1's
// full-scan aggregation costs ~2x+ more CPU in Serverless (the paper
// measures 2.3x).
func Fig6(opts Fig6Options) ([]Fig6Workload, *Table, error) {
	opts.defaults()
	ctx := context.Background()

	type mode struct {
		name      string
		colocated bool
	}
	modes := []mode{{"serverless", false}, {"traditional", true}}

	// measure runs fn against a fresh tenant in the given mode and returns
	// (total CPU consumed, latency histogram).
	measure := func(name string, colocated bool, setup func(workload.DB) error, op func(workload.DB) error, ops int) (time.Duration, metric.Summary, error) {
		tb, err := newTestbed(testbedOptions{kvNodes: 3, vcpus: 8})
		if err != nil {
			return 0, metric.Summary{}, err
		}
		defer tb.close()
		h, err := tb.newTenant(ctx, name, colocated, 0)
		if err != nil {
			return 0, metric.Summary{}, err
		}
		sess := h.session()
		if err := setup(sess); err != nil {
			return 0, metric.Summary{}, err
		}
		// CPU baseline after setup.
		var kvBefore time.Duration
		for _, n := range tb.cluster.Nodes() {
			kvBefore += n.CPUBusy()
		}
		sqlBefore := h.exec.SQLCPUSeconds()

		hist := metric.NewHistogram()
		for i := 0; i < ops; i++ {
			start := tb.clock.Now()
			if err := op(sess); err != nil {
				return 0, metric.Summary{}, err
			}
			hist.Record(tb.clock.Since(start))
		}

		var kvAfter time.Duration
		for _, n := range tb.cluster.Nodes() {
			kvAfter += n.CPUBusy()
		}
		sqlDelta := time.Duration((h.exec.SQLCPUSeconds() - sqlBefore) * float64(time.Second))
		return (kvAfter - kvBefore) + sqlDelta, hist.Snapshot(), nil
	}

	var results []Fig6Workload
	// run measures one workload in both modes. factory builds a fresh
	// generator per mode (each mode has its own testbed and tenant).
	run := func(label string, ops int, factory func() (setup, op func(workload.DB) error)) error {
		r := Fig6Workload{Name: label}
		for _, m := range modes {
			setup, op := factory()
			cpu, lat, err := measure(fmt.Sprintf("%s-%s", label, m.name), m.colocated, setup, op, ops)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", label, m.name, err)
			}
			if m.colocated {
				r.TraditionalCPU = cpu
				r.TraditionalLat = lat
			} else {
				r.ServerlessCPU = cpu
				r.ServerlessLat = lat
			}
		}
		if r.TraditionalCPU > 0 {
			r.CPURatio = float64(r.ServerlessCPU) / float64(r.TraditionalCPU)
		}
		results = append(results, r)
		return nil
	}

	// TPC-C (OLTP).
	if err := run("tpcc", opts.TPCCOps, func() (func(workload.DB) error, func(workload.DB) error) {
		w := workload.NewTPCC(opts.TPCCWarehouses, 1)
		return func(db workload.DB) error { return w.Setup(ctx, db) },
			func(db workload.DB) error { return w.RunMix(ctx, db) }
	}); err != nil {
		return nil, nil, err
	}

	// TPC-H Q1 (full-scan aggregation).
	if err := run("tpch-q1", opts.TPCHRuns, func() (func(workload.DB) error, func(workload.DB) error) {
		h := workload.NewTPCH(opts.TPCHRows, 2)
		return func(db workload.DB) error { return h.Setup(ctx, db) },
			func(db workload.DB) error { _, err := h.Q1(ctx, db); return err }
	}); err != nil {
		return nil, nil, err
	}

	// TPC-H Q9 (index joins).
	if err := run("tpch-q9", opts.TPCHRuns, func() (func(workload.DB) error, func(workload.DB) error) {
		h := workload.NewTPCH(opts.TPCHRows, 3)
		return func(db workload.DB) error { return h.Setup(ctx, db) },
			func(db workload.DB) error { _, err := h.Q9(ctx, db); return err }
	}); err != nil {
		return nil, nil, err
	}

	table := &Table{
		Title: "Fig 6: CPU and latency, Serverless vs Traditional deployments",
		Columns: []string{"workload", "serverless CPU", "traditional CPU", "ratio",
			"srvless p50", "srvless p99", "trad p50", "trad p99"},
	}
	for _, r := range results {
		table.Rows = append(table.Rows, []string{
			r.Name,
			fmtDur(r.ServerlessCPU),
			fmtDur(r.TraditionalCPU),
			fmt.Sprintf("%.2fx", r.CPURatio),
			fmtDur(r.ServerlessLat.P50), fmtDur(r.ServerlessLat.P99),
			fmtDur(r.TraditionalLat.P50), fmtDur(r.TraditionalLat.P99),
		})
	}
	return results, table, nil
}
