package experiments

import (
	"fmt"
	"time"

	"crdbserverless/internal/coldstart"
	"crdbserverless/internal/metric"
	"crdbserverless/internal/randutil"
	"crdbserverless/internal/region"
	"crdbserverless/internal/sql"
	"crdbserverless/internal/timeutil"
	"crdbserverless/internal/trace"
)

// Fig10aResult compares cold-start latency with and without process
// pre-warming.
type Fig10aResult struct {
	Unoptimized metric.Summary
	Optimized   metric.Summary
	// Trace is one optimized cold start decomposed into child spans
	// (pod_assign, cert_issue, fs_watch, system database accesses,
	// conn_migrate). The children partition the root exactly.
	Trace *trace.Span
}

// Fig10a reproduces §6.5.1: the production cold-start prober measured before
// and after the pre-warming optimization. Expected shape: p50 and p99 both
// drop by more than half; the optimized flow is sub-second. It also records
// one optimized trial as a trace and verifies the scale-from-zero
// decomposition: the child spans' durations sum exactly to the end-to-end
// root span.
func Fig10a(trials int) (*Fig10aResult, *Table, error) {
	if trials <= 0 {
		trials = 1000
	}
	top := region.DefaultTopology()
	params := coldstart.DefaultParams(top)
	rng := randutil.NewRand(20250622)
	loc := sql.SystemTableLocalities{RegionAware: true}

	unopt := coldstart.RunProber(rng, params, coldstart.Flow{
		PreWarmed: false, Localities: loc, ClientRegion: "us-central1",
	}, trials)
	opt := coldstart.RunProber(rng, params, coldstart.Flow{
		PreWarmed: true, Localities: loc, ClientRegion: "us-central1",
	}, trials)

	// Decompose one optimized cold start as a trace on a manual-clock
	// tracer and assert the structural invariant.
	clock := timeutil.NewManualClock(time.Unix(0, 0))
	tr := trace.New(trace.Options{Clock: clock, Seed: 20250622})
	root, total, err := coldstart.TraceOne(tr, rng, params, coldstart.Flow{
		PreWarmed: true, Localities: loc, ClientRegion: "us-central1",
	})
	if err != nil {
		return nil, nil, err
	}
	var sum time.Duration
	for _, c := range root.Children() {
		sum += c.Duration()
	}
	if sum != root.Duration() || sum != total {
		return nil, nil, fmt.Errorf(
			"fig10a: cold-start trace does not decompose: children sum %v, root %v, simulated total %v",
			sum, root.Duration(), total)
	}

	res := &Fig10aResult{Unoptimized: unopt.Snapshot(), Optimized: opt.Snapshot(), Trace: root}
	table := &Table{
		Title:   "Fig 10a: cold start latency, pre-warmed SQL process (§6.5.1)",
		Columns: []string{"flow", "p50", "p99"},
		Rows: [][]string{
			{"unoptimized", fmtDur(res.Unoptimized.P50), fmtDur(res.Unoptimized.P99)},
			{"optimized (pre-warmed)", fmtDur(res.Optimized.P50), fmtDur(res.Optimized.P99)},
			{"reduction", fmt.Sprintf("%.0f%%", 100*(1-res.Optimized.P50.Seconds()/res.Unoptimized.P50.Seconds())),
				fmt.Sprintf("%.0f%%", 100*(1-res.Optimized.P99.Seconds()/res.Unoptimized.P99.Seconds()))},
		},
	}
	for _, c := range root.Children() {
		table.Rows = append(table.Rows, []string{"  trace: " + c.Op(), fmtDur(c.Duration()), ""})
	}
	table.Rows = append(table.Rows, []string{"  trace: end-to-end", fmtDur(root.Duration()), ""})
	return res, table, nil
}

// Fig10bRegion is one region's cold-start distribution under both system
// database configurations.
type Fig10bRegion struct {
	Region      region.Region
	Optimized   metric.Summary
	Unoptimized metric.Summary
}

// Fig10b reproduces §6.5.2: multi-region cold starts with the region-aware
// system database (GLOBAL descriptors, REGIONAL BY ROW sql_instances) vs
// leaseholders pinned to asia-southeast1. Expected shape: region-aware gives
// sub-second p50 (<= 0.73s) in every region; pinning penalizes remote
// regions by their RTT to asia.
func Fig10b(trials int) ([]Fig10bRegion, *Table) {
	if trials <= 0 {
		trials = 1000
	}
	top := region.DefaultTopology()
	params := coldstart.DefaultParams(top)
	rng := randutil.NewRand(20250623)

	aware := sql.SystemTableLocalities{RegionAware: true}
	pinned := sql.SystemTableLocalities{RegionAware: false, Home: "asia-southeast1"}

	var out []Fig10bRegion
	table := &Table{
		Title:   "Fig 10b: multi-region cold starts (§6.5.2); pinned leaseholders in asia-southeast1",
		Columns: []string{"region", "optimized p50", "optimized p99", "unoptimized p50", "unoptimized p99"},
	}
	for _, r := range top.Regions() {
		opt := coldstart.RunProber(rng, params, coldstart.Flow{
			PreWarmed: true, Localities: aware, ClientRegion: r,
		}, trials)
		unopt := coldstart.RunProber(rng, params, coldstart.Flow{
			PreWarmed: true, Localities: pinned, ClientRegion: r,
		}, trials)
		row := Fig10bRegion{Region: r, Optimized: opt.Snapshot(), Unoptimized: unopt.Snapshot()}
		out = append(out, row)
		table.Rows = append(table.Rows, []string{
			string(r),
			fmtDur(row.Optimized.P50), fmtDur(row.Optimized.P99),
			fmtDur(row.Unoptimized.P50), fmtDur(row.Unoptimized.P99),
		})
	}
	return out, table
}

// Fig10Durations exposes an ablation helper: the warm-pool size sweep. A
// cold start that misses the warm pool pays the full pod creation cost; the
// hit rate depends on pool size versus cold-start arrival rate.
type WarmPoolPoint struct {
	PoolSize   int
	HitRate    float64
	P50Latency time.Duration
}

// AblationWarmPool sweeps the warm-pool size against a Poisson-ish arrival
// process of cold starts and reports hit rate and p50 latency. Pool misses
// pay pod creation (~3s per §4.2.1); hits pay only the optimized flow.
func AblationWarmPool(arrivalsPerMin float64, trials int) ([]WarmPoolPoint, *Table) {
	if trials <= 0 {
		trials = 2000
	}
	top := region.DefaultTopology()
	params := coldstart.DefaultParams(top)
	rng := randutil.NewRand(99)
	loc := sql.SystemTableLocalities{RegionAware: true}
	// Pod creation without a warm pool takes ~3s (§4.2.1).
	podCreate := coldstart.Dist{Median: 3 * time.Second, Sigma: 0.2}
	// Pool refill takes ~replenish seconds; during a burst, arrivals beyond
	// the pool size miss. Model hit probability with an M/M/c-loss-style
	// approximation: hits while any of c warm pods is available, with
	// refill time vs inter-arrival time.
	refill := 5.0 // seconds to replenish one pod
	interArrival := 60.0 / arrivalsPerMin

	var out []WarmPoolPoint
	table := &Table{
		Title:   fmt.Sprintf("Ablation: warm pool size at %.0f cold starts/min", arrivalsPerMin),
		Columns: []string{"pool size", "hit rate", "p50 cold start"},
	}
	for _, size := range []int{0, 1, 2, 4, 8} {
		// Occupancy: expected pods mid-refill when an arrival lands.
		busy := refill / interArrival
		hitRate := 1.0
		if size == 0 {
			hitRate = 0
		} else if busy > 0 {
			// Erlang-B-flavored loss approximation.
			b := 1.0
			for k := 1; k <= size; k++ {
				b = busy * b / (float64(k) + busy*b)
			}
			hitRate = 1 - b
		}
		h := metric.NewHistogram()
		for i := 0; i < trials; i++ {
			lat := coldstart.Simulate(rng, params, coldstart.Flow{
				PreWarmed: true, Localities: loc, ClientRegion: "us-central1",
			})
			if rng.Float64() > hitRate {
				lat += podCreate.Sample(rng)
			}
			h.Record(lat)
		}
		pt := WarmPoolPoint{PoolSize: size, HitRate: hitRate, P50Latency: h.P50()}
		out = append(out, pt)
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", size),
			fmt.Sprintf("%.0f%%", hitRate*100),
			fmtDur(pt.P50Latency),
		})
	}
	return out, table
}
