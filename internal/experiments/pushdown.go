package experiments

import (
	"context"
	"fmt"
	"time"

	"crdbserverless/internal/sql"
	"crdbserverless/internal/workload"
)

// PushdownResult quantifies the §8 future-work row-filter push-down on a
// selective full-scan query, in a Serverless (separate-process) deployment.
type PushdownResult struct {
	// CPU per query without and with push-down, plus the colocated
	// (traditional) reference.
	NoPushdownCPU   time.Duration
	WithPushdownCPU time.Duration
	TraditionalCPU  time.Duration
	// PenaltyNoPushdown and PenaltyWithPushdown are the Serverless/CPU
	// ratios vs traditional — push-down should close most of the gap for
	// selective scans.
	PenaltyNoPushdown   float64
	PenaltyWithPushdown float64
}

// AblationFilterPushdown measures a selective filtered full scan (no usable
// index) in three configurations: traditional (colocated), Serverless
// without push-down (every row is marshaled to the SQL process and filtered
// there), and Serverless with push-down (the KV node filters first). The
// paper's §8 argues push-down "would bring efficiency gains"; this quantifies
// them on the simulated substrate.
func AblationFilterPushdown(rows, runs int) (*PushdownResult, *Table, error) {
	if rows <= 0 {
		rows = 1000
	}
	if runs <= 0 {
		runs = 8
	}
	ctx := context.Background()

	measure := func(cfg sql.ExecutorConfig) (time.Duration, error) {
		tb, err := newTestbed(testbedOptions{kvNodes: 3, vcpus: 8})
		if err != nil {
			return 0, err
		}
		defer tb.close()
		h, err := tb.newTenantCfg(ctx, "pushdown", cfg, 0)
		if err != nil {
			return 0, err
		}
		sess := h.session()
		gen := workload.NewTPCH(rows, 31)
		if err := gen.Setup(ctx, sess); err != nil {
			return 0, err
		}
		var kvBefore time.Duration
		for _, n := range tb.cluster.Nodes() {
			kvBefore += n.CPUBusy()
		}
		sqlBefore := h.exec.SQLCPUSeconds()
		// A ~2% selective predicate with no usable index.
		for i := 0; i < runs; i++ {
			if _, err := sess.Execute(ctx,
				"SELECT l_key, l_price FROM lineitem WHERE l_shipdate >= 100 AND l_shipdate < 150"); err != nil {
				return 0, err
			}
		}
		var kvAfter time.Duration
		for _, n := range tb.cluster.Nodes() {
			kvAfter += n.CPUBusy()
		}
		total := (kvAfter - kvBefore) +
			time.Duration((h.exec.SQLCPUSeconds()-sqlBefore)*float64(time.Second))
		return total / time.Duration(runs), nil
	}

	noPush, err := measure(sql.ExecutorConfig{Colocated: false})
	if err != nil {
		return nil, nil, err
	}
	withPush, err := measure(sql.ExecutorConfig{Colocated: false, FilterPushdown: true})
	if err != nil {
		return nil, nil, err
	}
	trad, err := measure(sql.ExecutorConfig{Colocated: true})
	if err != nil {
		return nil, nil, err
	}
	tradPush, err := measure(sql.ExecutorConfig{Colocated: true, FilterPushdown: true})
	if err != nil {
		return nil, nil, err
	}

	res := &PushdownResult{
		NoPushdownCPU:   noPush,
		WithPushdownCPU: withPush,
		TraditionalCPU:  trad,
	}
	if trad > 0 {
		res.PenaltyNoPushdown = float64(noPush) / float64(trad)
		res.PenaltyWithPushdown = float64(withPush) / float64(trad)
	}
	// The like-for-like comparison: both deployments filtering at the data.
	likeForLike := 0.0
	if tradPush > 0 {
		likeForLike = float64(withPush) / float64(tradPush)
	}
	table := &Table{
		Title:   "Extension (§8): row-filter push-down on a selective full scan",
		Columns: []string{"configuration", "CPU/query", "vs traditional"},
		Rows: [][]string{
			{"traditional (colocated)", fmtDur(trad), "1.00x"},
			{"traditional + push-down", fmtDur(tradPush), fmt.Sprintf("%.2fx", float64(tradPush)/float64(trad))},
			{"serverless, no push-down", fmtDur(noPush), fmt.Sprintf("%.2fx", res.PenaltyNoPushdown)},
			{"serverless, push-down", fmtDur(withPush), fmt.Sprintf("%.2fx", res.PenaltyWithPushdown)},
			{"serverless/traditional, both pushed", fmt.Sprintf("%.2fx", likeForLike), ""},
		},
	}
	return res, table, nil
}
