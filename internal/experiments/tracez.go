package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"crdbserverless/internal/core"
	"crdbserverless/internal/debug"
	"crdbserverless/internal/metric"
	"crdbserverless/internal/orchestrator"
	"crdbserverless/internal/proxy"
	"crdbserverless/internal/trace"
	"crdbserverless/internal/wire"
)

// TracezResult is the observability demo's digest of the trace surface.
type TracezResult struct {
	// Roots is the number of finished root traces the recorder retained.
	Roots int
	// DeepestChain is the longest parent-child chain seen in any trace
	// (the full point-read path is proxy.conn -> proxy.exchange ->
	// sqlnode.query -> sql.exec -> txn.run -> dist.send -> kv.eval).
	DeepestChain int
	// AdmissionWaits counts kv.eval spans carrying the admission.wait
	// attribute; AdmissionWaitMax is the largest recorded wait.
	AdmissionWaits   int
	AdmissionWaitMax time.Duration
	// Tracez and Metrics are the rendered /debug/tracez and /debug/metrics
	// surfaces for the run.
	Tracez  string
	Metrics string
}

// TracezOptions size the observability demo.
type TracezOptions struct {
	Queries int
	Seed    int64
}

// Tracez runs a traced point-read workload through the full serving path —
// routing proxy, SQL node, transaction coordinator, DistSender, KV command
// evaluation under admission control — then reports what the tracing
// subsystem observed: trace count and depth, the admission-queue waits
// recorded on kv.eval spans, and the rendered debug surfaces.
func Tracez(opts TracezOptions) (*TracezResult, *Table, error) {
	if opts.Queries <= 0 {
		opts.Queries = 25
	}
	if opts.Seed == 0 {
		opts.Seed = 20250805
	}
	ctx := context.Background()
	tb, err := newTestbed(testbedOptions{kvNodes: 3, vcpus: 8, admission: true})
	if err != nil {
		return nil, nil, err
	}
	defer tb.close()

	reg := metric.NewRegistry()
	tr := trace.New(trace.Options{Clock: tb.clock, Seed: opts.Seed, Metrics: reg})
	orch, err := orchestrator.New(orchestrator.Config{
		Cluster:         tb.cluster,
		Registry:        tb.reg,
		Buckets:         tb.buckets,
		Region:          "us-central1",
		WarmPoolSize:    2,
		PreStartProcess: true,
		Metrics:         reg,
		Tracer:          tr,
	})
	if err != nil {
		return nil, nil, err
	}
	defer orch.Close()
	p := proxy.New(proxy.Config{Directory: orch, Clock: tb.clock, Metrics: reg, Tracer: tr})
	if err := p.Start("127.0.0.1:0"); err != nil {
		return nil, nil, err
	}
	defer p.Close()

	if _, err := tb.reg.CreateTenant(ctx, "obs", core.TenantOptions{}); err != nil {
		return nil, nil, err
	}
	conn, err := wire.Connect(p.Addr(), map[string]string{"tenant": "obs", "user": "app"})
	if err != nil {
		return nil, nil, err
	}
	if _, err := conn.Query("CREATE TABLE t (a INT PRIMARY KEY, b INT)"); err != nil {
		conn.Close()
		return nil, nil, err
	}
	for i := 0; i < opts.Queries; i++ {
		if _, err := conn.Query(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i*i)); err != nil {
			conn.Close()
			return nil, nil, err
		}
		if _, err := conn.Query(fmt.Sprintf("SELECT b FROM t WHERE a = %d", i)); err != nil {
			conn.Close()
			return nil, nil, err
		}
	}
	conn.Close()

	// The connection's root span finishes asynchronously when the proxy
	// tears the session down; wait for it to land in the recorder.
	var roots []*trace.Span
	deadline := tb.clock.Now().Add(2 * time.Second)
	for {
		roots = tr.Recorder().RecentRoots()
		if hasOp(roots, "proxy.conn") || !tb.clock.Now().Before(deadline) {
			break
		}
		tb.clock.Sleep(5 * time.Millisecond)
	}
	if !hasOp(roots, "proxy.conn") {
		return nil, nil, fmt.Errorf("tracez: no proxy.conn root trace recorded (have %d roots)", len(roots))
	}

	res := &TracezResult{Roots: len(roots)}
	var walk func(s *trace.Span, depth int)
	walk = func(s *trace.Span, depth int) {
		if depth > res.DeepestChain {
			res.DeepestChain = depth
		}
		if s.Op() == "kv.eval" {
			if v, ok := s.Attr("admission.wait"); ok {
				if d, ok := v.(time.Duration); ok {
					res.AdmissionWaits++
					if d > res.AdmissionWaitMax {
						res.AdmissionWaitMax = d
					}
				}
			}
		}
		for _, c := range s.Children() {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 1)
	}

	h := &debug.Handler{Tracer: tr, Sections: []debug.Section{{Registry: reg}}}
	var tz, mx strings.Builder
	if err := h.WriteTracez(&tz); err != nil {
		return nil, nil, err
	}
	if err := h.WriteMetrics(&mx); err != nil {
		return nil, nil, err
	}
	res.Tracez = tz.String()
	res.Metrics = mx.String()

	table := &Table{
		Title:   "Observability: end-to-end request traces (point reads under admission control)",
		Columns: []string{"measure", "value"},
		Rows: [][]string{
			{"root traces recorded", fmt.Sprintf("%d", res.Roots)},
			{"deepest span chain", fmt.Sprintf("%d", res.DeepestChain)},
			{"kv.eval spans with admission.wait", fmt.Sprintf("%d", res.AdmissionWaits)},
			{"max admission-queue wait", fmtDur(res.AdmissionWaitMax)},
		},
	}
	return res, table, nil
}

func hasOp(roots []*trace.Span, op string) bool {
	for _, r := range roots {
		if r.Op() == op {
			return true
		}
	}
	return false
}
