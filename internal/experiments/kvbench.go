package experiments

import (
	"context"
	"fmt"
	"time"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/lsm"
	"crdbserverless/internal/timeutil"
)

// KVBenchResult holds the KV hot-path headline numbers; cmd/repro marshals
// it to BENCH_kv.json so the perf trajectory is tracked across PRs.
type KVBenchResult struct {
	// DistSender fan-out: one BatchRequests-sized Get batch spread evenly
	// across Ranges ranges, dispatched sequentially vs in parallel.
	BatchRequests    int     `json:"batch_requests"`
	Ranges           int     `json:"ranges"`
	SequentialMillis float64 `json:"sequential_batch_ms"`
	ParallelMillis   float64 `json:"parallel_batch_ms"`
	FanoutSpeedup    float64 `json:"fanout_speedup"`

	// LSM read path: point reads against a 10-file L0 backlog, with the
	// bloom filters + level-bound seek vs the probe-every-table baseline.
	PointReads              int     `json:"point_reads"`
	BaselineTablesProbed    int64   `json:"baseline_tables_probed"`
	AcceleratedTablesProbed int64   `json:"accelerated_tables_probed"`
	ProbeReduction          float64 `json:"probe_reduction"`
	BloomFiltered           int64   `json:"bloom_filtered"`
}

// KVBenchOptions size the KV micro-benchmark. Zero values mean the
// acceptance-criteria shape: a 64-request batch across 8 ranges.
type KVBenchOptions struct {
	BatchRequests int
	Ranges        int
}

// KVBench measures the two KV hot paths this repo accelerates: multi-range
// batch dispatch (DistSender fan-out) and LSM point reads (bloom filters and
// the L1+ level-bound seek). The fan-out half runs on the real clock with
// per-batch executor costs of a few milliseconds, so the measured ratio
// reflects dispatch overlap rather than Go scheduling noise.
func KVBench(opts KVBenchOptions) (*KVBenchResult, *Table, error) {
	if opts.BatchRequests <= 0 {
		opts.BatchRequests = 64
	}
	if opts.Ranges <= 0 {
		opts.Ranges = 8
	}
	res := &KVBenchResult{BatchRequests: opts.BatchRequests, Ranges: opts.Ranges}
	if err := benchFanout(opts, res); err != nil {
		return nil, nil, err
	}
	if err := benchLSMReads(res); err != nil {
		return nil, nil, err
	}
	table := &Table{
		Title:   "KV hot path: parallel DistSender fan-out and LSM read acceleration",
		Columns: []string{"measure", "value"},
		Rows: [][]string{
			{fmt.Sprintf("%d-request batch across %d ranges, sequential", res.BatchRequests, res.Ranges),
				fmt.Sprintf("%.1f ms", res.SequentialMillis)},
			{fmt.Sprintf("%d-request batch across %d ranges, parallel", res.BatchRequests, res.Ranges),
				fmt.Sprintf("%.1f ms", res.ParallelMillis)},
			{"fan-out speedup", fmt.Sprintf("%.1fx", res.FanoutSpeedup)},
			{fmt.Sprintf("sstables probed for %d point reads, baseline", res.PointReads),
				fmt.Sprintf("%d", res.BaselineTablesProbed)},
			{fmt.Sprintf("sstables probed for %d point reads, accelerated", res.PointReads),
				fmt.Sprintf("%d", res.AcceleratedTablesProbed)},
			{"probe reduction", fmt.Sprintf("%.1fx", res.ProbeReduction)},
			{"probes skipped by bloom filters", fmt.Sprintf("%d", res.BloomFiltered)},
		},
	}
	return res, table, nil
}

func benchFanout(opts KVBenchOptions, res *KVBenchResult) error {
	clock := timeutil.NewRealClock()
	costs := kvserver.CostConfig{
		ReadBatchOverhead:  2 * time.Millisecond,
		WriteBatchOverhead: time.Nanosecond,
		ReadRequestCost:    time.Microsecond,
		WriteRequestCost:   time.Nanosecond,
	}
	var nodes []*kvserver.Node
	for i := 1; i <= 4; i++ {
		nodes = append(nodes, kvserver.NewNode(kvserver.NodeConfig{
			ID:    kvserver.NodeID(i),
			VCPUs: 8,
			Clock: clock,
			Cost:  costs,
		}))
	}
	cluster, err := kvserver.NewCluster(kvserver.ClusterConfig{Clock: clock}, nodes)
	if err != nil {
		return err
	}
	defer cluster.Close()

	ctx := context.Background()
	key := func(i int) keys.Key {
		return append(keys.MakeTenantPrefix(2), []byte(fmt.Sprintf("k%04d", i))...)
	}
	loader := kvserver.NewDistSender(cluster, kvserver.Identity{Tenant: 2})
	for i := 0; i < opts.BatchRequests; i++ {
		if _, err := loader.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
			{Method: kvpb.Put, Key: key(i), Value: []byte("v")}}}); err != nil {
			return err
		}
	}
	per := opts.BatchRequests / opts.Ranges
	for r := 1; r < opts.Ranges; r++ {
		if err := cluster.SplitAt(key(r * per)); err != nil {
			return err
		}
	}
	ba := &kvpb.BatchRequest{Tenant: 2}
	for i := 0; i < opts.BatchRequests; i++ {
		ba.Requests = append(ba.Requests, kvpb.Request{Method: kvpb.Get, Key: key(i)})
	}

	// Best of three sends per mode, after one warm-up to fill the
	// descriptor cache, so a stray scheduling hiccup doesn't skew a ratio
	// built from single-digit-millisecond measurements.
	measure := func(parallelism int) (time.Duration, error) {
		ds := kvserver.NewDistSender(cluster, kvserver.Identity{Tenant: 2},
			kvserver.Config{Parallelism: parallelism})
		if _, err := ds.Send(ctx, ba); err != nil {
			return 0, err
		}
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := clock.Now()
			if _, err := ds.Send(ctx, ba); err != nil {
				return 0, err
			}
			if d := clock.Since(start); d < best {
				best = d
			}
		}
		return best, nil
	}
	seq, err := measure(1)
	if err != nil {
		return err
	}
	par, err := measure(kvserver.DefaultParallelism)
	if err != nil {
		return err
	}
	res.SequentialMillis = float64(seq) / float64(time.Millisecond)
	res.ParallelMillis = float64(par) / float64(time.Millisecond)
	if par > 0 {
		res.FanoutSpeedup = float64(seq) / float64(par)
	}
	return nil
}

func benchLSMReads(res *KVBenchResult) error {
	// A 10-file L0 backlog of 32 keys each, built twice over identical
	// data: once accelerated, once probe-every-table.
	build := func(disableAccel bool) (*lsm.Engine, error) {
		e := lsm.New(lsm.Options{
			DisableAutoCompactions:  true,
			DisableReadAcceleration: disableAccel,
		})
		for f := 0; f < 10; f++ {
			var entries []lsm.Entry
			for k := 0; k < 32; k++ {
				entries = append(entries, lsm.Entry{
					Key:   []byte(fmt.Sprintf("l0-%02d-%03d", f, k)),
					Value: []byte("v"),
				})
			}
			if err := e.ApplyBatch(entries); err != nil {
				e.Close()
				return nil, err
			}
			if err := e.Flush(); err != nil {
				e.Close()
				return nil, err
			}
		}
		return e, nil
	}
	var reads [][]byte
	for f := 0; f < 10; f++ {
		for k := 0; k < 32; k++ {
			reads = append(reads, []byte(fmt.Sprintf("l0-%02d-%03d", f, k)))
			reads = append(reads, []byte(fmt.Sprintf("zz-%02d-%03d", f, k)))
		}
	}
	res.PointReads = len(reads)
	for _, disableAccel := range []bool{false, true} {
		e, err := build(disableAccel)
		if err != nil {
			return err
		}
		for _, key := range reads {
			_, ok, err := e.Get(key)
			if err != nil {
				e.Close()
				return err
			}
			if want := key[0] == 'l'; ok != want {
				e.Close()
				return fmt.Errorf("kvbench: Get(%q) found=%v, want %v", key, ok, want)
			}
		}
		m := e.Metrics()
		if disableAccel {
			res.BaselineTablesProbed = m.TablesProbed
		} else {
			res.AcceleratedTablesProbed = m.TablesProbed
			res.BloomFiltered = m.BloomFiltered
		}
		e.Close()
	}
	if res.AcceleratedTablesProbed > 0 {
		res.ProbeReduction = float64(res.BaselineTablesProbed) / float64(res.AcceleratedTablesProbed)
	}
	return nil
}
