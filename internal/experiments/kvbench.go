package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/lsm"
	"crdbserverless/internal/metric"
	"crdbserverless/internal/raftlite"
	"crdbserverless/internal/randutil"
	"crdbserverless/internal/timeutil"
)

// KVBenchResult holds the KV hot-path headline numbers; cmd/repro marshals
// it to BENCH_kv.json so the perf trajectory is tracked across PRs.
type KVBenchResult struct {
	// DistSender fan-out: one BatchRequests-sized Get batch spread evenly
	// across Ranges ranges, dispatched sequentially vs in parallel.
	BatchRequests    int     `json:"batch_requests"`
	Ranges           int     `json:"ranges"`
	SequentialMillis float64 `json:"sequential_batch_ms"`
	ParallelMillis   float64 `json:"parallel_batch_ms"`
	FanoutSpeedup    float64 `json:"fanout_speedup"`

	// LSM read path: point reads against a 10-file L0 backlog, with the
	// bloom filters + level-bound seek vs the probe-every-table baseline.
	PointReads              int     `json:"point_reads"`
	BaselineTablesProbed    int64   `json:"baseline_tables_probed"`
	AcceleratedTablesProbed int64   `json:"accelerated_tables_probed"`
	ProbeReduction          float64 `json:"probe_reduction"`
	BloomFiltered           int64   `json:"bloom_filtered"`

	// Raft write path: concurrent proposers against one replication group
	// with a fixed per-commit-round overhead, one round per proposal
	// (DisableGroupCommit) vs the group-commit sequencer.
	GroupProposers       int     `json:"group_proposers"`
	GroupProposals       int     `json:"group_proposals"`
	BaselineCommitMillis float64 `json:"baseline_commit_ms"`
	GroupedCommitMillis  float64 `json:"grouped_commit_ms"`
	GroupCommitSpeedup   float64 `json:"group_commit_speedup"`
	GroupMeanBatch       float64 `json:"group_mean_batch"`

	// LSM write path: point-read latency while a compaction merge is running,
	// merge-under-lock (DisableWritePipelining) vs the out-of-lock pipeline.
	CompactionReads            int     `json:"compaction_reads"`
	BaselineReadP99Micros      float64 `json:"baseline_compaction_read_p99_us"`
	PipelinedReadP99Micros     float64 `json:"pipelined_compaction_read_p99_us"`
	CompactionReadP99Reduction float64 `json:"compaction_read_p99_reduction"`

	// Zipfian read path: a seeded Zipf(theta=0.99) 90/10 read/write mix over
	// 2 KiB values — inline values with no caches vs value separation with
	// the block and hot-key caches.
	ZipfKeys                 int     `json:"zipf_keys"`
	ZipfOps                  int     `json:"zipf_ops"`
	BaselineZipfP50Micros    float64 `json:"baseline_zipf_read_p50_us"`
	BaselineZipfP99Micros    float64 `json:"baseline_zipf_read_p99_us"`
	AcceleratedZipfP50Micros float64 `json:"accelerated_zipf_read_p50_us"`
	AcceleratedZipfP99Micros float64 `json:"accelerated_zipf_read_p99_us"`
	ZipfP99Speedup           float64 `json:"zipf_read_p99_speedup"`
	BlockCacheHitRatio       float64 `json:"block_cache_hit_ratio"`
	HotCacheHitRatio         float64 `json:"hot_cache_hit_ratio"`

	// Value-log GC: bytes of dead values created by a full overwrite pass,
	// and the fraction reclaimed once compaction reports the discards.
	VlogDeadBytes       int64   `json:"vlog_dead_bytes"`
	VlogReclaimedBytes  int64   `json:"vlog_reclaimed_bytes"`
	VlogReclaimFraction float64 `json:"vlog_reclaim_fraction"`

	// Crash recovery: a durable engine is killed mid-stream and reopened;
	// RecoveryMillis is the wall time of lsm.Open — manifest load, sstable and
	// vlog re-open, and WAL replay of the unflushed suffix.
	RecoveryEntries  int     `json:"recovery_entries"`
	RecoveryWALBytes int64   `json:"recovery_wal_bytes"`
	RecoveryMillis   float64 `json:"recovery_ms"`
}

// KVBenchOptions size the KV micro-benchmark. Zero values mean the
// acceptance-criteria shape: a 64-request batch across 8 ranges.
type KVBenchOptions struct {
	BatchRequests int
	Ranges        int
}

// KVBench measures the two KV hot paths this repo accelerates: multi-range
// batch dispatch (DistSender fan-out) and LSM point reads (bloom filters and
// the L1+ level-bound seek). The fan-out half runs on the real clock with
// per-batch executor costs of a few milliseconds, so the measured ratio
// reflects dispatch overlap rather than Go scheduling noise.
func KVBench(opts KVBenchOptions) (*KVBenchResult, *Table, error) {
	if opts.BatchRequests <= 0 {
		opts.BatchRequests = 64
	}
	if opts.Ranges <= 0 {
		opts.Ranges = 8
	}
	res := &KVBenchResult{BatchRequests: opts.BatchRequests, Ranges: opts.Ranges}
	if err := benchFanout(opts, res); err != nil {
		return nil, nil, err
	}
	if err := benchLSMReads(res); err != nil {
		return nil, nil, err
	}
	if err := benchGroupCommit(res); err != nil {
		return nil, nil, err
	}
	if err := benchCompactionReads(res); err != nil {
		return nil, nil, err
	}
	if err := benchZipfianReads(res); err != nil {
		return nil, nil, err
	}
	if err := benchVlogReclaim(res); err != nil {
		return nil, nil, err
	}
	if err := benchRecovery(res); err != nil {
		return nil, nil, err
	}
	table := &Table{
		Title:   "KV hot path: fan-out, read acceleration, and write-path pipelining",
		Columns: []string{"measure", "value"},
		Rows: [][]string{
			{fmt.Sprintf("%d-request batch across %d ranges, sequential", res.BatchRequests, res.Ranges),
				fmt.Sprintf("%.1f ms", res.SequentialMillis)},
			{fmt.Sprintf("%d-request batch across %d ranges, parallel", res.BatchRequests, res.Ranges),
				fmt.Sprintf("%.1f ms", res.ParallelMillis)},
			{"fan-out speedup", fmt.Sprintf("%.1fx", res.FanoutSpeedup)},
			{fmt.Sprintf("sstables probed for %d point reads, baseline", res.PointReads),
				fmt.Sprintf("%d", res.BaselineTablesProbed)},
			{fmt.Sprintf("sstables probed for %d point reads, accelerated", res.PointReads),
				fmt.Sprintf("%d", res.AcceleratedTablesProbed)},
			{"probe reduction", fmt.Sprintf("%.1fx", res.ProbeReduction)},
			{"probes skipped by bloom filters", fmt.Sprintf("%d", res.BloomFiltered)},
			{fmt.Sprintf("%d proposals from %d proposers, one round each", res.GroupProposals, res.GroupProposers),
				fmt.Sprintf("%.1f ms", res.BaselineCommitMillis)},
			{fmt.Sprintf("%d proposals from %d proposers, group commit", res.GroupProposals, res.GroupProposers),
				fmt.Sprintf("%.1f ms (mean batch %.1f)", res.GroupedCommitMillis, res.GroupMeanBatch)},
			{"group-commit speedup", fmt.Sprintf("%.1fx", res.GroupCommitSpeedup)},
			{fmt.Sprintf("read p99 during compaction, merge under lock (%d reads)", res.CompactionReads),
				fmt.Sprintf("%.0f µs", res.BaselineReadP99Micros)},
			{"read p99 during compaction, out-of-lock merge",
				fmt.Sprintf("%.0f µs", res.PipelinedReadP99Micros)},
			{"compaction read-p99 reduction", fmt.Sprintf("%.1fx", res.CompactionReadP99Reduction)},
			{fmt.Sprintf("zipfian read p50/p99 over %d keys, inline no-cache", res.ZipfKeys),
				fmt.Sprintf("%.1f / %.1f µs", res.BaselineZipfP50Micros, res.BaselineZipfP99Micros)},
			{"zipfian read p50/p99, separated + cached",
				fmt.Sprintf("%.1f / %.1f µs", res.AcceleratedZipfP50Micros, res.AcceleratedZipfP99Micros)},
			{"zipfian read-p99 speedup", fmt.Sprintf("%.1fx", res.ZipfP99Speedup)},
			{"block / hot-key cache hit ratio",
				fmt.Sprintf("%.2f / %.2f", res.BlockCacheHitRatio, res.HotCacheHitRatio)},
			{fmt.Sprintf("vlog GC reclaimed of %d dead bytes", res.VlogDeadBytes),
				fmt.Sprintf("%d (%.2f)", res.VlogReclaimedBytes, res.VlogReclaimFraction)},
			{fmt.Sprintf("crash recovery of %d entries (%d WAL bytes)", res.RecoveryEntries, res.RecoveryWALBytes),
				fmt.Sprintf("%.1f ms", res.RecoveryMillis)},
		},
	}
	return res, table, nil
}

func benchFanout(opts KVBenchOptions, res *KVBenchResult) error {
	clock := timeutil.NewRealClock()
	costs := kvserver.CostConfig{
		ReadBatchOverhead:  2 * time.Millisecond,
		WriteBatchOverhead: time.Nanosecond,
		ReadRequestCost:    time.Microsecond,
		WriteRequestCost:   time.Nanosecond,
	}
	var nodes []*kvserver.Node
	for i := 1; i <= 4; i++ {
		nodes = append(nodes, kvserver.NewNode(kvserver.NodeConfig{
			ID:    kvserver.NodeID(i),
			VCPUs: 8,
			Clock: clock,
			Cost:  costs,
		}))
	}
	cluster, err := kvserver.NewCluster(kvserver.ClusterConfig{Clock: clock}, nodes)
	if err != nil {
		return err
	}
	defer cluster.Close()

	ctx := context.Background()
	key := func(i int) keys.Key {
		return append(keys.MakeTenantPrefix(2), []byte(fmt.Sprintf("k%04d", i))...)
	}
	loader := kvserver.NewDistSender(cluster, kvserver.Identity{Tenant: 2})
	for i := 0; i < opts.BatchRequests; i++ {
		if _, err := loader.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
			{Method: kvpb.Put, Key: key(i), Value: []byte("v")}}}); err != nil {
			return err
		}
	}
	per := opts.BatchRequests / opts.Ranges
	for r := 1; r < opts.Ranges; r++ {
		if err := cluster.SplitAt(key(r * per)); err != nil {
			return err
		}
	}
	ba := &kvpb.BatchRequest{Tenant: 2}
	for i := 0; i < opts.BatchRequests; i++ {
		ba.Requests = append(ba.Requests, kvpb.Request{Method: kvpb.Get, Key: key(i)})
	}

	// Best of three sends per mode, after one warm-up to fill the
	// descriptor cache, so a stray scheduling hiccup doesn't skew a ratio
	// built from single-digit-millisecond measurements.
	measure := func(parallelism int) (time.Duration, error) {
		ds := kvserver.NewDistSender(cluster, kvserver.Identity{Tenant: 2},
			kvserver.Config{Parallelism: parallelism})
		if _, err := ds.Send(ctx, ba); err != nil {
			return 0, err
		}
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := clock.Now()
			if _, err := ds.Send(ctx, ba); err != nil {
				return 0, err
			}
			if d := clock.Since(start); d < best {
				best = d
			}
		}
		return best, nil
	}
	seq, err := measure(1)
	if err != nil {
		return err
	}
	par, err := measure(kvserver.DefaultParallelism)
	if err != nil {
		return err
	}
	res.SequentialMillis = float64(seq) / float64(time.Millisecond)
	res.ParallelMillis = float64(par) / float64(time.Millisecond)
	if par > 0 {
		res.FanoutSpeedup = float64(seq) / float64(par)
	}
	return nil
}

func benchLSMReads(res *KVBenchResult) error {
	// A 10-file L0 backlog of 32 keys each, built twice over identical
	// data: once accelerated, once probe-every-table.
	build := func(disableAccel bool) (*lsm.Engine, error) {
		e := lsm.New(lsm.Options{
			DisableAutoCompactions:  true,
			DisableReadAcceleration: disableAccel,
		})
		for f := 0; f < 10; f++ {
			var entries []lsm.Entry
			for k := 0; k < 32; k++ {
				entries = append(entries, lsm.Entry{
					Key:   []byte(fmt.Sprintf("l0-%02d-%03d", f, k)),
					Value: []byte("v"),
				})
			}
			if err := e.ApplyBatch(entries); err != nil {
				e.Close()
				return nil, err
			}
			if err := e.Flush(); err != nil {
				e.Close()
				return nil, err
			}
		}
		return e, nil
	}
	var reads [][]byte
	for f := 0; f < 10; f++ {
		for k := 0; k < 32; k++ {
			reads = append(reads, []byte(fmt.Sprintf("l0-%02d-%03d", f, k)))
			reads = append(reads, []byte(fmt.Sprintf("zz-%02d-%03d", f, k)))
		}
	}
	res.PointReads = len(reads)
	for _, disableAccel := range []bool{false, true} {
		e, err := build(disableAccel)
		if err != nil {
			return err
		}
		for _, key := range reads {
			_, ok, err := e.Get(key)
			if err != nil {
				e.Close()
				return err
			}
			if want := key[0] == 'l'; ok != want {
				e.Close()
				return fmt.Errorf("kvbench: Get(%q) found=%v, want %v", key, ok, want)
			}
		}
		m := e.Metrics()
		if disableAccel {
			res.BaselineTablesProbed = m.TablesProbed
		} else {
			res.AcceleratedTablesProbed = m.TablesProbed
			res.BloomFiltered = m.BloomFiltered
		}
		e.Close()
	}
	if res.AcceleratedTablesProbed > 0 {
		res.ProbeReduction = float64(res.BaselineTablesProbed) / float64(res.AcceleratedTablesProbed)
	}
	return nil
}

// noopSM is a StateMachine that discards commands; the group-commit bench
// measures commit-round amortization, not apply cost.
type noopSM struct{}

func (noopSM) Apply(uint64, []byte) error { return nil }

// benchGroupCommit measures Propose throughput with concurrent proposers
// against a 3-replica group whose commit rounds carry a fixed overhead
// (quorum round-trip + log sync). Baseline is one round per proposal
// (DisableGroupCommit); group commit amortizes the overhead over the batch.
func benchGroupCommit(res *KVBenchResult) error {
	const proposers, perProposer = 8, 40
	const overhead = 250 * time.Microsecond
	res.GroupProposers = proposers
	res.GroupProposals = proposers * perProposer

	run := func(disable bool) (time.Duration, *raftlite.CommitMetrics, error) {
		clock := timeutil.NewRealClock()
		cm := raftlite.NewCommitMetrics(metric.NewRegistry())
		g, err := raftlite.NewGroup(raftlite.Config{
			RangeID:            1,
			Clock:              clock,
			LeaseDuration:      time.Hour,
			DisableGroupCommit: disable,
			CommitOverhead:     overhead,
			CommitMetrics:      cm,
		}, []raftlite.NodeID{1, 2, 3}, []raftlite.StateMachine{noopSM{}, noopSM{}, noopSM{}})
		if err != nil {
			return 0, nil, err
		}
		if err := g.AcquireLease(1); err != nil {
			return 0, nil, err
		}
		errCh := make(chan error, proposers)
		var wg sync.WaitGroup
		start := clock.Now()
		for w := 0; w < proposers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				payload := []byte(fmt.Sprintf("p%d", w))
				for i := 0; i < perProposer; i++ {
					if err := g.Propose(1, payload); err != nil {
						errCh <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := clock.Since(start)
		close(errCh)
		for err := range errCh {
			return 0, nil, err
		}
		return elapsed, cm, nil
	}

	base, _, err := run(true)
	if err != nil {
		return err
	}
	grouped, cm, err := run(false)
	if err != nil {
		return err
	}
	res.BaselineCommitMillis = float64(base) / float64(time.Millisecond)
	res.GroupedCommitMillis = float64(grouped) / float64(time.Millisecond)
	if grouped > 0 {
		res.GroupCommitSpeedup = float64(base) / float64(grouped)
	}
	if b := cm.Batches.Value(); b > 0 {
		res.GroupMeanBatch = float64(cm.Entries.Value()) / float64(b)
	}
	return nil
}

// benchCompactionReads measures paced point-read latency while a churn
// goroutine keeps heavyweight compactions running over a pre-built corpus:
// with merges inside the engine lock (DisableWritePipelining) a read landing
// mid-merge stalls for the merge's remainder, while the out-of-lock pipeline
// keeps the tail flat. Reads are paced (not back-to-back) so the latency
// distribution samples wall time rather than read count — a 50ms stall in a
// stream of microsecond reads would otherwise hide beyond the 99th
// percentile.
func benchCompactionReads(res *KVBenchResult) error {
	const seedTables, perTable = 8, 20000
	const reads = 300
	// The paced reader needs a P of its own to wake from its sleep while the
	// churn goroutine is mid-merge; on a single-P runtime its wake-up waits
	// out the Go preemption quantum (~10ms) in BOTH modes, burying the very
	// lock-hold difference this bench measures under scheduler latency.
	if old := runtime.GOMAXPROCS(0); old < 2 {
		runtime.GOMAXPROCS(2)
		defer runtime.GOMAXPROCS(old)
	}
	clock := timeutil.NewRealClock()
	key := func(t, k int) []byte { return []byte(fmt.Sprintf("c%02d-%06d", t, k)) }
	buildTable := func(t, gen int) []lsm.Entry {
		entries := make([]lsm.Entry, 0, perTable)
		val := []byte(fmt.Sprintf("%032d", gen))
		for k := 0; k < perTable; k++ {
			entries = append(entries, lsm.Entry{Key: key(t, k), Value: val})
		}
		return entries
	}

	run := func(disable bool) (time.Duration, error) {
		e := lsm.New(lsm.Options{
			DisableAutoCompactions: true,
			DisableWritePipelining: disable,
		})
		defer e.Close()
		// Seed corpus, compacted to the bottom so every churn merge has to
		// rewrite it (large merges = long under-lock windows in the baseline).
		for t := 0; t < seedTables; t++ {
			if err := e.ApplyBatch(buildTable(t, 0)); err != nil {
				return 0, err
			}
			if err := e.Flush(); err != nil {
				return 0, err
			}
		}
		e.Compact()

		stop := make(chan struct{})
		churnDone := make(chan error, 1)
		go func() {
			// Churn: overwrite one seed table per round and force a full
			// compaction, keeping a merge in flight for most of the bench.
			for gen := 1; ; gen++ {
				select {
				case <-stop:
					churnDone <- nil
					return
				default:
				}
				if err := e.ApplyBatch(buildTable(gen%seedTables, gen)); err != nil {
					churnDone <- err
					return
				}
				if err := e.Flush(); err != nil {
					churnDone <- err
					return
				}
				e.Compact()
			}
		}()

		rng := randutil.NewRand(1)
		lat := make([]time.Duration, 0, reads)
		var readErr error
		for i := 0; i < reads; i++ {
			clock.Sleep(2 * time.Millisecond)
			k := key(rng.Intn(seedTables), rng.Intn(perTable))
			start := clock.Now()
			_, ok, err := e.Get(k)
			d := clock.Since(start)
			if err != nil {
				readErr = err
				break
			}
			if !ok {
				readErr = fmt.Errorf("kvbench: key %q missing during compaction", k)
				break
			}
			lat = append(lat, d)
		}
		close(stop)
		if err := <-churnDone; err != nil {
			return 0, err
		}
		if readErr != nil {
			return 0, readErr
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)*99/100], nil
	}

	base, err := run(true)
	if err != nil {
		return err
	}
	piped, err := run(false)
	if err != nil {
		return err
	}
	res.CompactionReads = 2 * reads
	res.BaselineReadP99Micros = float64(base) / float64(time.Microsecond)
	res.PipelinedReadP99Micros = float64(piped) / float64(time.Microsecond)
	if piped > 0 {
		res.CompactionReadP99Reduction = float64(base) / float64(piped)
	}
	return nil
}

// benchZipfianReads measures point-read latency under a seeded Zipfian
// (theta=0.99) 90/10 read/write mix over 4 KiB values, with both engines on
// the same memtable byte budget. The baseline stores values inline with no
// caches: every handful of writes rotates a value-laden memtable into a
// deepening L0 backlog (compaction debt under sustained load), so tail
// reads walk hundreds of bloom filters and decode full-value blocks. The
// accelerated config separates values into the log and enables both caches:
// the same write stream fits ~50x more 12-byte-pointer entries per memtable
// so L0 stays shallow, the skewed read mass is absorbed by the hot-key
// cache, and cold reads hit cached pointer blocks.
func benchZipfianReads(res *KVBenchResult) error {
	const zipfKeys = 2048
	const zipfOps = 30000
	const valLen = 4096
	res.ZipfKeys = zipfKeys
	res.ZipfOps = zipfOps
	clock := timeutil.NewRealClock()
	key := func(i uint64) []byte { return []byte(fmt.Sprintf("z%06d", i)) }
	value := func(gen int) []byte {
		v := make([]byte, valLen)
		copy(v, fmt.Sprintf("zipf-%08d-", gen))
		return v
	}

	run := func(accelerated bool) (p50, p99 time.Duration, m lsm.Metrics, err error) {
		opts := lsm.Options{
			DisableAutoCompactions: true,
			MemTableSize:           16 << 10,
		}
		if accelerated {
			opts.ValueThreshold = 512
			opts.BlockCacheBytes = 8 << 20
			opts.HotKeyCacheSize = 1024
		} else {
			opts.DisableValueSeparation = true
		}
		e := lsm.New(opts)
		defer e.Close()
		const chunk = 32
		for base := 0; base < zipfKeys; base += chunk {
			entries := make([]lsm.Entry, 0, chunk)
			for i := base; i < base+chunk; i++ {
				entries = append(entries, lsm.Entry{Key: key(uint64(i)), Value: value(0)})
			}
			if err := e.ApplyBatch(entries); err != nil {
				return 0, 0, m, err
			}
			if err := e.Flush(); err != nil {
				return 0, 0, m, err
			}
		}
		e.Compact() // the corpus starts fully compacted in both configs

		rng := randutil.NewRand(9)
		zipf := randutil.NewZipf(rng, zipfKeys, 0.99)
		lat := make([]time.Duration, 0, zipfOps)
		for op := 0; op < zipfOps; op++ {
			k := key(zipf.Next())
			if rng.Intn(10) == 0 {
				if err := e.Set(k, value(op)); err != nil {
					return 0, 0, m, err
				}
				continue
			}
			start := clock.Now()
			_, ok, err := e.Get(k)
			d := clock.Since(start)
			if err != nil {
				return 0, 0, m, err
			}
			if !ok {
				return 0, 0, m, fmt.Errorf("kvbench: zipf key %q missing", k)
			}
			lat = append(lat, d)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)/2], lat[len(lat)*99/100], e.Metrics(), nil
	}

	bp50, bp99, _, err := run(false)
	if err != nil {
		return err
	}
	ap50, ap99, am, err := run(true)
	if err != nil {
		return err
	}
	res.BaselineZipfP50Micros = float64(bp50) / float64(time.Microsecond)
	res.BaselineZipfP99Micros = float64(bp99) / float64(time.Microsecond)
	res.AcceleratedZipfP50Micros = float64(ap50) / float64(time.Microsecond)
	res.AcceleratedZipfP99Micros = float64(ap99) / float64(time.Microsecond)
	if ap99 > 0 {
		res.ZipfP99Speedup = float64(bp99) / float64(ap99)
	}
	if t := am.BlockCacheHits + am.BlockCacheMisses; t > 0 {
		res.BlockCacheHitRatio = float64(am.BlockCacheHits) / float64(t)
	}
	if t := am.HotCacheHits + am.HotCacheMisses; t > 0 {
		res.HotCacheHitRatio = float64(am.HotCacheHits) / float64(t)
	}
	return nil
}

// benchVlogReclaim overwrites every separated value once and measures how
// much of the dead value-log space the compaction-driven GC pass gives back.
func benchVlogReclaim(res *KVBenchResult) error {
	const keys, valLen = 256, 256
	e := lsm.New(lsm.Options{
		ValueThreshold:         64,
		VlogFileSize:           8 << 10,
		DisableAutoCompactions: true,
	})
	defer e.Close()
	write := func(gen int) error {
		for i := 0; i < keys; i++ {
			v := make([]byte, valLen)
			copy(v, fmt.Sprintf("g%d-%04d-", gen, i))
			if err := e.Set([]byte(fmt.Sprintf("r%04d", i)), v); err != nil {
				return err
			}
		}
		return e.Flush()
	}
	if err := write(1); err != nil {
		return err
	}
	if err := write(2); err != nil {
		return err
	}
	e.Compact() // drops the gen-1 versions, reports discards, runs GC

	m := e.Metrics()
	res.VlogDeadBytes = keys * valLen // every gen-1 value died
	res.VlogReclaimedBytes = m.VlogGCReclaimedBytes
	res.VlogReclaimFraction = float64(res.VlogReclaimedBytes) / float64(res.VlogDeadBytes)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("r%04d", i)
		if _, ok, err := e.Get([]byte(k)); err != nil || !ok {
			return fmt.Errorf("kvbench: key %s lost after vlog GC: ok=%v err=%v", k, ok, err)
		}
	}
	return nil
}

// benchRecovery kills a durable engine mid-stream (no torn tail, so the
// entire WAL replays) and measures the cold-open time: manifest load, sstable
// and value-log re-open, CRC verification, and WAL replay of everything
// written since the last flush. The store is sized so recovery covers both
// flushed state and a multi-segment WAL suffix.
func benchRecovery(res *KVBenchResult) error {
	const entries = 20000
	clock := timeutil.NewRealClock()
	opts := lsm.Options{
		Durable:         lsm.NewDir(),
		MemTableSize:    256 << 10,
		WALBytesPerSync: 4 << 10,
	}
	e := lsm.New(opts)
	key := func(i int) []byte { return []byte(fmt.Sprintf("rec%06d", i)) }
	const chunk = 50
	for base := 0; base < entries; base += chunk {
		batch := make([]lsm.Entry, 0, chunk)
		for i := base; i < base+chunk; i++ {
			batch = append(batch, lsm.Entry{Key: key(i), Value: []byte(fmt.Sprintf("val-%06d", i))})
		}
		if err := e.ApplyBatch(batch); err != nil {
			e.Close()
			return err
		}
	}
	walBytes := e.Metrics().WALBytes
	e.Close()
	opts.Durable.Crash(0) // clean kill: everything synced survives

	start := clock.Now()
	re, err := lsm.Open(opts)
	if err != nil {
		return err
	}
	elapsed := clock.Since(start)
	defer re.Close()
	for _, i := range []int{0, entries / 2, entries - 1} {
		v, ok, err := re.Get(key(i))
		if err != nil || !ok || string(v) != fmt.Sprintf("val-%06d", i) {
			return fmt.Errorf("kvbench: recovered key %q = %q (ok=%v err=%v)", key(i), v, ok, err)
		}
	}
	res.RecoveryEntries = entries
	res.RecoveryWALBytes = walBytes
	res.RecoveryMillis = float64(elapsed) / float64(time.Millisecond)
	return nil
}
