package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/lsm"
	"crdbserverless/internal/metric"
	"crdbserverless/internal/raftlite"
	"crdbserverless/internal/randutil"
	"crdbserverless/internal/timeutil"
)

// KVBenchResult holds the KV hot-path headline numbers; cmd/repro marshals
// it to BENCH_kv.json so the perf trajectory is tracked across PRs.
type KVBenchResult struct {
	// DistSender fan-out: one BatchRequests-sized Get batch spread evenly
	// across Ranges ranges, dispatched sequentially vs in parallel.
	BatchRequests    int     `json:"batch_requests"`
	Ranges           int     `json:"ranges"`
	SequentialMillis float64 `json:"sequential_batch_ms"`
	ParallelMillis   float64 `json:"parallel_batch_ms"`
	FanoutSpeedup    float64 `json:"fanout_speedup"`

	// LSM read path: point reads against a 10-file L0 backlog, with the
	// bloom filters + level-bound seek vs the probe-every-table baseline.
	PointReads              int     `json:"point_reads"`
	BaselineTablesProbed    int64   `json:"baseline_tables_probed"`
	AcceleratedTablesProbed int64   `json:"accelerated_tables_probed"`
	ProbeReduction          float64 `json:"probe_reduction"`
	BloomFiltered           int64   `json:"bloom_filtered"`

	// Raft write path: concurrent proposers against one replication group
	// with a fixed per-commit-round overhead, one round per proposal
	// (DisableGroupCommit) vs the group-commit sequencer.
	GroupProposers       int     `json:"group_proposers"`
	GroupProposals       int     `json:"group_proposals"`
	BaselineCommitMillis float64 `json:"baseline_commit_ms"`
	GroupedCommitMillis  float64 `json:"grouped_commit_ms"`
	GroupCommitSpeedup   float64 `json:"group_commit_speedup"`
	GroupMeanBatch       float64 `json:"group_mean_batch"`

	// LSM write path: point-read latency while a compaction merge is running,
	// merge-under-lock (DisableWritePipelining) vs the out-of-lock pipeline.
	CompactionReads            int     `json:"compaction_reads"`
	BaselineReadP99Micros      float64 `json:"baseline_compaction_read_p99_us"`
	PipelinedReadP99Micros     float64 `json:"pipelined_compaction_read_p99_us"`
	CompactionReadP99Reduction float64 `json:"compaction_read_p99_reduction"`

	// Zipfian read path: a seeded Zipf(theta=0.99) 90/10 read/write mix over
	// 2 KiB values — inline values with no caches vs value separation with
	// the block and hot-key caches.
	ZipfKeys                 int     `json:"zipf_keys"`
	ZipfOps                  int     `json:"zipf_ops"`
	BaselineZipfP50Micros    float64 `json:"baseline_zipf_read_p50_us"`
	BaselineZipfP99Micros    float64 `json:"baseline_zipf_read_p99_us"`
	AcceleratedZipfP50Micros float64 `json:"accelerated_zipf_read_p50_us"`
	AcceleratedZipfP99Micros float64 `json:"accelerated_zipf_read_p99_us"`
	ZipfP99Speedup           float64 `json:"zipf_read_p99_speedup"`
	BlockCacheHitRatio       float64 `json:"block_cache_hit_ratio"`
	HotCacheHitRatio         float64 `json:"hot_cache_hit_ratio"`

	// Value-log GC: bytes of dead values created by a full overwrite pass,
	// and the fraction reclaimed once compaction reports the discards.
	VlogDeadBytes       int64   `json:"vlog_dead_bytes"`
	VlogReclaimedBytes  int64   `json:"vlog_reclaimed_bytes"`
	VlogReclaimFraction float64 `json:"vlog_reclaim_fraction"`

	// Crash recovery: a durable engine is killed mid-stream and reopened;
	// RecoveryMillis is the wall time of lsm.Open — manifest load, sstable and
	// vlog re-open, and WAL replay of the unflushed suffix.
	RecoveryEntries  int     `json:"recovery_entries"`
	RecoveryWALBytes int64   `json:"recovery_wal_bytes"`
	RecoveryMillis   float64 `json:"recovery_ms"`

	// Fleet-scale range management: a 2k-range / 5-node cluster under a
	// heavy-tailed workload (the top 1% of tenants take 80% of the ops, with
	// the rank-1 tenant dominating), load management off vs on (load-based
	// splitting + QPS-weighted lease placement). The headline is the p99 of
	// ops on the hot tenants; the idle-tick numbers gate the O(changed)
	// maintenance claim on the same 2k-range cluster after the load drains.
	FleetNodes              int     `json:"fleet_nodes"`
	FleetRanges             int     `json:"fleet_ranges"`
	FleetHotTenants         int     `json:"fleet_hot_tenants"`
	FleetMeasuredOps        int     `json:"fleet_measured_ops"`
	BaselineFleetHotP99us   float64 `json:"baseline_fleet_hot_p99_us"`
	ManagedFleetHotP99us    float64 `json:"managed_fleet_hot_p99_us"`
	FleetHotP99Speedup      float64 `json:"fleet_hot_p99_speedup"`
	FleetLoadSplits         int64   `json:"fleet_load_splits"`
	FleetLoadLeaseTransfers int64   `json:"fleet_load_lease_transfers"`
	FleetLoadReplicaMoves   int64   `json:"fleet_load_replica_moves"`
	FleetIdleTickMicros     float64 `json:"fleet_idle_tick_us"`
	FleetIdleTickVisited    int     `json:"fleet_idle_tick_ranges_visited"`
}

// KVBenchOptions size the KV micro-benchmark. Zero values mean the
// acceptance-criteria shape: a 64-request batch across 8 ranges.
type KVBenchOptions struct {
	BatchRequests int
	Ranges        int
}

// KVBench measures the two KV hot paths this repo accelerates: multi-range
// batch dispatch (DistSender fan-out) and LSM point reads (bloom filters and
// the L1+ level-bound seek). The fan-out half runs on the real clock with
// per-batch executor costs of a few milliseconds, so the measured ratio
// reflects dispatch overlap rather than Go scheduling noise.
func KVBench(opts KVBenchOptions) (*KVBenchResult, *Table, error) {
	if opts.BatchRequests <= 0 {
		opts.BatchRequests = 64
	}
	if opts.Ranges <= 0 {
		opts.Ranges = 8
	}
	res := &KVBenchResult{BatchRequests: opts.BatchRequests, Ranges: opts.Ranges}
	if err := benchFanout(opts, res); err != nil {
		return nil, nil, err
	}
	if err := benchLSMReads(res); err != nil {
		return nil, nil, err
	}
	if err := benchGroupCommit(res); err != nil {
		return nil, nil, err
	}
	if err := benchCompactionReads(res); err != nil {
		return nil, nil, err
	}
	if err := benchZipfianReads(res); err != nil {
		return nil, nil, err
	}
	if err := benchVlogReclaim(res); err != nil {
		return nil, nil, err
	}
	if err := benchRecovery(res); err != nil {
		return nil, nil, err
	}
	if err := benchFleet(res); err != nil {
		return nil, nil, err
	}
	table := &Table{
		Title:   "KV hot path: fan-out, read acceleration, and write-path pipelining",
		Columns: []string{"measure", "value"},
		Rows: [][]string{
			{fmt.Sprintf("%d-request batch across %d ranges, sequential", res.BatchRequests, res.Ranges),
				fmt.Sprintf("%.1f ms", res.SequentialMillis)},
			{fmt.Sprintf("%d-request batch across %d ranges, parallel", res.BatchRequests, res.Ranges),
				fmt.Sprintf("%.1f ms", res.ParallelMillis)},
			{"fan-out speedup", fmt.Sprintf("%.1fx", res.FanoutSpeedup)},
			{fmt.Sprintf("sstables probed for %d point reads, baseline", res.PointReads),
				fmt.Sprintf("%d", res.BaselineTablesProbed)},
			{fmt.Sprintf("sstables probed for %d point reads, accelerated", res.PointReads),
				fmt.Sprintf("%d", res.AcceleratedTablesProbed)},
			{"probe reduction", fmt.Sprintf("%.1fx", res.ProbeReduction)},
			{"probes skipped by bloom filters", fmt.Sprintf("%d", res.BloomFiltered)},
			{fmt.Sprintf("%d proposals from %d proposers, one round each", res.GroupProposals, res.GroupProposers),
				fmt.Sprintf("%.1f ms", res.BaselineCommitMillis)},
			{fmt.Sprintf("%d proposals from %d proposers, group commit", res.GroupProposals, res.GroupProposers),
				fmt.Sprintf("%.1f ms (mean batch %.1f)", res.GroupedCommitMillis, res.GroupMeanBatch)},
			{"group-commit speedup", fmt.Sprintf("%.1fx", res.GroupCommitSpeedup)},
			{fmt.Sprintf("read p99 during compaction, merge under lock (%d reads)", res.CompactionReads),
				fmt.Sprintf("%.0f µs", res.BaselineReadP99Micros)},
			{"read p99 during compaction, out-of-lock merge",
				fmt.Sprintf("%.0f µs", res.PipelinedReadP99Micros)},
			{"compaction read-p99 reduction", fmt.Sprintf("%.1fx", res.CompactionReadP99Reduction)},
			{fmt.Sprintf("zipfian read p50/p99 over %d keys, inline no-cache", res.ZipfKeys),
				fmt.Sprintf("%.1f / %.1f µs", res.BaselineZipfP50Micros, res.BaselineZipfP99Micros)},
			{"zipfian read p50/p99, separated + cached",
				fmt.Sprintf("%.1f / %.1f µs", res.AcceleratedZipfP50Micros, res.AcceleratedZipfP99Micros)},
			{"zipfian read-p99 speedup", fmt.Sprintf("%.1fx", res.ZipfP99Speedup)},
			{"block / hot-key cache hit ratio",
				fmt.Sprintf("%.2f / %.2f", res.BlockCacheHitRatio, res.HotCacheHitRatio)},
			{fmt.Sprintf("vlog GC reclaimed of %d dead bytes", res.VlogDeadBytes),
				fmt.Sprintf("%d (%.2f)", res.VlogReclaimedBytes, res.VlogReclaimFraction)},
			{fmt.Sprintf("crash recovery of %d entries (%d WAL bytes)", res.RecoveryEntries, res.RecoveryWALBytes),
				fmt.Sprintf("%.1f ms", res.RecoveryMillis)},
			{fmt.Sprintf("fleet hot-tenant p99 (%d ranges, %d nodes), load mgmt off", res.FleetRanges, res.FleetNodes),
				fmt.Sprintf("%.0f µs", res.BaselineFleetHotP99us)},
			{fmt.Sprintf("fleet hot-tenant p99, load mgmt on (%d splits, %d lease moves, %d replica moves)",
				res.FleetLoadSplits, res.FleetLoadLeaseTransfers, res.FleetLoadReplicaMoves),
				fmt.Sprintf("%.0f µs", res.ManagedFleetHotP99us)},
			{"fleet hot-range p99 speedup", fmt.Sprintf("%.1fx", res.FleetHotP99Speedup)},
			{fmt.Sprintf("idle maintenance tick on %d ranges (%d visited)", res.FleetRanges, res.FleetIdleTickVisited),
				fmt.Sprintf("%.1f µs", res.FleetIdleTickMicros)},
		},
	}
	return res, table, nil
}

func benchFanout(opts KVBenchOptions, res *KVBenchResult) error {
	clock := timeutil.NewRealClock()
	costs := kvserver.CostConfig{
		ReadBatchOverhead:  2 * time.Millisecond,
		WriteBatchOverhead: time.Nanosecond,
		ReadRequestCost:    time.Microsecond,
		WriteRequestCost:   time.Nanosecond,
	}
	var nodes []*kvserver.Node
	for i := 1; i <= 4; i++ {
		nodes = append(nodes, kvserver.NewNode(kvserver.NodeConfig{
			ID:    kvserver.NodeID(i),
			VCPUs: 8,
			Clock: clock,
			Cost:  costs,
		}))
	}
	cluster, err := kvserver.NewCluster(kvserver.ClusterConfig{Clock: clock}, nodes)
	if err != nil {
		return err
	}
	defer cluster.Close()

	ctx := context.Background()
	key := func(i int) keys.Key {
		return append(keys.MakeTenantPrefix(2), []byte(fmt.Sprintf("k%04d", i))...)
	}
	loader := kvserver.NewDistSender(cluster, kvserver.Identity{Tenant: 2})
	for i := 0; i < opts.BatchRequests; i++ {
		if _, err := loader.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
			{Method: kvpb.Put, Key: key(i), Value: []byte("v")}}}); err != nil {
			return err
		}
	}
	per := opts.BatchRequests / opts.Ranges
	for r := 1; r < opts.Ranges; r++ {
		if err := cluster.SplitAt(key(r * per)); err != nil {
			return err
		}
	}
	ba := &kvpb.BatchRequest{Tenant: 2}
	for i := 0; i < opts.BatchRequests; i++ {
		ba.Requests = append(ba.Requests, kvpb.Request{Method: kvpb.Get, Key: key(i)})
	}

	// Best of three sends per mode, after one warm-up to fill the
	// descriptor cache, so a stray scheduling hiccup doesn't skew a ratio
	// built from single-digit-millisecond measurements.
	measure := func(parallelism int) (time.Duration, error) {
		ds := kvserver.NewDistSender(cluster, kvserver.Identity{Tenant: 2},
			kvserver.Config{Parallelism: parallelism})
		if _, err := ds.Send(ctx, ba); err != nil {
			return 0, err
		}
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := clock.Now()
			if _, err := ds.Send(ctx, ba); err != nil {
				return 0, err
			}
			if d := clock.Since(start); d < best {
				best = d
			}
		}
		return best, nil
	}
	seq, err := measure(1)
	if err != nil {
		return err
	}
	par, err := measure(kvserver.DefaultParallelism)
	if err != nil {
		return err
	}
	res.SequentialMillis = float64(seq) / float64(time.Millisecond)
	res.ParallelMillis = float64(par) / float64(time.Millisecond)
	if par > 0 {
		res.FanoutSpeedup = float64(seq) / float64(par)
	}
	return nil
}

func benchLSMReads(res *KVBenchResult) error {
	// A 10-file L0 backlog of 32 keys each, built twice over identical
	// data: once accelerated, once probe-every-table.
	build := func(disableAccel bool) (*lsm.Engine, error) {
		e := lsm.New(lsm.Options{
			DisableAutoCompactions:  true,
			DisableReadAcceleration: disableAccel,
		})
		for f := 0; f < 10; f++ {
			var entries []lsm.Entry
			for k := 0; k < 32; k++ {
				entries = append(entries, lsm.Entry{
					Key:   []byte(fmt.Sprintf("l0-%02d-%03d", f, k)),
					Value: []byte("v"),
				})
			}
			if err := e.ApplyBatch(entries); err != nil {
				e.Close()
				return nil, err
			}
			if err := e.Flush(); err != nil {
				e.Close()
				return nil, err
			}
		}
		return e, nil
	}
	var reads [][]byte
	for f := 0; f < 10; f++ {
		for k := 0; k < 32; k++ {
			reads = append(reads, []byte(fmt.Sprintf("l0-%02d-%03d", f, k)))
			reads = append(reads, []byte(fmt.Sprintf("zz-%02d-%03d", f, k)))
		}
	}
	res.PointReads = len(reads)
	for _, disableAccel := range []bool{false, true} {
		e, err := build(disableAccel)
		if err != nil {
			return err
		}
		for _, key := range reads {
			_, ok, err := e.Get(key)
			if err != nil {
				e.Close()
				return err
			}
			if want := key[0] == 'l'; ok != want {
				e.Close()
				return fmt.Errorf("kvbench: Get(%q) found=%v, want %v", key, ok, want)
			}
		}
		m := e.Metrics()
		if disableAccel {
			res.BaselineTablesProbed = m.TablesProbed
		} else {
			res.AcceleratedTablesProbed = m.TablesProbed
			res.BloomFiltered = m.BloomFiltered
		}
		e.Close()
	}
	if res.AcceleratedTablesProbed > 0 {
		res.ProbeReduction = float64(res.BaselineTablesProbed) / float64(res.AcceleratedTablesProbed)
	}
	return nil
}

// noopSM is a StateMachine that discards commands; the group-commit bench
// measures commit-round amortization, not apply cost.
type noopSM struct{}

func (noopSM) Apply(uint64, []byte) error { return nil }

// benchGroupCommit measures Propose throughput with concurrent proposers
// against a 3-replica group whose commit rounds carry a fixed overhead
// (quorum round-trip + log sync). Baseline is one round per proposal
// (DisableGroupCommit); group commit amortizes the overhead over the batch.
func benchGroupCommit(res *KVBenchResult) error {
	const proposers, perProposer = 8, 40
	const overhead = 250 * time.Microsecond
	res.GroupProposers = proposers
	res.GroupProposals = proposers * perProposer

	run := func(disable bool) (time.Duration, *raftlite.CommitMetrics, error) {
		clock := timeutil.NewRealClock()
		cm := raftlite.NewCommitMetrics(metric.NewRegistry())
		g, err := raftlite.NewGroup(raftlite.Config{
			RangeID:            1,
			Clock:              clock,
			LeaseDuration:      time.Hour,
			DisableGroupCommit: disable,
			CommitOverhead:     overhead,
			CommitMetrics:      cm,
		}, []raftlite.NodeID{1, 2, 3}, []raftlite.StateMachine{noopSM{}, noopSM{}, noopSM{}})
		if err != nil {
			return 0, nil, err
		}
		if err := g.AcquireLease(1); err != nil {
			return 0, nil, err
		}
		errCh := make(chan error, proposers)
		var wg sync.WaitGroup
		start := clock.Now()
		for w := 0; w < proposers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				payload := []byte(fmt.Sprintf("p%d", w))
				for i := 0; i < perProposer; i++ {
					if err := g.Propose(1, payload); err != nil {
						errCh <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := clock.Since(start)
		close(errCh)
		for err := range errCh {
			return 0, nil, err
		}
		return elapsed, cm, nil
	}

	base, _, err := run(true)
	if err != nil {
		return err
	}
	grouped, cm, err := run(false)
	if err != nil {
		return err
	}
	res.BaselineCommitMillis = float64(base) / float64(time.Millisecond)
	res.GroupedCommitMillis = float64(grouped) / float64(time.Millisecond)
	if grouped > 0 {
		res.GroupCommitSpeedup = float64(base) / float64(grouped)
	}
	if b := cm.Batches.Value(); b > 0 {
		res.GroupMeanBatch = float64(cm.Entries.Value()) / float64(b)
	}
	return nil
}

// benchCompactionReads measures paced point-read latency while a churn
// goroutine keeps heavyweight compactions running over a pre-built corpus:
// with merges inside the engine lock (DisableWritePipelining) a read landing
// mid-merge stalls for the merge's remainder, while the out-of-lock pipeline
// keeps the tail flat. Reads are paced (not back-to-back) so the latency
// distribution samples wall time rather than read count — a 50ms stall in a
// stream of microsecond reads would otherwise hide beyond the 99th
// percentile.
func benchCompactionReads(res *KVBenchResult) error {
	const seedTables, perTable = 8, 20000
	const reads = 300
	// The paced reader needs a P of its own to wake from its sleep while the
	// churn goroutine is mid-merge; on a single-P runtime its wake-up waits
	// out the Go preemption quantum (~10ms) in BOTH modes, burying the very
	// lock-hold difference this bench measures under scheduler latency.
	if old := runtime.GOMAXPROCS(0); old < 2 {
		runtime.GOMAXPROCS(2)
		defer runtime.GOMAXPROCS(old)
	}
	clock := timeutil.NewRealClock()
	key := func(t, k int) []byte { return []byte(fmt.Sprintf("c%02d-%06d", t, k)) }
	buildTable := func(t, gen int) []lsm.Entry {
		entries := make([]lsm.Entry, 0, perTable)
		val := []byte(fmt.Sprintf("%032d", gen))
		for k := 0; k < perTable; k++ {
			entries = append(entries, lsm.Entry{Key: key(t, k), Value: val})
		}
		return entries
	}

	run := func(disable bool) (time.Duration, error) {
		e := lsm.New(lsm.Options{
			DisableAutoCompactions: true,
			DisableWritePipelining: disable,
		})
		defer e.Close()
		// Seed corpus, compacted to the bottom so every churn merge has to
		// rewrite it (large merges = long under-lock windows in the baseline).
		for t := 0; t < seedTables; t++ {
			if err := e.ApplyBatch(buildTable(t, 0)); err != nil {
				return 0, err
			}
			if err := e.Flush(); err != nil {
				return 0, err
			}
		}
		e.Compact()

		stop := make(chan struct{})
		churnDone := make(chan error, 1)
		go func() {
			// Churn: overwrite one seed table per round and force a full
			// compaction, keeping a merge in flight for most of the bench.
			for gen := 1; ; gen++ {
				select {
				case <-stop:
					churnDone <- nil
					return
				default:
				}
				if err := e.ApplyBatch(buildTable(gen%seedTables, gen)); err != nil {
					churnDone <- err
					return
				}
				if err := e.Flush(); err != nil {
					churnDone <- err
					return
				}
				e.Compact()
			}
		}()

		rng := randutil.NewRand(1)
		lat := make([]time.Duration, 0, reads)
		var readErr error
		for i := 0; i < reads; i++ {
			clock.Sleep(2 * time.Millisecond)
			k := key(rng.Intn(seedTables), rng.Intn(perTable))
			start := clock.Now()
			_, ok, err := e.Get(k)
			d := clock.Since(start)
			if err != nil {
				readErr = err
				break
			}
			if !ok {
				readErr = fmt.Errorf("kvbench: key %q missing during compaction", k)
				break
			}
			lat = append(lat, d)
		}
		close(stop)
		if err := <-churnDone; err != nil {
			return 0, err
		}
		if readErr != nil {
			return 0, readErr
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)*99/100], nil
	}

	base, err := run(true)
	if err != nil {
		return err
	}
	piped, err := run(false)
	if err != nil {
		return err
	}
	res.CompactionReads = 2 * reads
	res.BaselineReadP99Micros = float64(base) / float64(time.Microsecond)
	res.PipelinedReadP99Micros = float64(piped) / float64(time.Microsecond)
	if piped > 0 {
		res.CompactionReadP99Reduction = float64(base) / float64(piped)
	}
	return nil
}

// benchZipfianReads measures point-read latency under a seeded Zipfian
// (theta=0.99) 90/10 read/write mix over 4 KiB values, with both engines on
// the same memtable byte budget. The baseline stores values inline with no
// caches: every handful of writes rotates a value-laden memtable into a
// deepening L0 backlog (compaction debt under sustained load), so tail
// reads walk hundreds of bloom filters and decode full-value blocks. The
// accelerated config separates values into the log and enables both caches:
// the same write stream fits ~50x more 12-byte-pointer entries per memtable
// so L0 stays shallow, the skewed read mass is absorbed by the hot-key
// cache, and cold reads hit cached pointer blocks.
func benchZipfianReads(res *KVBenchResult) error {
	const zipfKeys = 2048
	const zipfOps = 30000
	const valLen = 4096
	res.ZipfKeys = zipfKeys
	res.ZipfOps = zipfOps
	clock := timeutil.NewRealClock()
	key := func(i uint64) []byte { return []byte(fmt.Sprintf("z%06d", i)) }
	value := func(gen int) []byte {
		v := make([]byte, valLen)
		copy(v, fmt.Sprintf("zipf-%08d-", gen))
		return v
	}

	run := func(accelerated bool) (p50, p99 time.Duration, m lsm.Metrics, err error) {
		opts := lsm.Options{
			DisableAutoCompactions: true,
			MemTableSize:           16 << 10,
		}
		if accelerated {
			opts.ValueThreshold = 512
			opts.BlockCacheBytes = 8 << 20
			opts.HotKeyCacheSize = 1024
		} else {
			opts.DisableValueSeparation = true
		}
		e := lsm.New(opts)
		defer e.Close()
		const chunk = 32
		for base := 0; base < zipfKeys; base += chunk {
			entries := make([]lsm.Entry, 0, chunk)
			for i := base; i < base+chunk; i++ {
				entries = append(entries, lsm.Entry{Key: key(uint64(i)), Value: value(0)})
			}
			if err := e.ApplyBatch(entries); err != nil {
				return 0, 0, m, err
			}
			if err := e.Flush(); err != nil {
				return 0, 0, m, err
			}
		}
		e.Compact() // the corpus starts fully compacted in both configs

		rng := randutil.NewRand(9)
		zipf := randutil.NewZipf(rng, zipfKeys, 0.99)
		lat := make([]time.Duration, 0, zipfOps)
		for op := 0; op < zipfOps; op++ {
			k := key(zipf.Next())
			if rng.Intn(10) == 0 {
				if err := e.Set(k, value(op)); err != nil {
					return 0, 0, m, err
				}
				continue
			}
			start := clock.Now()
			_, ok, err := e.Get(k)
			d := clock.Since(start)
			if err != nil {
				return 0, 0, m, err
			}
			if !ok {
				return 0, 0, m, fmt.Errorf("kvbench: zipf key %q missing", k)
			}
			lat = append(lat, d)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)/2], lat[len(lat)*99/100], e.Metrics(), nil
	}

	bp50, bp99, _, err := run(false)
	if err != nil {
		return err
	}
	ap50, ap99, am, err := run(true)
	if err != nil {
		return err
	}
	res.BaselineZipfP50Micros = float64(bp50) / float64(time.Microsecond)
	res.BaselineZipfP99Micros = float64(bp99) / float64(time.Microsecond)
	res.AcceleratedZipfP50Micros = float64(ap50) / float64(time.Microsecond)
	res.AcceleratedZipfP99Micros = float64(ap99) / float64(time.Microsecond)
	if ap99 > 0 {
		res.ZipfP99Speedup = float64(bp99) / float64(ap99)
	}
	if t := am.BlockCacheHits + am.BlockCacheMisses; t > 0 {
		res.BlockCacheHitRatio = float64(am.BlockCacheHits) / float64(t)
	}
	if t := am.HotCacheHits + am.HotCacheMisses; t > 0 {
		res.HotCacheHitRatio = float64(am.HotCacheHits) / float64(t)
	}
	return nil
}

// benchVlogReclaim overwrites every separated value once and measures how
// much of the dead value-log space the compaction-driven GC pass gives back.
func benchVlogReclaim(res *KVBenchResult) error {
	const keys, valLen = 256, 256
	e := lsm.New(lsm.Options{
		ValueThreshold:         64,
		VlogFileSize:           8 << 10,
		DisableAutoCompactions: true,
	})
	defer e.Close()
	write := func(gen int) error {
		for i := 0; i < keys; i++ {
			v := make([]byte, valLen)
			copy(v, fmt.Sprintf("g%d-%04d-", gen, i))
			if err := e.Set([]byte(fmt.Sprintf("r%04d", i)), v); err != nil {
				return err
			}
		}
		return e.Flush()
	}
	if err := write(1); err != nil {
		return err
	}
	if err := write(2); err != nil {
		return err
	}
	e.Compact() // drops the gen-1 versions, reports discards, runs GC

	m := e.Metrics()
	res.VlogDeadBytes = keys * valLen // every gen-1 value died
	res.VlogReclaimedBytes = m.VlogGCReclaimedBytes
	res.VlogReclaimFraction = float64(res.VlogReclaimedBytes) / float64(res.VlogDeadBytes)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("r%04d", i)
		if _, ok, err := e.Get([]byte(k)); err != nil || !ok {
			return fmt.Errorf("kvbench: key %s lost after vlog GC: ok=%v err=%v", k, ok, err)
		}
	}
	return nil
}

// benchFleet measures load-based range management at fleet scale: a 5-node
// cluster carved into 2000 single-tenant ranges under a heavy-tailed closed-
// loop workload — half of all ops hit the rank-1 tenant, 30% a Zipfian over
// the other 19 hot tenants (the top 1%), the rest spread over the cold tail.
// With management off, the rank-1 tenant's range is an indivisible unit: one
// leaseholder serves half the cluster's traffic and its executor queue sets
// the hot-op p99. With load-based splitting and QPS-weighted lease placement
// on, the hot range splits at its sampled load median and the pieces' leases
// spread across nodes, so the same offered load queues behind five executors
// instead of one. After the managed run the workload stops and the idle tick
// is timed on the full 2k-range cluster: the maintenance index leaves it
// nothing to visit, which is the O(changed) claim the gate enforces.
func benchFleet(res *KVBenchResult) error {
	// The bench measures sub-millisecond-resolution queueing tails; a GC
	// stop-the-world inside a measure window adds the same ~10ms to both
	// configurations and flattens the ratio. Space collections out for the
	// duration and collect explicitly between phases instead.
	defer debug.SetGCPercent(debug.SetGCPercent(1000))
	const (
		fleetNodes     = 5
		fleetRanges    = 2000
		hotTenants     = 20 // top 1% of fleetRanges
		hotKeys        = 128
		firstTenant    = 2
		workers        = 10
		measureOps     = 700 // per worker, measured, across all windows
		measureWindows = 14  // per-window p99, median across windows
	)
	res.FleetNodes = fleetNodes
	res.FleetRanges = fleetRanges
	res.FleetHotTenants = hotTenants
	clock := timeutil.NewRealClock()
	// The per-batch cost is deliberately coarse (as in benchFanout): 2ms of
	// executor occupancy dwarfs Go timer granularity, so the measured p99 is
	// queueing at the hot leaseholder rather than scheduler noise.
	costs := kvserver.CostConfig{
		ReadBatchOverhead:  2 * time.Millisecond,
		WriteBatchOverhead: time.Nanosecond,
		ReadRequestCost:    time.Microsecond,
		WriteRequestCost:   time.Nanosecond,
	}
	tenant := func(i int) keys.TenantID { return keys.TenantID(firstTenant + i) }
	hotKey := func(t keys.TenantID, k int) keys.Key {
		return append(keys.MakeTenantPrefix(t), []byte(fmt.Sprintf("h%04d", k))...)
	}

	var rangeMetrics *kvserver.RangeMetrics
	// warmOps is per worker, before latencies count. The managed run warms
	// longer: the split cascade and the cooled-down lease spread take a few
	// seconds of traffic to converge, and the bench measures the converged
	// placement, not the transition — the warm phase runs under the
	// maintenance ticker, then the ticker stops and the measured phase runs
	// against the frozen placement so no lease move or renewal can land a
	// retry storm inside the p99 window.
	run := func(managed bool, warmOps int) (p99 time.Duration, c *kvserver.Cluster, err error) {
		var nodes []*kvserver.Node
		for i := 1; i <= fleetNodes; i++ {
			nodes = append(nodes, kvserver.NewNode(kvserver.NodeConfig{
				ID:    kvserver.NodeID(i),
				VCPUs: 1,
				Clock: clock,
				Cost:  costs,
			}))
		}
		rangeMetrics = kvserver.NewRangeMetrics(metric.NewRegistry())
		cfg := kvserver.ClusterConfig{
			Clock:         clock,
			LeaseDuration: time.Hour, // keep renewals out of the idle-tick window
			RangeMetrics:  rangeMetrics,
		}
		if managed {
			// With 2ms batches a node serves ~500 ops/s. Split well below
			// that: per-node balance can never be finer than one piece, so
			// pieces must be small relative to a node's capacity for the
			// spread to bin-pack evenly.
			cfg.LoadSplitQPSThreshold = 20
			cfg.LoadHalfLife = time.Second
			cfg.LoadRebalancing = true
		}
		c, err = kvserver.NewCluster(cfg, nodes)
		if err != nil {
			return 0, nil, err
		}
		// One range per tenant: the fleet shape where every suspended tenant
		// keeps a (mostly idle) range resident.
		for i := 0; i < fleetRanges; i++ {
			if err := c.SplitAt(keys.MakeTenantPrefix(tenant(i))); err != nil {
				return 0, c, err
			}
		}
		c.Tick() // drain the 2k needs-lease entries before the clock starts

		ctx := context.Background()
		// traffic drives the closed-loop worker pool for ops batches per
		// worker and, when record is true, returns the hot-op latencies.
		traffic := func(ops, seedBase int, record bool) ([]time.Duration, error) {
			latCh := make(chan []time.Duration, workers)
			errCh := make(chan error, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					ds := kvserver.NewDistSender(c, kvserver.Identity{Tenant: 0})
					rng := randutil.NewRand(int64(seedBase + w))
					zipf := randutil.NewZipf(rng, hotTenants-1, 0.99)
					var lat []time.Duration
					for op := 0; op < ops; op++ {
						var t keys.TenantID
						hot := true
						switch p := rng.Intn(100); {
						case p < 50:
							t = tenant(0) // the scorching rank-1 tenant
						case p < 80:
							t = tenant(1 + int(zipf.Next()))
						default:
							t = tenant(hotTenants + rng.Intn(fleetRanges-hotTenants))
							hot = false
						}
						k := hotKey(t, rng.Intn(hotKeys))
						ba := &kvpb.BatchRequest{Tenant: t, Requests: []kvpb.Request{
							{Method: kvpb.Get, Key: k}}}
						start := clock.Now()
						if _, err := ds.Send(ctx, ba); err != nil {
							errCh <- err
							return
						}
						if record && hot {
							lat = append(lat, clock.Since(start))
						}
						// Think time between requests keeps the fleet below
						// saturation when the load is spread: a managed node
						// then shows its true small queue, while the baseline
						// hot leaseholder stays overcommitted and keeps its
						// convoy. Closed-loop-without-think saturates every
						// server and hides the improvement being measured.
						clock.Sleep(time.Duration(1+rng.Intn(3)) * time.Millisecond)
					}
					latCh <- lat
				}(w)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				return nil, err
			}
			close(latCh)
			var lat []time.Duration
			for l := range latCh {
				lat = append(lat, l...)
			}
			return lat, nil
		}

		// Warm/converge phase: the maintenance ticker runs alongside the
		// workload, driving the load-split cascade and the lease spread.
		stopTick := make(chan struct{})
		tickDone := make(chan struct{})
		go func() {
			defer close(tickDone)
			for {
				select {
				case <-stopTick:
					return
				default:
					c.Tick()
					clock.Sleep(10 * time.Millisecond)
				}
			}
		}()
		_, err = traffic(warmOps, 1000, false)
		close(stopTick)
		<-tickDone
		if err != nil {
			return 0, c, err
		}
		// Settle: short traffic bursts with maintenance ticks in between,
		// repeated until the hot-tenant load spread across nodes stops
		// improving (or a bounded number of rounds passes). The measured
		// phase wants the converged placement, not whichever intermediate
		// state the warm phase happened to end on.
		hotSpread := func() float64 {
			perNode := map[kvserver.NodeID]float64{}
			for _, ri := range c.RangeLoads() {
				tid, _, ok := keys.DecodeTenantPrefix(ri.Start)
				if ok && tid >= firstTenant && tid < keys.TenantID(firstTenant+hotTenants) {
					perNode[ri.Leaseholder] += ri.QPS
				}
			}
			lo, hi := -1.0, 0.0
			for i := 1; i <= fleetNodes; i++ {
				q := perNode[kvserver.NodeID(i)]
				if lo < 0 || q < lo {
					lo = q
				}
				if q > hi {
					hi = q
				}
			}
			if lo <= 0 {
				return hi
			}
			return hi / lo
		}
		if managed {
			for round := 0; round < 12 && hotSpread() > 1.2; round++ {
				if _, err := traffic(60, 3000+100*round, false); err != nil {
					return 0, c, err
				}
				for i := 0; i < 3; i++ {
					c.Tick()
					clock.Sleep(5 * time.Millisecond)
				}
			}
		}

		// Measured phase: range placement is frozen (no cluster maintenance)
		// but node ticks keep running — they drive admission-control slot
		// adaptation, which must track the workload here exactly as it does
		// under the full ticker.
		stopNodeTick := make(chan struct{})
		nodeTickDone := make(chan struct{})
		go func() {
			defer close(nodeTickDone)
			for {
				select {
				case <-stopNodeTick:
					return
				default:
					for _, n := range nodes {
						n.Tick()
					}
					clock.Sleep(10 * time.Millisecond)
				}
			}
		}()
		defer func() {
			close(stopNodeTick)
			<-nodeTickDone
		}()
		runtime.GC() // take the collection now, not inside the measure window
		// The measured phase runs as several independent windows and the run's
		// p99 is the MEDIAN of the per-window p99s. The guest is a shared
		// 1-vCPU box: multi-millisecond scheduler stalls land in both
		// configurations at random moments and would otherwise dominate both
		// tails equally, flattening the ratio the gate checks. A stall cluster
		// corrupts the window it lands in; the median window is stall-free.
		var windowP99s []time.Duration
		var lat []time.Duration
		totalOps := 0
		for win := 0; win < measureWindows; win++ {
			lat, err = traffic(measureOps/measureWindows, 5000+37*win, true)
			if err != nil {
				break
			}
			if len(lat) == 0 {
				continue
			}
			totalOps += len(lat)
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			windowP99s = append(windowP99s, lat[len(lat)*99/100])
		}
		if err != nil {
			return 0, c, err
		}
		if len(windowP99s) == 0 {
			return 0, c, fmt.Errorf("kvbench: fleet run recorded no hot-op latencies")
		}
		res.FleetMeasuredOps = totalOps
		sort.Slice(windowP99s, func(i, j int) bool { return windowP99s[i] < windowP99s[j] })
		return windowP99s[len(windowP99s)/2], c, nil
	}

	base, bc, err := run(false, 60)
	if bc != nil {
		bc.Close()
	}
	if err != nil {
		return err
	}
	managed, mc, err := run(true, 800)
	if mc != nil {
		defer mc.Close()
	}
	if err != nil {
		return err
	}
	res.BaselineFleetHotP99us = float64(base) / float64(time.Microsecond)
	res.ManagedFleetHotP99us = float64(managed) / float64(time.Microsecond)
	if managed > 0 {
		res.FleetHotP99Speedup = float64(base) / float64(managed)
	}
	res.FleetLoadSplits = rangeMetrics.LoadSplits.Value()
	res.FleetLoadLeaseTransfers = rangeMetrics.LeaseTransfersLoad.Value()
	res.FleetLoadReplicaMoves = rangeMetrics.ReplicaMovesLoad.Value()

	// Idle-tick cost on the managed cluster: one tick drains the last of the
	// workload's changed set, then every subsequent tick should find nothing
	// to visit on any of the ~2k ranges.
	mc.Tick()
	const idleTicks = 200
	start := clock.Now()
	for i := 0; i < idleTicks; i++ {
		mc.Tick()
	}
	elapsed := clock.Since(start)
	res.FleetIdleTickMicros = float64(elapsed) / float64(time.Microsecond) / idleTicks
	res.FleetIdleTickVisited = mc.LastTickStats().RangesVisited
	return nil
}

// benchRecovery kills a durable engine mid-stream (no torn tail, so the
// entire WAL replays) and measures the cold-open time: manifest load, sstable
// and value-log re-open, CRC verification, and WAL replay of everything
// written since the last flush. The store is sized so recovery covers both
// flushed state and a multi-segment WAL suffix.
func benchRecovery(res *KVBenchResult) error {
	const entries = 20000
	clock := timeutil.NewRealClock()
	opts := lsm.Options{
		Durable:         lsm.NewDir(),
		MemTableSize:    256 << 10,
		WALBytesPerSync: 4 << 10,
	}
	e := lsm.New(opts)
	key := func(i int) []byte { return []byte(fmt.Sprintf("rec%06d", i)) }
	const chunk = 50
	for base := 0; base < entries; base += chunk {
		batch := make([]lsm.Entry, 0, chunk)
		for i := base; i < base+chunk; i++ {
			batch = append(batch, lsm.Entry{Key: key(i), Value: []byte(fmt.Sprintf("val-%06d", i))})
		}
		if err := e.ApplyBatch(batch); err != nil {
			e.Close()
			return err
		}
	}
	walBytes := e.Metrics().WALBytes
	e.Close()
	opts.Durable.Crash(0) // clean kill: everything synced survives

	start := clock.Now()
	re, err := lsm.Open(opts)
	if err != nil {
		return err
	}
	elapsed := clock.Since(start)
	defer re.Close()
	for _, i := range []int{0, entries / 2, entries - 1} {
		v, ok, err := re.Get(key(i))
		if err != nil || !ok || string(v) != fmt.Sprintf("val-%06d", i) {
			return fmt.Errorf("kvbench: recovered key %q = %q (ok=%v err=%v)", key(i), v, ok, err)
		}
	}
	res.RecoveryEntries = entries
	res.RecoveryWALBytes = walBytes
	res.RecoveryMillis = float64(elapsed) / float64(time.Millisecond)
	return nil
}
