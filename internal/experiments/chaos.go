// Chaos runs a seeded workload against a cluster with every fault-injection
// site armed, then checks consistency invariants after quiescence. It is the
// experiment counterpart of the per-site regression tests: instead of one
// carefully staged failure, the whole failure surface fires at once, and the
// guarantees that must survive are checked globally.
//
// Determinism: the same seed produces a byte-identical fault schedule and
// operation trace. Everything that influences control flow is drawn from
// seeded RNGs (the workload RNG and the registry's per-site streams), the
// workload is single-threaded, the DistSender runs with Parallelism 1, and
// lease durations are set far beyond the run length so wall-clock time never
// decides an outcome. The trace records operations and results, never
// timestamps.

package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"crdbserverless/internal/faultinject"
	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/lsm"
	"crdbserverless/internal/mvcc"
	"crdbserverless/internal/randutil"
	"crdbserverless/internal/tenantcost"
	"crdbserverless/internal/timeutil"
	"crdbserverless/internal/txn"
)

// ChaosOptions configure a chaos run.
type ChaosOptions struct {
	// Seed drives the workload and the fault schedule. The same seed
	// reproduces the run exactly.
	Seed int64
	// Ops is the number of workload operations. Defaults to 5000.
	Ops int
	// Nodes is the KV cluster size. Defaults to 5.
	Nodes int
	// MergeStorm boosts the split and merge sites an order of magnitude so
	// the range directory churns in both directions at once while the rest
	// of the fault surface stays armed — the regression surface for the
	// split/merge/maintenance-index machinery.
	MergeStorm bool
}

// ChaosResult is the outcome of a chaos run.
type ChaosResult struct {
	Seed    int64
	Ops     int
	Commits int
	Aborts  int
	// Unavailable counts operations that errored through their whole retry
	// budget — availability loss, which chaos tolerates; consistency loss,
	// which it does not, lands in Violations.
	Unavailable int
	Splits      int
	// Merges counts chaos.merge fires that actually collapsed a range pair
	// (an ineligible pair — tenant boundary, mid-move replica mismatch — is
	// a skip, not a merge).
	Merges int
	Flaps  int
	// Crashes counts store.crash events: a node's store killed mid-storm
	// (losing its unsynced WAL tail), recovered from durable state, and
	// reconciled with its replication groups.
	Crashes int
	// RaftSnapshots counts replicas caught up via state snapshot — crashed
	// stores that fell behind the truncated raft log.
	RaftSnapshots int64
	TotalFires    int
	// Violations lists every invariant breach found after quiescence (and
	// any mid-run read that disagreed with the model). Empty means the run
	// was consistent.
	Violations []string
	// Schedule is the registry's fault log: one line per fire, in order.
	Schedule string
	// Trace is the harness's operation log: one line per workload op and
	// harness event, with outcomes but no timestamps.
	Trace string
	Table *Table
}

// chaosSiteConfigs is the full armed surface, in a fixed order for reporting.
var chaosSiteConfigs = []struct {
	name string
	cfg  faultinject.Site
}{
	{"dist.subbatch.err", faultinject.Site{Probability: 0.05, Retriable: true}},
	// Consulted only on META cache misses (splits, evictions), so a high
	// probability still means few fires — but they do happen.
	{"dist.desc.stale", faultinject.Site{Probability: 0.5}},
	{"raftlite.propose.err", faultinject.Site{Probability: 0.03, Retriable: true}},
	{"raftlite.propose.delay", faultinject.Site{Probability: 0.02, Delay: 20 * time.Microsecond}},
	{"raftlite.lease.expire", faultinject.Site{Probability: 0.01}},
	{"lsm.flush.error", faultinject.Site{Probability: 0.2}},
	{"lsm.compact.error", faultinject.Site{Probability: 0.2}},
	{"lsm.write.stall", faultinject.Site{Probability: 0.01, Delay: 50 * time.Microsecond}},
	// Value-log sites: a failed append degrades to inline storage (logically
	// transparent, so replicas with divergent fault streams still converge),
	// and a GC error aborts a rewrite round mid-file — invariant 1 (acked
	// writes readable) must hold through both.
	{"lsm.vlog.write.error", faultinject.Site{Probability: 0.05}},
	{"lsm.vlog.gc.error", faultinject.Site{Probability: 0.3}},
	{"txn.postsend", faultinject.Site{Probability: 0.01, Retriable: true}},
	// Harness-level events: liveness flaps (cordon a node for a stretch of
	// ops) and range splits, drawn from the same registry so they appear in
	// the schedule.
	{"chaos.flap", faultinject.Site{Probability: 0.02}},
	{"chaos.split", faultinject.Site{Probability: 0.005}},
	// Merge the range containing a workload key back into its left
	// neighbor. At the default rate merges trail splits, so the directory
	// still grows; the merge-storm profile inverts that.
	{"chaos.merge", faultinject.Site{Probability: 0.005}},
	// Kill a store mid-storm: cordon the node, tear its directory at the
	// fault-injected offset (unsynced WAL suffix lost), reopen from durable
	// state, and regress its replication groups to what storage retained.
	{"store.crash", faultinject.Site{Probability: 0.003}},
}

const chaosTenant = keys.TenantID(2)
const chaosKeyCount = 200

func chaosKeyName(i int) string { return fmt.Sprintf("key-%03d", i) }

func chaosKey(name string) keys.Key {
	return append(keys.MakeTenantPrefix(chaosTenant), []byte(name)...)
}

// chaosErrClass buckets an error for the trace: the class is deterministic
// across runs even when the error text is not.
func chaosErrClass(err error) string {
	switch {
	case faultinject.IsInjected(err):
		return "injected"
	case kvpb.IsRetriable(err):
		return "retriable"
	default:
		return "error"
	}
}

// Chaos runs the seeded chaos workload and invariant checks.
func Chaos(ctx context.Context, opts ChaosOptions) (*ChaosResult, error) {
	if opts.Ops == 0 {
		opts.Ops = 5000
	}
	if opts.Nodes == 0 {
		opts.Nodes = 5
	}
	clock := timeutil.NewRealClock()
	reg := faultinject.New(opts.Seed, clock)
	cheap := kvserver.CostConfig{ReadBatchOverhead: time.Nanosecond, WriteBatchOverhead: time.Nanosecond}
	var nodes []*kvserver.Node
	for i := 1; i <= opts.Nodes; i++ {
		nodes = append(nodes, kvserver.NewNode(kvserver.NodeConfig{
			ID:    kvserver.NodeID(i),
			VCPUs: 2,
			Clock: clock,
			Cost:  cheap,
			// A tiny memtable keeps flushes and compactions — and their
			// fault sites — on the hot path of a short run, and aggressive
			// value separation with tiny log segments plus both caches puts
			// the vlog GC and invalidation machinery in the storm's blast
			// radius too. Every store is durable with a grouped-sync WAL:
			// store.crash tears the unsynced suffix and recovers from the
			// rest, so crash recovery itself is inside the blast radius.
			LSM: lsm.Options{
				MemTableSize:    8 << 10,
				Faults:          reg,
				ValueThreshold:  4,
				VlogFileSize:    4 << 10,
				BlockCacheBytes: 32 << 10,
				HotKeyCacheSize: 64,
				Durable:         lsm.NewDir(),
				WALSegmentSize:  4 << 10,
				WALBytesPerSync: 512,
			},
		}))
	}
	cluster, err := kvserver.NewCluster(kvserver.ClusterConfig{
		Clock:  clock,
		Faults: reg,
		// Leases must outlive the run by a wide margin: natural expiration
		// would tie control flow to wall-clock speed. All lease churn comes
		// from injected expirations and liveness flaps.
		LeaseDuration: time.Hour,
		// A short raft log forces a crashed store that missed more than a
		// handful of commits to rejoin via state snapshot, not log replay.
		RaftLogRetention: 8,
	}, nodes)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	ds := kvserver.NewDistSender(cluster, kvserver.Identity{Tenant: chaosTenant},
		kvserver.Config{Parallelism: 1, Faults: reg})
	coord := txn.NewCoordinator(ds, cluster.Clock(), chaosTenant)
	coord.SetFaults(reg)
	buckets := tenantcost.NewBucketServer(clock)
	buckets.SetQuota(chaosTenant, 8)
	bucket := tenantcost.NewNodeBucket(buckets, clock, chaosTenant, 1)

	for _, s := range chaosSiteConfigs {
		cfg := s.cfg
		if opts.MergeStorm {
			switch s.name {
			case "chaos.split":
				cfg.Probability = 0.03
			case "chaos.merge":
				cfg.Probability = 0.05
			}
		}
		reg.Enable(s.name, cfg)
	}

	res := &ChaosResult{Seed: opts.Seed, Ops: opts.Ops}
	var tr strings.Builder
	model := make(map[string]string)
	rng := randutil.NewRand(opts.Seed)

	var cordoned kvserver.NodeID
	flapRemaining := 0
	nextFlap := 0
	var crashed kvserver.NodeID
	crashRemaining := 0
	nextCrash := 0

	for op := 0; op < opts.Ops; op++ {
		if op%16 == 0 {
			cluster.Tick()
		}
		// Harness events first, so their schedule position is op-aligned.
		// Flaps and crashes each cordon a node; at most one of each is in
		// flight, and they never overlap (two dead nodes could cost quorum).
		if reg.Should("chaos.flap") && cordoned == 0 && crashed == 0 {
			cordoned = kvserver.NodeID(nextFlap%opts.Nodes) + 1
			nextFlap++
			flapRemaining = 25
			if n, ok := cluster.Node(cordoned); ok {
				n.SetCordoned(true)
			}
			res.Flaps++
			fmt.Fprintf(&tr, "op=%d flap cordon node=%d\n", op, cordoned)
		} else if flapRemaining > 0 {
			if flapRemaining--; flapRemaining == 0 {
				if n, ok := cluster.Node(cordoned); ok {
					n.SetCordoned(false)
				}
				fmt.Fprintf(&tr, "op=%d flap uncordon node=%d\n", op, cordoned)
				cordoned = 0
			}
		}
		// A store crash kills the node's engine mid-storm: the directory
		// loses its unsynced suffix (up to tear bytes of torn WAL tail), the
		// engine reopens from durable state, and the replication groups
		// regress the replica to its durably applied indexes. The node stays
		// cordoned for a stretch so it genuinely falls behind — with the
		// short log retention, far enough to need a snapshot.
		if reg.Should("store.crash") && crashed == 0 && cordoned == 0 {
			crashed = kvserver.NodeID(nextCrash%opts.Nodes) + 1
			nextCrash++
			crashRemaining = 25
			tear := rng.Intn(64)
			if n, ok := cluster.Node(crashed); ok {
				n.SetCordoned(true)
				if err := n.Crash(tear); err != nil {
					res.Violations = append(res.Violations,
						fmt.Sprintf("op %d: store crash on node %d failed: %v", op, crashed, err))
				} else if err := cluster.RecoverNode(crashed); err != nil {
					res.Violations = append(res.Violations,
						fmt.Sprintf("op %d: recovering node %d failed: %v", op, crashed, err))
				}
			}
			res.Crashes++
			fmt.Fprintf(&tr, "op=%d crash node=%d tear=%d\n", op, crashed, tear)
		} else if crashRemaining > 0 {
			if crashRemaining--; crashRemaining == 0 {
				if n, ok := cluster.Node(crashed); ok {
					n.SetCordoned(false)
				}
				fmt.Fprintf(&tr, "op=%d crash rejoin node=%d\n", op, crashed)
				crashed = 0
			}
		}
		if reg.Should("chaos.split") {
			name := chaosKeyName(rng.Intn(chaosKeyCount))
			if err := cluster.SplitAt(chaosKey(name)); err == nil {
				res.Splits++
				fmt.Fprintf(&tr, "op=%d split at %s\n", op, name)
			}
		}
		if reg.Should("chaos.merge") {
			name := chaosKeyName(rng.Intn(chaosKeyCount))
			merged, err := cluster.MergeAt(chaosKey(name))
			switch {
			case err != nil:
				// No catch-up donor (every replica of the pair is down) is an
				// availability outcome, same class as an unavailable op.
				fmt.Fprintf(&tr, "op=%d merge at %s -> unavailable\n", op, name)
			case merged:
				res.Merges++
				fmt.Fprintf(&tr, "op=%d merge at %s -> merged\n", op, name)
			default:
				fmt.Fprintf(&tr, "op=%d merge at %s -> skipped\n", op, name)
			}
		}

		switch r := rng.Float64(); {
		case r < 0.55:
			chaosWrite(ctx, op, rng, coord, bucket, model, res, &tr)
		case r < 0.90:
			chaosRead(ctx, op, rng, coord, model, res, &tr)
		default:
			chaosScan(ctx, op, rng, coord, model, res, &tr)
		}
	}

	// Quiescence: heal everything, then check what must hold.
	if cordoned != 0 {
		if n, ok := cluster.Node(cordoned); ok {
			n.SetCordoned(false)
		}
	}
	if crashed != 0 {
		if n, ok := cluster.Node(crashed); ok {
			n.SetCordoned(false)
		}
	}
	for _, s := range chaosSiteConfigs {
		res.TotalFires += reg.Fires(s.name)
	}
	siteFires := make(map[string]int, len(chaosSiteConfigs))
	for _, s := range chaosSiteConfigs {
		siteFires[s.name] = reg.Fires(s.name)
	}
	reg.DisableAll()
	cluster.Tick()
	if err := cluster.CatchUpReplicas(); err != nil {
		res.Violations = append(res.Violations, fmt.Sprintf("catch-up failed: %v", err))
	}

	chaosCheckInvariants(ctx, cluster, coord, buckets, bucket, model, res)

	res.RaftSnapshots = cluster.RaftSnapshots()
	res.Schedule = reg.Schedule()
	res.Trace = tr.String()
	res.Table = chaosTable(res, siteFires)
	return res, nil
}

// chaosWrite runs one write transaction of 1-4 mutations, updating the model
// only when the commit was acked.
func chaosWrite(ctx context.Context, op int, rng interface {
	Intn(int) int
	Float64() float64
}, coord *txn.Coordinator, bucket *tenantcost.NodeBucket,
	model map[string]string, res *ChaosResult, tr *strings.Builder) {
	type mut struct {
		del, rangeDel bool
		key, endKey   string
		val           string
	}
	nm := 1 + rng.Intn(4)
	muts := make([]mut, 0, nm)
	for i := 0; i < nm; i++ {
		p := rng.Float64()
		ki := rng.Intn(chaosKeyCount)
		switch {
		case p < 0.80:
			muts = append(muts, mut{key: chaosKeyName(ki), val: fmt.Sprintf("v%d.%d", op, i)})
		case p < 0.95:
			muts = append(muts, mut{del: true, key: chaosKeyName(ki)})
		default:
			muts = append(muts, mut{rangeDel: true, key: chaosKeyName(ki), endKey: chaosKeyName(ki + 3)})
		}
	}
	err := coord.RunTxn(ctx, func(ctx context.Context, tx *txn.Txn) error {
		for _, m := range muts {
			switch {
			case m.rangeDel:
				if _, err := tx.Send(ctx, kvpb.Request{
					Method: kvpb.DeleteRange, Key: chaosKey(m.key), EndKey: chaosKey(m.endKey),
				}); err != nil {
					return err
				}
			case m.del:
				if err := tx.Delete(ctx, chaosKey(m.key)); err != nil {
					return err
				}
			default:
				if err := tx.Put(ctx, chaosKey(m.key), []byte(m.val)); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		res.Aborts++
		res.Unavailable++
		fmt.Fprintf(tr, "op=%d write n=%d -> abort class=%s\n", op, len(muts), chaosErrClass(err))
		return
	}
	res.Commits++
	for _, m := range muts {
		switch {
		case m.rangeDel:
			for name := range model {
				if m.key <= name && name < m.endKey {
					delete(model, name)
				}
			}
		case m.del:
			delete(model, m.key)
		default:
			model[m.key] = m.val
		}
	}
	// Meter the committed work; the invariant check asserts the counters
	// never go negative.
	bucket.Consume(float64(len(muts)))
	fmt.Fprintf(tr, "op=%d write n=%d -> commit\n", op, len(muts))
}

// chaosRead point-reads one key and compares against the model.
func chaosRead(ctx context.Context, op int, rng interface{ Intn(int) int },
	coord *txn.Coordinator, model map[string]string, res *ChaosResult, tr *strings.Builder) {
	name := chaosKeyName(rng.Intn(chaosKeyCount))
	var got string
	var found bool
	err := coord.RunTxn(ctx, func(ctx context.Context, tx *txn.Txn) error {
		v, ok, err := tx.Get(ctx, chaosKey(name))
		if err != nil {
			return err
		}
		got, found = string(v), ok
		return nil
	})
	if err != nil {
		res.Unavailable++
		fmt.Fprintf(tr, "op=%d read %s -> unavailable class=%s\n", op, name, chaosErrClass(err))
		return
	}
	want, wantOK := model[name]
	if found != wantOK || (found && got != want) {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"op %d: read %s = %q (exists=%v), model says %q (exists=%v)",
			op, name, got, found, want, wantOK))
	}
	fmt.Fprintf(tr, "op=%d read %s -> ok\n", op, name)
}

// chaosScan scans a subrange and compares every row against the model.
func chaosScan(ctx context.Context, op int, rng interface{ Intn(int) int },
	coord *txn.Coordinator, model map[string]string, res *ChaosResult, tr *strings.Builder) {
	lo := rng.Intn(chaosKeyCount)
	hi := lo + 1 + rng.Intn(20)
	span := keys.Span{Key: chaosKey(chaosKeyName(lo)), EndKey: chaosKey(chaosKeyName(hi))}
	var rows []kvpb.KeyValue
	err := coord.RunTxn(ctx, func(ctx context.Context, tx *txn.Txn) error {
		var err error
		rows, err = tx.Scan(ctx, span, 0)
		return err
	})
	if err != nil {
		res.Unavailable++
		fmt.Fprintf(tr, "op=%d scan [%s,%s) -> unavailable class=%s\n",
			op, chaosKeyName(lo), chaosKeyName(hi), chaosErrClass(err))
		return
	}
	expect := modelRange(model, chaosKeyName(lo), chaosKeyName(hi))
	if len(rows) != len(expect) {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"op %d: scan [%s,%s) returned %d rows, model has %d",
			op, chaosKeyName(lo), chaosKeyName(hi), len(rows), len(expect)))
	} else {
		for i, kv := range rows {
			name := string(kv.Key[len(keys.MakeTenantPrefix(chaosTenant)):])
			if name != expect[i] || string(kv.Value) != model[expect[i]] {
				res.Violations = append(res.Violations, fmt.Sprintf(
					"op %d: scan row %d = %s=%q, model row %s=%q",
					op, i, name, kv.Value, expect[i], model[expect[i]]))
				break
			}
		}
	}
	fmt.Fprintf(tr, "op=%d scan [%s,%s) -> %d rows\n", op, chaosKeyName(lo), chaosKeyName(hi), len(rows))
}

// modelRange returns the model's keys in [lo, hi), sorted.
func modelRange(model map[string]string, lo, hi string) []string {
	var out []string
	for name := range model {
		if lo <= name && name < hi {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// chaosCheckInvariants runs the post-quiescence checks.
func chaosCheckInvariants(ctx context.Context, cluster *kvserver.Cluster,
	coord *txn.Coordinator, buckets *tenantcost.BucketServer,
	bucket *tenantcost.NodeBucket, model map[string]string, res *ChaosResult) {
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	// 1. Every acked committed write is readable with its exact value.
	for _, name := range modelRange(model, "", "\xff") {
		var got string
		var found bool
		err := coord.RunTxn(ctx, func(ctx context.Context, tx *txn.Txn) error {
			v, ok, err := tx.Get(ctx, chaosKey(name))
			if err != nil {
				return err
			}
			got, found = string(v), ok
			return nil
		})
		if err != nil {
			violate("final read %s failed: %v", name, err)
			continue
		}
		if !found || got != model[name] {
			violate("acked write lost: %s = %q (exists=%v), want %q", name, got, found, model[name])
		}
	}
	// 2. A full scan returns exactly the model: nothing unacked or aborted
	// is visible, nothing acked is missing.
	var rows []kvpb.KeyValue
	err := coord.RunTxn(ctx, func(ctx context.Context, tx *txn.Txn) error {
		var err error
		rows, err = tx.Scan(ctx, keys.MakeTenantSpan(chaosTenant), 0)
		return err
	})
	if err != nil {
		violate("final scan failed: %v", err)
	} else {
		expect := modelRange(model, "", "\xff")
		if len(rows) != len(expect) {
			violate("final scan has %d rows, model has %d", len(rows), len(expect))
		} else {
			prefix := len(keys.MakeTenantPrefix(chaosTenant))
			for i, kv := range rows {
				name := string(kv.Key[prefix:])
				if name != expect[i] || string(kv.Value) != model[expect[i]] {
					violate("final scan row %d = %s=%q, model row %s=%q",
						i, name, kv.Value, expect[i], model[expect[i]])
					break
				}
			}
		}
	}
	// 3. No orphaned intents anywhere, from any transaction.
	for _, n := range cluster.Nodes() {
		iks, err := mvcc.IntentKeys(n.Engine(), keys.MakeTenantSpan(chaosTenant), 0)
		if err != nil {
			violate("intent sweep on node %d failed: %v", n.ID(), err)
			continue
		}
		if len(iks) > 0 {
			violate("node %d holds %d orphaned intents (first: %s)", n.ID(), len(iks), iks[0])
		}
	}
	// 4. Replication converged: every replica applied up to its range's
	// commit index.
	for _, st := range cluster.ReplicaStatuses() {
		if st.Applied != st.Commit {
			violate("range %d replica on node %d applied=%d commit=%d",
				st.RangeID, st.Node, st.Applied, st.Commit)
		}
	}
	// 5. The range directory partitions the keyspace: spans are contiguous,
	// non-overlapping, and cover MinKey.Next() through MaxKey. Splits and
	// merges racing with crashes must never leave a gap (unroutable keys) or
	// an overlap (two ranges both authoritative for a key).
	descs := cluster.Descriptors()
	if len(descs) == 0 {
		violate("directory is empty")
	} else {
		if !descs[0].Span.Key.Equal(keys.MinKey.Next()) {
			violate("first range starts at %s, want %s", descs[0].Span.Key, keys.MinKey.Next())
		}
		if !descs[len(descs)-1].Span.EndKey.Equal(keys.MaxKey) {
			violate("last range ends at %s, want %s", descs[len(descs)-1].Span.EndKey, keys.MaxKey)
		}
		for i, d := range descs {
			if !d.Span.Key.Less(d.Span.EndKey) {
				violate("range %d span [%s,%s) is empty or inverted", d.RangeID, d.Span.Key, d.Span.EndKey)
			}
			if i > 0 && !descs[i-1].Span.EndKey.Equal(d.Span.Key) {
				violate("directory gap/overlap between [%s,%s) and [%s,%s)",
					descs[i-1].Span.Key, descs[i-1].Span.EndKey, d.Span.Key, d.Span.EndKey)
			}
		}
	}
	// 6. Tenant cost accounting never goes negative.
	if avail := buckets.Available(chaosTenant); avail < 0 {
		violate("tenant token bucket negative: %f", avail)
	}
	if c := bucket.Consumed(); c < 0 {
		violate("consumed tokens negative: %f", c)
	}
	if l := bucket.LocalTokens(); l < 0 {
		violate("local token buffer negative: %f", l)
	}
}

// chaosTable renders the run summary.
func chaosTable(res *ChaosResult, siteFires map[string]int) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Chaos (seed=%d, ops=%d)", res.Seed, res.Ops),
		Columns: []string{"metric", "value"},
	}
	add := func(k string, v any) { t.Rows = append(t.Rows, []string{k, fmt.Sprint(v)}) }
	add("commits", res.Commits)
	add("aborts", res.Aborts)
	add("unavailable ops", res.Unavailable)
	add("splits", res.Splits)
	add("merges", res.Merges)
	add("liveness flaps", res.Flaps)
	add("store crashes", res.Crashes)
	add("raft snapshots", res.RaftSnapshots)
	add("fault fires (total)", res.TotalFires)
	for _, s := range chaosSiteConfigs {
		add("  "+s.name, siteFires[s.name])
	}
	add("violations", len(res.Violations))
	return t
}
