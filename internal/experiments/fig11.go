package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"crdbserverless/internal/workload"
)

// Fig11Point is one held-out workload's estimated-vs-actual comparison.
type Fig11Point struct {
	Name string
	// EstimatedCPU is the Serverless cluster's estimate: measured SQL CPU
	// plus the modeled KV CPU (§5.2.1).
	EstimatedCPU time.Duration
	// ActualCPU is the measured CPU of the same workload on a Dedicated
	// (colocated) cluster.
	ActualCPU time.Duration
	Ratio     float64
}

// Fig11Result is the full accuracy evaluation.
type Fig11Result struct {
	Points []Fig11Point
	// Within20Frac is the fraction of workloads whose estimate lands within
	// ±20% of actual (paper: ~80%).
	Within20Frac float64
	// WorstOutlier names the largest-ratio workload (paper: a full-scan
	// aggregation, because the Serverless run genuinely burns extra CPU
	// marshaling rows across the process boundary).
	WorstOutlier string
}

// fig11Workload is one held-out workload specification.
type fig11Workload struct {
	name  string
	setup func(ctx context.Context, db workload.DB) error
	run   func(ctx context.Context, db workload.DB) error
	iters int
}

// fig11Workloads builds the 23 held-out workloads (none used to fit the
// model constants).
func fig11Workloads() []fig11Workload {
	var out []fig11Workload
	add := func(name string, iters int, setup, run func(ctx context.Context, db workload.DB) error) {
		out = append(out, fig11Workload{name: name, setup: setup, run: run, iters: iters})
	}

	// 1-3: TPC-C at two scales plus a read-mostly "TPC-E-like" mix.
	for _, wh := range []int{1, 2} {
		wh := wh
		var gen *workload.TPCC
		add(fmt.Sprintf("tpcc-%dwh", wh), 30,
			func(ctx context.Context, db workload.DB) error {
				gen = workload.NewTPCC(wh, int64(wh))
				return gen.Setup(ctx, db)
			},
			func(ctx context.Context, db workload.DB) error { return gen.RunMix(ctx, db) })
	}
	{
		var gen *workload.TPCC
		add("tpce-readmix", 40,
			func(ctx context.Context, db workload.DB) error {
				gen = workload.NewTPCC(2, 77)
				return gen.Setup(ctx, db)
			},
			func(ctx context.Context, db workload.DB) error { return gen.OrderStatus(ctx, db) })
	}

	// 4-6: TPC-H.
	for _, spec := range []struct {
		name string
		rows int
		q1   bool
	}{
		{"tpch-q1-small", 300, true},
		{"tpch-q1-large", 1200, true},
		{"tpch-q9", 600, false},
	} {
		spec := spec
		var gen *workload.TPCH
		add(spec.name, 4,
			func(ctx context.Context, db workload.DB) error {
				gen = workload.NewTPCH(spec.rows, 5)
				return gen.Setup(ctx, db)
			},
			func(ctx context.Context, db workload.DB) error {
				if spec.q1 {
					_, err := gen.Q1(ctx, db)
					return err
				}
				_, err := gen.Q9(ctx, db)
				return err
			})
	}

	// 7-12: YCSB A-F.
	for _, letter := range []byte{'A', 'B', 'C', 'D', 'E', 'F'} {
		letter := letter
		var gen *workload.YCSB
		add(fmt.Sprintf("ycsb-%c", letter), 60,
			func(ctx context.Context, db workload.DB) error {
				gen = workload.NewYCSB(120, letter, int64(letter))
				return gen.Setup(ctx, db)
			},
			func(ctx context.Context, db workload.DB) error { return gen.Run(ctx, db) })
	}

	// 13-17: KV mixes across read fractions.
	for _, rf := range []float64{0, 0.25, 0.5, 0.75, 0.95} {
		rf := rf
		var gen *workload.KV
		add(fmt.Sprintf("kv-read%02.0f", rf*100), 80,
			func(ctx context.Context, db workload.DB) error {
				gen = workload.NewKV(100, rf, 64, int64(rf*100))
				return gen.Setup(ctx, db)
			},
			func(ctx context.Context, db workload.DB) error { return gen.Run(ctx, db) })
	}

	// 18-19: bulk imports at two scales.
	for _, rows := range []int{200, 600} {
		rows := rows
		add(fmt.Sprintf("import-%d", rows), 1,
			func(ctx context.Context, db workload.DB) error { return nil },
			func(ctx context.Context, db workload.DB) error {
				return workload.NewImport(rows, int64(rows)).Run(ctx, db)
			})
	}

	// 20: wide writes (1 KiB values).
	{
		var gen *workload.KV
		add("kv-wide-writes", 50,
			func(ctx context.Context, db workload.DB) error {
				gen = workload.NewKV(50, 0.1, 1024, 21)
				return gen.Setup(ctx, db)
			},
			func(ctx context.Context, db workload.DB) error { return gen.Run(ctx, db) })
	}

	// 21: full-scan aggregation (the expected outlier).
	{
		var gen *workload.TPCH
		add("fullscan-agg", 6,
			func(ctx context.Context, db workload.DB) error {
				gen = workload.NewTPCH(1500, 22)
				return gen.Setup(ctx, db)
			},
			func(ctx context.Context, db workload.DB) error {
				_, err := db.Execute(ctx, "SELECT COUNT(*), SUM(l_price), AVG(l_quantity) FROM lineitem")
				return err
			})
	}

	// 22: plain full scans without aggregation.
	{
		var gen *workload.TPCH
		add("fullscan-rows", 4,
			func(ctx context.Context, db workload.DB) error {
				gen = workload.NewTPCH(800, 23)
				return gen.Setup(ctx, db)
			},
			func(ctx context.Context, db workload.DB) error {
				_, err := db.Execute(ctx, "SELECT * FROM lineitem")
				return err
			})
	}

	// 23: secondary-index point lookups.
	{
		var gen *workload.TPCH
		i := 0
		add("index-lookups", 40,
			func(ctx context.Context, db workload.DB) error {
				gen = workload.NewTPCH(400, 24)
				return gen.Setup(ctx, db)
			},
			func(ctx context.Context, db workload.DB) error {
				i++
				_, err := db.Execute(ctx,
					fmt.Sprintf("SELECT l_key FROM lineitem WHERE l_partkey = %d", i%40+1))
				return err
			})
	}
	return out
}

// Fig11 reproduces §6.7: run each held-out workload on a Serverless cluster
// (recording its estimated CPU from the §5.2.1 model) and on a Dedicated
// cluster (recording actual measured CPU), then compare. Expected shape:
// ~80% of workloads within ±20%; the worst outlier is a full-scan
// aggregation whose Serverless run genuinely consumes extra CPU.
func Fig11() (*Fig11Result, *Table, error) {
	ctx := context.Background()
	res := &Fig11Result{}

	for _, spec := range fig11Workloads() {
		// Serverless run: estimated CPU.
		est, err := fig11Run(ctx, spec, false)
		if err != nil {
			return nil, nil, fmt.Errorf("%s (serverless): %w", spec.name, err)
		}
		// Dedicated run: actual CPU.
		act, err := fig11Run(ctx, spec, true)
		if err != nil {
			return nil, nil, fmt.Errorf("%s (dedicated): %w", spec.name, err)
		}
		p := Fig11Point{Name: spec.name, EstimatedCPU: est.estimated, ActualCPU: act.actual}
		if p.ActualCPU > 0 {
			p.Ratio = float64(p.EstimatedCPU) / float64(p.ActualCPU)
		}
		res.Points = append(res.Points, p)
	}

	within := 0
	worstDelta := 0.0
	for _, p := range res.Points {
		if p.Ratio >= 0.8 && p.Ratio <= 1.2 {
			within++
		}
		if d := math.Abs(p.Ratio - 1); d > worstDelta {
			worstDelta = d
			res.WorstOutlier = p.Name
		}
	}
	res.Within20Frac = float64(within) / float64(len(res.Points))

	sorted := append([]Fig11Point(nil), res.Points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Ratio > sorted[j].Ratio })
	table := &Table{
		Title:   "Fig 11: estimated Serverless CPU vs actual Dedicated CPU (§6.7)",
		Columns: []string{"workload", "estimated", "actual", "est/actual"},
	}
	for _, p := range sorted {
		table.Rows = append(table.Rows, []string{
			p.Name, fmtDur(p.EstimatedCPU), fmtDur(p.ActualCPU), fmt.Sprintf("%.2f", p.Ratio),
		})
	}
	table.Rows = append(table.Rows, []string{
		"summary",
		fmt.Sprintf("%.0f%% within ±20%%", res.Within20Frac*100),
		"worst outlier", res.WorstOutlier,
	})
	return res, table, nil
}

type fig11Measurement struct {
	estimated time.Duration
	actual    time.Duration
}

func fig11Run(ctx context.Context, spec fig11Workload, colocated bool) (fig11Measurement, error) {
	tb, err := newTestbed(testbedOptions{kvNodes: 3, vcpus: 8})
	if err != nil {
		return fig11Measurement{}, err
	}
	defer tb.close()
	h, err := tb.newTenant(ctx, spec.name, colocated, 0)
	if err != nil {
		return fig11Measurement{}, err
	}
	sess := h.session()
	if err := spec.setup(ctx, sess); err != nil {
		return fig11Measurement{}, err
	}

	estBefore := h.ecpuTokens()
	var kvBefore time.Duration
	for _, n := range tb.cluster.Nodes() {
		kvBefore += n.CPUBusy()
	}
	sqlBefore := h.exec.SQLCPUSeconds()

	for i := 0; i < spec.iters; i++ {
		if err := spec.run(ctx, sess); err != nil {
			return fig11Measurement{}, err
		}
	}

	var kvAfter time.Duration
	for _, n := range tb.cluster.Nodes() {
		kvAfter += n.CPUBusy()
	}
	return fig11Measurement{
		estimated: time.Duration((h.ecpuTokens() - estBefore) / 1000 * float64(time.Second)),
		actual: (kvAfter - kvBefore) +
			time.Duration((h.exec.SQLCPUSeconds()-sqlBefore)*float64(time.Second)),
	}, nil
}
