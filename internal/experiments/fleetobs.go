package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/metric"
	"crdbserverless/internal/randutil"
	"crdbserverless/internal/tenantcost"
	"crdbserverless/internal/tenantobs"
	"crdbserverless/internal/timeutil"
)

// The fleet-observability experiment: a heavy-tailed fleet of tenants runs
// against the tenant observability plane while the top 1% of tenants stage a
// load storm. The same fleet is replayed twice — once with per-tenant
// isolation (the aggressors' excess work hurts only themselves) and once on a
// modeled shared queue (everyone's latency inflates with total load) — and
// the plane's windowed p99s and SLO burn rates are compared: under isolation
// the victim's p99 stays put while the storming tenants' burn rate explodes;
// on the shared queue the victim's p99 and burn rate absorb the storm.
//
// Every run uses a manual clock and a single seeded RNG drawn in fixed tenant
// order, so the rendered /debug/tenantz, /debug/slo, and /debug/metrics pages
// are byte-identical across same-seed runs; the experiment replays the
// isolated run twice and byte-compares to certify that.

// FleetObsOptions size the fleet-observability experiment.
type FleetObsOptions struct {
	// Tenants is the fleet size (default 1000).
	Tenants int
	// CalmTicks and StormTicks are the number of 15-second ticks in each
	// phase (defaults 20 and 8: a 5-minute calm and a 2-minute storm).
	CalmTicks  int
	StormTicks int
	// MaxTenants caps the plane's distinct-tenant cardinality; the excess
	// is absorbed into __overflow__. Default: 3/4 of the fleet, so the
	// cardinality policy is always exercised.
	MaxTenants int
	Seed       int64
}

// FleetObsResult is the digest of the fleet-observability experiment.
type FleetObsResult struct {
	Tenants, Aggressors int
	CalmTicks           int
	StormTicks          int
	// Absorbed is how many distinct tenants the plane folded into the
	// __overflow__ pseudo-tenant under its cardinality cap.
	Absorbed int64

	VictimName, AggressorName string
	// Victim p99 over the calm window, and over the storm window under
	// each contention model.
	VictimP99Calm        time.Duration
	VictimP99StormIso    time.Duration
	VictimP99StormShared time.Duration
	// IsolationFactor is sharedStormP99 / isolatedStormP99.
	IsolationFactor float64
	// 5-minute SLO burn rates at the end of the storm.
	VictimBurnIso    float64
	AggressorBurnIso float64
	VictimBurnShared float64
	// DeterminismOK reports whether two same-seed isolated runs rendered
	// byte-identical tenantz/slo/metrics pages.
	DeterminismOK bool

	// Rendered debug surfaces from the isolated run.
	Tenantz, VictimPage, AggressorPage, SLO, Metrics string
}

// fleetRun is the measured output of one replay of the fleet.
type fleetRun struct {
	absorbed      int64
	victimP99Calm time.Duration
	victimP99Strm time.Duration
	victimBurn    float64
	aggrBurn      float64

	tenantz, victimPage, aggrPage, slo, metrics string
}

const fleetTick = 15 * time.Second

// fleetLatency draws one query latency and error flag. m is the shared-queue
// load multiplier for the current tick (1 when calm).
func fleetLatency(rng *rand.Rand, isolated, storm, aggressor bool, m float64) (time.Duration, bool) {
	// Baseline: 2-3ms with a 0.5% tail around 16-24ms, all far below the
	// default 100ms SLO threshold.
	base := 2*time.Millisecond + time.Duration(rng.Int63n(int64(time.Millisecond)))
	tail := rng.Float64() < 0.005
	if tail {
		base *= 8
	}
	if !storm {
		return base, false
	}
	if isolated {
		if !aggressor {
			// Per-tenant admission and token buckets: the storm never
			// reaches this tenant's latency.
			return base, false
		}
		// The aggressor's excess work queues behind its own quota:
		// throttle delays past the SLO threshold, plus outright errors.
		if rng.Float64() < 0.35 {
			base *= 40
		}
		return base, rng.Float64() < 0.10
	}
	// Shared queue: everyone's service time stretches with total load, and
	// queueing stalls past the SLO threshold appear in proportion to the
	// overload.
	if rng.Float64() < 0.02*(m-1) {
		return 120*time.Millisecond + time.Duration(rng.Int63n(int64(40*time.Millisecond))), false
	}
	return time.Duration(float64(base) * m), false
}

// fleetCalmLoad is tenant rank's queries per tick: a heavy-tailed ~1/r^0.7
// curve with a floor of one query so every tenant stays live.
func fleetCalmLoad(rank int) int {
	q := int(120 / math.Pow(float64(rank), 0.7))
	if q < 1 {
		q = 1
	}
	return q
}

// runFleetObs replays the fleet once under the given contention model.
func runFleetObs(opts FleetObsOptions, isolated bool) (*fleetRun, error) {
	ctx := context.Background()
	clock := timeutil.NewManualClock(time.Unix(1_754_000_000, 0))
	reg := metric.NewRegistry()
	plane := tenantobs.New(tenantobs.Config{
		Registry:   reg,
		Clock:      clock,
		MaxTenants: opts.MaxTenants,
	})
	tb, err := newTestbed(testbedOptions{kvNodes: 3, vcpus: 8, admission: true, clock: clock, obs: plane})
	if err != nil {
		return nil, err
	}
	defer tb.close()
	tb.buckets.SetConsumptionObserver(plane.AddRU)

	n := opts.Tenants
	aggressors := n / 100
	if aggressors < 1 {
		aggressors = 1
	}
	victim := n / 2

	type fleetTenant struct {
		id    keys.TenantID
		name  string
		calmQ int
		ds    *kvserver.DistSender
		nb    *tenantcost.NodeBucket
		key   keys.Key
	}
	fleet := make([]*fleetTenant, n)
	calmTotal := 0
	// The KV cluster's own bring-up traffic passes through admission under
	// the system tenant; register it so it shows up by name rather than as
	// an id-derived fallback.
	plane.RegisterTenant(keys.SystemTenantID, "system")
	for rank := 1; rank <= n; rank++ {
		id := keys.TenantID(rank + 1)
		t := &fleetTenant{
			id:    id,
			name:  fmt.Sprintf("t-%04d", rank),
			calmQ: fleetCalmLoad(rank),
			ds:    kvserver.NewDistSender(tb.cluster, kvserver.Identity{Tenant: id}, kvserver.Config{Obs: plane}),
			nb:    tenantcost.NewNodeBucket(tb.buckets, clock, id, 1),
			key:   append(keys.MakeTenantPrefix(id), 'k'),
		}
		fleet[rank-1] = t
		calmTotal += t.calmQ
		plane.RegisterTenant(id, t.name)
		plane.ConnOpened(t.name)
	}

	rng := randutil.NewRand(opts.Seed)
	run := &fleetRun{}
	totalTicks := opts.CalmTicks + opts.StormTicks
	for tick := 0; tick < totalTicks; tick++ {
		storm := tick >= opts.CalmTicks
		clock.Advance(fleetTick)
		now := clock.Now()

		if storm && tick == opts.CalmTicks {
			// The autoscaler reacts to the storm: scale the aggressors up.
			for rank := 1; rank <= aggressors; rank++ {
				plane.ScaleEvent(fleet[rank-1].name, "up")
			}
			// Snapshot the victim's calm p99 before the storm lands.
			run.victimP99Calm = plane.P99(fleet[victim-1].name, now, metric.BurnShortWindow)
		}

		// Total demand this tick sets the shared-queue multiplier.
		totalQ := calmTotal
		if storm {
			for rank := 1; rank <= aggressors; rank++ {
				totalQ += fleet[rank-1].calmQ * 19 // x20 load during the storm
			}
		}
		m := float64(totalQ) / float64(calmTotal)

		for rank := 1; rank <= n; rank++ {
			t := fleet[rank-1]
			aggr := rank <= aggressors
			q := t.calmQ
			if storm && aggr {
				q *= 20
			}
			// One real KV read per active tenant per tick keeps the
			// dist.tenant_batches and admission.tenant_wait series fed by
			// the genuine DistSender/admission path.
			ba := &kvpb.BatchRequest{Tenant: t.id, Requests: []kvpb.Request{{Method: kvpb.Get, Key: t.key}}}
			if _, err := t.ds.Send(ctx, ba); err != nil {
				return nil, err
			}
			// Modeled request units flow through the token-bucket
			// consumption observer into tenantcost.tenant_ru.
			t.nb.Consume(0.25 * float64(q))
			for i := 0; i < q; i++ {
				lat, bad := fleetLatency(rng, isolated, storm, aggr, m)
				plane.QueryDone(t.id, lat, bad)
			}
			if storm && aggr {
				for i := 0; i < q/10; i++ {
					plane.TxnRetry(t.id)
				}
			}
		}
	}

	now := clock.Now()
	stormSpan := time.Duration(opts.StormTicks) * fleetTick
	victimName := fleet[victim-1].name
	aggrName := fleet[0].name
	run.absorbed = plane.Absorbed()
	run.victimP99Strm = plane.P99(victimName, now, stormSpan)
	run.victimBurn = plane.BurnRate(victimName, now, metric.BurnShortWindow)
	run.aggrBurn = plane.BurnRate(aggrName, now, metric.BurnShortWindow)

	var b strings.Builder
	if err := plane.WriteTenantz(&b, now, 8); err != nil {
		return nil, err
	}
	run.tenantz = b.String()
	b.Reset()
	if err := plane.WriteTenant(&b, victimName, now); err != nil {
		return nil, err
	}
	run.victimPage = b.String()
	b.Reset()
	if err := plane.WriteTenant(&b, aggrName, now); err != nil {
		return nil, err
	}
	run.aggrPage = b.String()
	b.Reset()
	if err := plane.WriteSLO(&b, now); err != nil {
		return nil, err
	}
	run.slo = b.String()
	b.Reset()
	if err := reg.WriteExposition(&b); err != nil {
		return nil, err
	}
	run.metrics = b.String()
	return run, nil
}

// FleetObs runs the fleet-observability experiment: two same-seed isolated
// replays (byte-compared for determinism) plus one shared-queue replay for
// the noisy-neighbor contrast.
func FleetObs(opts FleetObsOptions) (*FleetObsResult, *Table, error) {
	if opts.Tenants <= 0 {
		opts.Tenants = 1000
	}
	if opts.CalmTicks <= 0 {
		opts.CalmTicks = 20
	}
	if opts.StormTicks <= 0 {
		opts.StormTicks = 8
	}
	if opts.MaxTenants <= 0 {
		opts.MaxTenants = opts.Tenants * 3 / 4
	}
	if opts.Seed == 0 {
		opts.Seed = 20250807
	}

	iso, err := runFleetObs(opts, true)
	if err != nil {
		return nil, nil, err
	}
	iso2, err := runFleetObs(opts, true)
	if err != nil {
		return nil, nil, err
	}
	shared, err := runFleetObs(opts, false)
	if err != nil {
		return nil, nil, err
	}

	aggressors := opts.Tenants / 100
	if aggressors < 1 {
		aggressors = 1
	}
	res := &FleetObsResult{
		Tenants:              opts.Tenants,
		Aggressors:           aggressors,
		CalmTicks:            opts.CalmTicks,
		StormTicks:           opts.StormTicks,
		Absorbed:             iso.absorbed,
		VictimName:           fmt.Sprintf("t-%04d", opts.Tenants/2),
		AggressorName:        "t-0001",
		VictimP99Calm:        iso.victimP99Calm,
		VictimP99StormIso:    iso.victimP99Strm,
		VictimP99StormShared: shared.victimP99Strm,
		VictimBurnIso:        iso.victimBurn,
		AggressorBurnIso:     iso.aggrBurn,
		VictimBurnShared:     shared.victimBurn,
		DeterminismOK: iso.tenantz == iso2.tenantz &&
			iso.slo == iso2.slo && iso.metrics == iso2.metrics,
		Tenantz:       iso.tenantz,
		VictimPage:    iso.victimPage,
		AggressorPage: iso.aggrPage,
		SLO:           iso.slo,
		Metrics:       iso.metrics,
	}
	if res.VictimP99StormIso > 0 {
		res.IsolationFactor = float64(res.VictimP99StormShared) / float64(res.VictimP99StormIso)
	}

	tbl := &Table{
		Title:   "fleet observability: noisy-neighbor isolation as seen by the plane (§6)",
		Columns: []string{"metric", "isolated", "shared queue"},
		Rows: [][]string{
			{"fleet size / aggressors", fmt.Sprintf("%d / %d", res.Tenants, res.Aggressors), ""},
			{"plane cardinality cap / absorbed", fmt.Sprintf("%d / %d", opts.MaxTenants, res.Absorbed), ""},
			{fmt.Sprintf("victim %s p99 (calm)", res.VictimName), res.VictimP99Calm.String(), res.VictimP99Calm.String()},
			{fmt.Sprintf("victim %s p99 (storm)", res.VictimName), res.VictimP99StormIso.String(), res.VictimP99StormShared.String()},
			{"victim burn rate, 5m (storm)", fmt.Sprintf("%.1f", res.VictimBurnIso), fmt.Sprintf("%.1f", res.VictimBurnShared)},
			{fmt.Sprintf("aggressor %s burn rate, 5m", res.AggressorName), fmt.Sprintf("%.1f", res.AggressorBurnIso), ""},
			{"isolation factor (shared p99 / isolated p99)", fmt.Sprintf("%.1fx", res.IsolationFactor), ""},
			{"same-seed pages byte-identical", fmt.Sprintf("%v", res.DeterminismOK), ""},
		},
	}
	return res, tbl, nil
}
