package tenantcost

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"crdbserverless/internal/hlc"
	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/timeutil"
)

func TestECPUTokenConversion(t *testing.T) {
	e := ECPU(2.5)
	if e.Tokens() != 2500 {
		t.Fatalf("Tokens = %f", e.Tokens())
	}
	if got := ECPUFromTokens(2500); got != 2.5 {
		t.Fatalf("FromTokens = %f", got)
	}
}

func TestFeaturesFromBatch(t *testing.T) {
	req := &kvpb.BatchRequest{Requests: []kvpb.Request{
		{Method: kvpb.Get, Key: keys.Key("a")},
		{Method: kvpb.Scan, Key: keys.Key("a"), EndKey: keys.Key("z")},
		{Method: kvpb.Put, Key: keys.Key("kk"), Value: []byte("vvvv")},
	}}
	resp := &kvpb.BatchResponse{Responses: []kvpb.Response{
		{Method: kvpb.Get, Value: []byte("123")},
	}}
	f := FeaturesFromBatch(req, resp)
	if f.ReadBatches != 1 || f.ReadRequests != 2 || f.ReadBytes != 3 {
		t.Fatalf("read features = %+v", f)
	}
	if f.WriteBatches != 1 || f.WriteRequests != 1 || f.WriteBytes != 6 {
		t.Fatalf("write features = %+v", f)
	}
}

func TestFeaturesFromBatchReadOnly(t *testing.T) {
	req := &kvpb.BatchRequest{Requests: []kvpb.Request{{Method: kvpb.Get, Key: keys.Key("a")}}}
	f := FeaturesFromBatch(req, nil)
	if f.WriteBatches != 0 || f.ReadBatches != 1 || f.ReadBytes != 0 {
		t.Fatalf("features = %+v", f)
	}
}

func TestBatchFeaturesAdd(t *testing.T) {
	a := BatchFeatures{ReadBatches: 1, WriteBytes: 10}
	a.Add(BatchFeatures{ReadBatches: 2, WriteBytes: 5, ReadRequests: 7})
	if a.ReadBatches != 3 || a.WriteBytes != 15 || a.ReadRequests != 7 {
		t.Fatalf("Add = %+v", a)
	}
}

func TestPiecewiseLinearEval(t *testing.T) {
	p := PiecewiseLinear{Points: []Point{{X: 0, Y: 0}, {X: 10, Y: 100}, {X: 20, Y: 150}}}
	cases := []struct{ x, want float64 }{
		{0, 0}, {5, 50}, {10, 100}, {15, 125}, {20, 150},
		{30, 200},   // extrapolate with last slope (5/unit)
		{-10, -100}, // extrapolate with first slope
	}
	for _, c := range cases {
		if got := p.Eval(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("Eval(%f) = %f, want %f", c.x, got, c.want)
		}
	}
}

func TestPiecewiseLinearDegenerate(t *testing.T) {
	if got := (PiecewiseLinear{}).Eval(5); got != 0 {
		t.Fatalf("empty curve = %f", got)
	}
	one := PiecewiseLinear{Points: []Point{{X: 3, Y: 7}}}
	if got := one.Eval(100); got != 7 {
		t.Fatalf("single-knot curve = %f", got)
	}
}

func TestPiecewiseLinearValidate(t *testing.T) {
	bad := PiecewiseLinear{Points: []Point{{X: 1, Y: 0}, {X: 1, Y: 2}}}
	if bad.Validate() == nil {
		t.Fatal("duplicate X should fail validation")
	}
	good := PiecewiseLinear{Points: []Point{{X: 1, Y: 0}, {X: 2, Y: 2}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultModelProperties(t *testing.T) {
	m := DefaultModel()
	// Pricing is deterministic: same features, same estimate (a stated
	// design goal in §6.7).
	f := BatchFeatures{ReadBatches: 10, ReadRequests: 50, ReadBytes: 4096,
		WriteBatches: 5, WriteRequests: 20, WriteBytes: 2048}
	if m.EstimateKV(f) != m.EstimateKV(f) {
		t.Fatal("estimate not deterministic")
	}
	// More work costs more.
	small := BatchFeatures{ReadBatches: 1, ReadRequests: 1, ReadBytes: 64}
	big := BatchFeatures{ReadBatches: 100, ReadRequests: 100, ReadBytes: 6400}
	if m.EstimateKV(big) <= m.EstimateKV(small) {
		t.Fatal("bigger batch should cost more")
	}
	// Writes cost more than reads of equal shape.
	r := BatchFeatures{ReadBatches: 10, ReadRequests: 10, ReadBytes: 1000}
	w := BatchFeatures{WriteBatches: 10, WriteRequests: 10, WriteBytes: 1000}
	if m.EstimateKV(w) <= m.EstimateKV(r) {
		t.Fatal("writes should price above reads")
	}
	// estimated_cpu = sql + kv.
	if got := m.Estimate(2, f); got != 2+m.EstimateKV(f) {
		t.Fatalf("Estimate = %f", got)
	}
}

func TestDefaultModelBatchingEfficiency(t *testing.T) {
	// The Fig 5 shape: per-batch marginal cost decreases with volume.
	m := DefaultModel()
	lowRate := m.WriteBatch.Eval(100) / 100
	highRate := m.WriteBatch.Eval(10000) / 10000
	if highRate >= lowRate {
		t.Fatalf("batching efficiency missing: %g >= %g", highRate, lowRate)
	}
}

func TestFitPiecewiseRecoversCurve(t *testing.T) {
	// Ground truth: cost = 50µs per batch up to 1000/s, then 30µs.
	truth := func(x float64) float64 {
		if x <= 1000 {
			return x * 50e-6
		}
		return 1000*50e-6 + (x-1000)*30e-6
	}
	var xs, ys []float64
	for x := 10.0; x <= 5000; x += 10 {
		xs = append(xs, x)
		ys = append(ys, truth(x))
	}
	fit, err := FitPiecewise(xs, ys, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{100, 900, 2000, 4500} {
		got, want := fit.Eval(x), truth(x)
		if math.Abs(got-want)/want > 0.15 {
			t.Fatalf("fit(%f) = %g, truth %g", x, got, want)
		}
	}
}

func TestFitPiecewiseErrors(t *testing.T) {
	if _, err := FitPiecewise(nil, nil, 4); err == nil {
		t.Fatal("empty fit should error")
	}
	if _, err := FitPiecewise([]float64{1}, []float64{1, 2}, 4); err == nil {
		t.Fatal("mismatched fit should error")
	}
	// Single point fits to a constant.
	fit, err := FitPiecewise([]float64{5}, []float64{9}, 4)
	if err != nil || fit.Eval(100) != 9 {
		t.Fatalf("single-point fit: %v %f", err, fit.Eval(100))
	}
}

func TestEstimateNonNegativeProperty(t *testing.T) {
	m := DefaultModel()
	f := func(rb, rr, rby, wb, wr, wby uint16) bool {
		feat := BatchFeatures{
			ReadBatches: int64(rb), ReadRequests: int64(rr), ReadBytes: int64(rby),
			WriteBatches: int64(wb), WriteRequests: int64(wr), WriteBytes: int64(wby),
		}
		return m.EstimateKV(feat) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketServerLumpGrants(t *testing.T) {
	mc := timeutil.NewManualClock(time.Unix(0, 0))
	s := NewBucketServer(mc)
	s.SetQuota(2, 1) // 1 vCPU = 1000 tokens/s, burst 10000
	mc.Advance(10 * time.Second)
	if got := s.Available(2); got != 10000 {
		t.Fatalf("available = %f, want full burst 10000", got)
	}
	resp := s.Request(2, 1, 100, 5000)
	if resp.Granted != 5000 || resp.TrickleRate != 0 {
		t.Fatalf("grant = %+v", resp)
	}
	if got := s.Available(2); got != 5000 {
		t.Fatalf("available after grant = %f", got)
	}
}

func TestBucketServerUnlimitedWithoutQuota(t *testing.T) {
	s := NewBucketServer(timeutil.NewManualClock(time.Unix(0, 0)))
	resp := s.Request(7, 1, 1e9, 1e9)
	if resp.Granted != 1e9 || resp.TrickleRate != 0 {
		t.Fatalf("unlimited tenant grant = %+v", resp)
	}
	if q := s.Quota(7); q != 0 {
		t.Fatalf("quota = %f", q)
	}
	if q := s.Quota(99); q != 0 {
		t.Fatalf("unknown tenant quota = %f", q)
	}
}

func TestBucketServerTrickleWhenEmpty(t *testing.T) {
	mc := timeutil.NewManualClock(time.Unix(0, 0))
	s := NewBucketServer(mc)
	s.SetQuota(2, 10) // 10,000 tokens/s
	mc.Advance(10 * time.Second)
	// Drain the burst.
	s.Request(2, 1, 10000, 100000)
	resp := s.Request(2, 1, 10000, 50000)
	if resp.TrickleRate <= 0 {
		t.Fatalf("expected trickle grant, got %+v", resp)
	}
	// Single node: trickle should be the full refill rate.
	if math.Abs(resp.TrickleRate-10000) > 1 {
		t.Fatalf("trickle rate = %f, want 10000", resp.TrickleRate)
	}
}

func TestBucketServerTrickleSharesConvergeToRefill(t *testing.T) {
	mc := timeutil.NewManualClock(time.Unix(0, 0))
	s := NewBucketServer(mc)
	s.SetQuota(2, 10)       // refill 10,000 tokens/s
	s.Request(2, 1, 0, 1e9) // drain

	// Three nodes with demand 3000, 6000, 9000 tokens/s repeatedly request.
	demands := map[int32]float64{1: 3000, 2: 6000, 3: 9000}
	var last map[int32]float64
	for round := 0; round < 20; round++ {
		last = map[int32]float64{}
		for node, d := range demands {
			resp := s.Request(2, node, d, d)
			last[node] = resp.TrickleRate
		}
		mc.Advance(10 * time.Millisecond)
	}
	var sum float64
	for _, r := range last {
		sum += r
	}
	if math.Abs(sum-10000)/10000 > 0.05 {
		t.Fatalf("sum of trickle rates = %f, want ~10000", sum)
	}
	// Shares proportional to demand: node 3 gets 3x node 1.
	if ratio := last[3] / last[1]; math.Abs(ratio-3) > 0.5 {
		t.Fatalf("trickle share ratio = %f, want ~3", ratio)
	}
}

func TestNodeBucketBurstsFromLocalBuffer(t *testing.T) {
	mc := timeutil.NewManualClock(time.Unix(0, 0))
	s := NewBucketServer(mc)
	s.SetQuota(2, 100) // effectively unconstrained
	mc.Advance(10 * time.Second)
	nb := NewNodeBucket(s, mc, 2, 1)
	// First consume fetches a lump; subsequent small consumes hit the
	// local buffer with zero delay.
	if d := nb.Consume(10); d != 0 {
		t.Fatalf("first consume delayed %v", d)
	}
	delayed := 0
	for i := 0; i < 10; i++ {
		mc.Advance(10 * time.Millisecond)
		if d := nb.Consume(1); d != 0 {
			delayed++
		}
	}
	if delayed != 0 {
		t.Fatalf("%d consumes delayed despite ample quota", delayed)
	}
	if nb.Consumed() != 20 {
		t.Fatalf("consumed = %f", nb.Consumed())
	}
}

func TestNodeBucketSmoothThrottleUnderTrickle(t *testing.T) {
	mc := timeutil.NewManualClock(time.Unix(0, 0))
	s := NewBucketServer(mc)
	s.SetQuota(2, 1) // 1000 tokens/s
	nb := NewNodeBucket(s, mc, 2, 1)
	// Consume far beyond the refill, sleeping each returned delay as a real
	// caller would: consumption must be smeared at ~the trickle rate rather
	// than stop/start.
	var totalDelay, maxDelay time.Duration
	for i := 0; i < 50; i++ {
		d := nb.Consume(1000) // each = 1 second of eCPU
		totalDelay += d
		if d > maxDelay {
			maxDelay = d
		}
		mc.Advance(d + 10*time.Millisecond)
	}
	if totalDelay <= 0 {
		t.Fatal("over-quota consumption produced no throttling")
	}
	// 50,000 tokens at 1000 tokens/s needs ~50s of smearing; allow slack
	// for the initial burst credit.
	if totalDelay < 20*time.Second || totalDelay > 80*time.Second {
		t.Fatalf("total delay %v not in the smooth-throttle range", totalDelay)
	}
	// Smoothness: no single operation waits wildly longer than its own
	// cost at the trickle rate.
	if maxDelay > 5*time.Second {
		t.Fatalf("max per-op delay %v is stop/start, not smooth", maxDelay)
	}
}

func TestNodeBucketZeroConsume(t *testing.T) {
	s := NewBucketServer(timeutil.NewManualClock(time.Unix(0, 0)))
	nb := NewNodeBucket(s, timeutil.NewManualClock(time.Unix(0, 0)), 2, 1)
	if d := nb.Consume(0); d != 0 {
		t.Fatalf("Consume(0) = %v", d)
	}
	if d := nb.Consume(-5); d != 0 {
		t.Fatalf("Consume(-5) = %v", d)
	}
}

func TestQuotaTimestampIndependence(t *testing.T) {
	// Regression guard: an hlc timestamp type is unrelated, but the bucket
	// must not interact with wall-clock regressions; a stale SetQuota after
	// refill must clamp tokens to the new burst.
	mc := timeutil.NewManualClock(time.Unix(0, 0))
	s := NewBucketServer(mc)
	s.SetQuota(2, 100)
	mc.Advance(time.Hour)
	if got := s.Available(2); got != 100*1000*10 {
		t.Fatalf("burst = %f", got)
	}
	s.SetQuota(2, 1)
	if got := s.Available(2); got > 1*1000*10 {
		t.Fatalf("tokens not clamped after quota reduction: %f", got)
	}
	_ = hlc.Timestamp{}
}
