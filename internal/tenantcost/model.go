// Package tenantcost implements tenant CPU attribution and quota enforcement
// (§5.2 of the paper): the estimated-CPU model that prices KV API traffic,
// and the distributed token bucket — with trickle grants — that enforces
// per-tenant CPU limits across a tenant's SQL nodes.
package tenantcost

import (
	"fmt"
	"sort"

	"crdbserverless/internal/kvpb"
)

// ECPU is estimated CPU, measured in seconds of a reference vCPU. One token
// in the quota bucket is one millisecond of ECPU.
type ECPU float64

// Tokens converts ECPU seconds to bucket tokens (milliseconds).
func (e ECPU) Tokens() float64 { return float64(e) * 1000 }

// ECPUFromTokens converts bucket tokens back to ECPU seconds.
func ECPUFromTokens(tokens float64) ECPU { return ECPU(tokens / 1000) }

// BatchFeatures are the six model inputs the paper trains per-feature models
// on (§5.2.1): read/write batch counts, per-batch request counts, and
// per-batch byte volumes.
type BatchFeatures struct {
	ReadBatches   int64
	ReadRequests  int64
	ReadBytes     int64
	WriteBatches  int64
	WriteRequests int64
	WriteBytes    int64
}

// Add accumulates other into f.
func (f *BatchFeatures) Add(other BatchFeatures) {
	f.ReadBatches += other.ReadBatches
	f.ReadRequests += other.ReadRequests
	f.ReadBytes += other.ReadBytes
	f.WriteBatches += other.WriteBatches
	f.WriteRequests += other.WriteRequests
	f.WriteBytes += other.WriteBytes
}

// FeaturesFromBatch extracts model inputs from one KV batch round trip.
func FeaturesFromBatch(req *kvpb.BatchRequest, resp *kvpb.BatchResponse) BatchFeatures {
	var f BatchFeatures
	var reads, writes int64
	for _, r := range req.Requests {
		if r.Method.IsWrite() {
			writes++
		} else {
			reads++
		}
	}
	if reads > 0 {
		f.ReadBatches = 1
		f.ReadRequests = reads
		if resp != nil {
			f.ReadBytes = resp.ReadBytes()
		}
	}
	if writes > 0 {
		f.WriteBatches = 1
		f.WriteRequests = writes
		f.WriteBytes = req.WriteBytes()
	}
	return f
}

// Point is one knot of a piecewise-linear curve.
type Point struct {
	X, Y float64
}

// PiecewiseLinear is a monotone piecewise-linear function defined by knots
// sorted by X. Evaluation interpolates between knots and extrapolates with
// the first/last segment's slope. The paper approximates each feature's
// non-linear CPU consumption curve (Fig 5) with such a function.
type PiecewiseLinear struct {
	Points []Point
}

// Eval returns the interpolated value at x.
func (p PiecewiseLinear) Eval(x float64) float64 {
	pts := p.Points
	switch len(pts) {
	case 0:
		return 0
	case 1:
		return pts[0].Y
	}
	if x <= pts[0].X {
		return extrapolate(pts[0], pts[1], x)
	}
	if x >= pts[len(pts)-1].X {
		return extrapolate(pts[len(pts)-2], pts[len(pts)-1], x)
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].X >= x }) // first knot >= x
	return extrapolate(pts[i-1], pts[i], x)
}

func extrapolate(a, b Point, x float64) float64 {
	if b.X == a.X {
		return a.Y
	}
	slope := (b.Y - a.Y) / (b.X - a.X)
	return a.Y + slope*(x-a.X)
}

// Validate checks that knots are sorted by strictly increasing X.
func (p PiecewiseLinear) Validate() error {
	for i := 1; i < len(p.Points); i++ {
		if p.Points[i].X <= p.Points[i-1].X {
			return fmt.Errorf("tenantcost: knot %d X %f not increasing", i, p.Points[i].X)
		}
	}
	return nil
}

// Model prices KV batches in ECPU. The total is the sum of six per-feature
// models, each mapping a feature magnitude to ECPU seconds (§5.2.1).
type Model struct {
	ReadBatch    PiecewiseLinear // per read batch
	ReadRequest  PiecewiseLinear // per request within read batches
	ReadByte     PiecewiseLinear // per byte returned
	WriteBatch   PiecewiseLinear // per write batch
	WriteRequest PiecewiseLinear // per request within write batches
	WriteByte    PiecewiseLinear // per byte written
}

// EstimateKV prices the accumulated features: the output of the larger model
// is the sum of the predictions of the smaller models.
func (m *Model) EstimateKV(f BatchFeatures) ECPU {
	var total float64
	total += m.ReadBatch.Eval(float64(f.ReadBatches))
	total += m.ReadRequest.Eval(float64(f.ReadRequests))
	total += m.ReadByte.Eval(float64(f.ReadBytes))
	total += m.WriteBatch.Eval(float64(f.WriteBatches))
	total += m.WriteRequest.Eval(float64(f.WriteRequests))
	total += m.WriteByte.Eval(float64(f.WriteBytes))
	if total < 0 {
		total = 0
	}
	return ECPU(total)
}

// Estimate combines directly-measured SQL CPU with modeled KV CPU:
//
//	estimated_cpu = actual_sql_cpu + estimated_kv_cpu
func (m *Model) Estimate(sqlCPU ECPU, f BatchFeatures) ECPU {
	return sqlCPU + m.EstimateKV(f)
}

// DefaultModel returns the calibrated model shipped with the system. The
// constants reflect the paper's qualitative findings: batches carry a fixed
// overhead that amortizes at volume (the Fig 5 efficiency curve), requests
// within a batch are much cheaper than batches, and byte costs are linear
// with a small slope.
func DefaultModel() *Model {
	// Constants carry a ~10% uplift over the per-operation service costs:
	// calibration against the dedicated-cluster ground truth showed the raw
	// constants systematically underpricing (replication and WAL overheads
	// land outside the per-batch accounting), and the uplift centers the
	// estimate/actual distribution at 1.0 (§6.7).
	return &Model{
		// Cost per n read batches: ~44µs each at low volume, amortizing to
		// ~26µs at high volume.
		ReadBatch: PiecewiseLinear{Points: []Point{
			{X: 0, Y: 0}, {X: 100, Y: 100 * 44e-6}, {X: 1000, Y: 1000 * 35e-6}, {X: 10000, Y: 10000 * 26e-6},
		}},
		ReadRequest: PiecewiseLinear{Points: []Point{
			{X: 0, Y: 0}, {X: 10000, Y: 10000 * 4.4e-6},
		}},
		ReadByte: PiecewiseLinear{Points: []Point{
			{X: 0, Y: 0}, {X: 1 << 20, Y: (1 << 20) * 11e-9},
		}},
		// Write batches are more expensive (raft replication, WAL): ~88µs
		// each, amortizing to ~53µs — the non-linearity of Fig 5.
		WriteBatch: PiecewiseLinear{Points: []Point{
			{X: 0, Y: 0}, {X: 100, Y: 100 * 88e-6}, {X: 1000, Y: 1000 * 66e-6}, {X: 10000, Y: 10000 * 53e-6},
		}},
		WriteRequest: PiecewiseLinear{Points: []Point{
			{X: 0, Y: 0}, {X: 10000, Y: 10000 * 6.6e-6},
		}},
		WriteByte: PiecewiseLinear{Points: []Point{
			{X: 0, Y: 0}, {X: 1 << 20, Y: (1 << 20) * 33e-9},
		}},
	}
}

// FitPiecewise fits a piecewise-linear curve with the given number of knots
// to (xs, ys) samples, which is how per-feature models are trained from
// controlled tests that vary one feature at a time (§5.2.1). Knot X
// positions are sample quantiles; each knot's Y is the local mean.
func FitPiecewise(xs, ys []float64, knots int) (PiecewiseLinear, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return PiecewiseLinear{}, fmt.Errorf("tenantcost: %d xs with %d ys", len(xs), len(ys))
	}
	if knots < 2 {
		knots = 2
	}
	type sample struct{ x, y float64 }
	samples := make([]sample, len(xs))
	for i := range xs {
		samples[i] = sample{xs[i], ys[i]}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].x < samples[j].x })

	var pts []Point
	for k := 0; k < knots; k++ {
		// Quantile position of this knot.
		lo := k * len(samples) / knots
		hi := (k + 1) * len(samples) / knots
		if hi <= lo {
			continue
		}
		var sx, sy float64
		for _, s := range samples[lo:hi] {
			sx += s.x
			sy += s.y
		}
		n := float64(hi - lo)
		pt := Point{X: sx / n, Y: sy / n}
		if len(pts) > 0 && pt.X <= pts[len(pts)-1].X {
			continue // duplicate x cluster; skip
		}
		pts = append(pts, pt)
	}
	if len(pts) == 0 {
		pts = []Point{{X: samples[0].x, Y: samples[0].y}}
	}
	out := PiecewiseLinear{Points: pts}
	if err := out.Validate(); err != nil {
		return PiecewiseLinear{}, err
	}
	return out, nil
}
