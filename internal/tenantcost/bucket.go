package tenantcost

import (
	"sync"
	"time"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/timeutil"
)

// The distributed token bucket of §5.2.2. The authoritative bucket state
// lives on the BucketServer (in production, rows of a system-database table);
// each SQL node runs a NodeBucket that consumes from a local buffer and
// periodically requests more tokens. When the shared bucket empties, the
// server switches to "trickle grants": instead of lump sums it hands each
// node a tokens/second rate, sized so the sum of recent trickles converges on
// the bucket's refill rate. Nodes then run queries at a smooth reduced rate
// rather than stop/start.

// TokensPerVCPUSecond is the refill rate per vCPU of quota: 1000 tokens/sec,
// each token one millisecond of estimated CPU.
const TokensPerVCPUSecond = 1000.0

// GrantResponse is the server's answer to a token request.
type GrantResponse struct {
	// Granted is a lump of tokens deducted from the shared bucket.
	Granted float64
	// TrickleRate, when nonzero, tells the node to consume at most this
	// many tokens/second until TrickleDeadline.
	TrickleRate     float64
	TrickleDeadline time.Time
}

// serverBucket is one tenant's authoritative state.
type serverBucket struct {
	tokens     float64
	rate       float64 // refill tokens/sec (quota vCPUs * 1000)
	burst      float64
	lastUpdate time.Time
	// nodeRates is an EWMA of each node's recent request rate, used to
	// split trickle capacity proportionally.
	nodeRates map[int32]float64
}

// BucketServer is the token-bucket authority for all tenants of a cluster.
type BucketServer struct {
	clock timeutil.Clock

	mu      sync.Mutex
	tenants map[keys.TenantID]*serverBucket
	// trickleInterval is how long each trickle grant lasts.
	trickleInterval time.Duration
	// onConsume, when set, observes every NodeBucket consumption
	// (tenant, tokens). Invoked outside both the server's and the node
	// bucket's locks.
	onConsume func(keys.TenantID, float64)
}

// SetConsumptionObserver installs fn to observe every token consumption
// attributed through any NodeBucket of this server. The deployment wires
// this to the tenant observability plane so per-tenant RU burn shows up on
// /debug/metrics (tenantcost.tenant_ru).
func (s *BucketServer) SetConsumptionObserver(fn func(tenant keys.TenantID, tokens float64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onConsume = fn
}

// noteConsumption relays one consumption to the observer, if any.
func (s *BucketServer) noteConsumption(tenant keys.TenantID, tokens float64) {
	s.mu.Lock()
	fn := s.onConsume
	s.mu.Unlock()
	if fn != nil {
		fn(tenant, tokens)
	}
}

// NewBucketServer returns a server using the given clock.
func NewBucketServer(clock timeutil.Clock) *BucketServer {
	if clock == nil {
		clock = timeutil.NewRealClock()
	}
	return &BucketServer{
		clock:           clock,
		tenants:         make(map[keys.TenantID]*serverBucket),
		trickleInterval: time.Second,
	}
}

// SetQuota configures a tenant's CPU quota in vCPUs. The bucket refills at
// 1000 tokens/sec per vCPU and holds up to 10 seconds of burst.
func (s *BucketServer) SetQuota(tenant keys.TenantID, vcpus float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.bucketLocked(tenant)
	b.rate = vcpus * TokensPerVCPUSecond
	b.burst = b.rate * 10
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// Quota returns the tenant's quota in vCPUs (0 = unlimited/unset).
func (s *BucketServer) Quota(tenant keys.TenantID) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.tenants[tenant]; ok {
		return b.rate / TokensPerVCPUSecond
	}
	return 0
}

func (s *BucketServer) bucketLocked(tenant keys.TenantID) *serverBucket {
	b, ok := s.tenants[tenant]
	if !ok {
		b = &serverBucket{
			lastUpdate: s.clock.Now(),
			nodeRates:  make(map[int32]float64),
		}
		s.tenants[tenant] = b
		b.tokens = 0
	}
	return b
}

func (b *serverBucket) refill(now time.Time) {
	dt := now.Sub(b.lastUpdate).Seconds()
	if dt <= 0 {
		return
	}
	b.tokens += b.rate * dt
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.lastUpdate = now
}

// Request asks for tokens on behalf of (tenant, node). rate is the node's
// recent consumption in tokens/second (its CPU usage over the last 10s);
// want is the lump the node would like. With tokens available the full lump
// is granted; with the bucket empty the server issues a trickle grant sized
// to the node's share of the tenant's total demand (§5.2.2's statistical
// guarantee: the sum of trickle rates converges on the refill rate).
func (s *BucketServer) Request(tenant keys.TenantID, node int32, rate, want float64) GrantResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	b := s.bucketLocked(tenant)
	if b.rate == 0 {
		// No quota configured: unlimited.
		return GrantResponse{Granted: want}
	}
	b.refill(now)

	// Update the node's demand EWMA.
	if prev, ok := b.nodeRates[node]; ok {
		b.nodeRates[node] = 0.5*prev + 0.5*rate
	} else {
		b.nodeRates[node] = rate
	}

	if b.tokens >= want {
		b.tokens -= want
		return GrantResponse{Granted: want}
	}

	// Bucket empty (or nearly): trickle. Node's share of the refill rate is
	// proportional to its recent demand among the recently-seen nodes.
	var totalDemand float64
	for _, r := range b.nodeRates {
		totalDemand += r
	}
	share := 1.0
	if totalDemand > 0 {
		share = b.nodeRates[node] / totalDemand
	} else {
		share = 1.0 / float64(len(b.nodeRates))
	}
	grant := b.tokens // hand over whatever remains as a partial lump
	b.tokens = 0
	return GrantResponse{
		Granted:         grant,
		TrickleRate:     b.rate * share,
		TrickleDeadline: now.Add(s.trickleInterval),
	}
}

// Available returns the tenant's current shared-bucket token balance.
func (s *BucketServer) Available(tenant keys.TenantID) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.bucketLocked(tenant)
	b.refill(s.clock.Now())
	return b.tokens
}

// NodeBucket is the per-SQL-node client of the distributed bucket. It
// maintains a local buffer of tokens to absorb bursts without a server round
// trip, and converts trickle grants into smooth per-operation delays.
type NodeBucket struct {
	server *BucketServer
	clock  timeutil.Clock
	tenant keys.TenantID
	node   int32

	mu struct {
		sync.Mutex
		local           float64 // locally buffered tokens
		trickleRate     float64
		trickleDeadline time.Time
		trickleAccrued  time.Time // accrual watermark for trickle tokens
		// payThrough is the virtual time through which returned delays have
		// already scheduled consumption against future trickle accrual.
		payThrough time.Time
		// consumption EWMA over ~10s, reported to the server as demand.
		rate       float64
		lastUpdate time.Time
		consumed   float64 // cumulative tokens consumed (for attribution)
	}
	// requestSize is the lump requested when the buffer runs dry: the
	// node's demand over 10 seconds (§5.2.2).
	requestWindow time.Duration
}

// NewNodeBucket returns a client for (tenant, node) against server.
func NewNodeBucket(server *BucketServer, clock timeutil.Clock, tenant keys.TenantID, node int32) *NodeBucket {
	if clock == nil {
		clock = timeutil.NewRealClock()
	}
	nb := &NodeBucket{server: server, clock: clock, tenant: tenant, node: node, requestWindow: 10 * time.Second}
	nb.mu.lastUpdate = clock.Now()
	nb.mu.trickleAccrued = clock.Now()
	return nb
}

// Consume charges tokens of estimated CPU and returns the delay the caller
// must impose before (or while) running the work. A zero delay means the
// local buffer covered the charge. Under trickle grants the delay spreads
// consumption so the node runs at the granted rate instead of stop/start.
func (nb *NodeBucket) Consume(tokens float64) time.Duration {
	if tokens <= 0 {
		return 0
	}
	// Registered before the Unlock defer below, so it runs after the lock
	// is released: the observer (the observability plane) is called with no
	// tenantcost locks held.
	defer nb.server.noteConsumption(nb.tenant, tokens)
	nb.mu.Lock()
	defer nb.mu.Unlock()
	now := nb.clock.Now()
	nb.updateRateLocked(now, tokens)
	nb.mu.consumed += tokens
	nb.accrueTrickleLocked(now)

	if nb.mu.local >= tokens {
		nb.mu.local -= tokens
		return 0
	}

	// Buffer dry: ask the server for the next window of demand.
	want := nb.mu.rate * nb.requestWindow.Seconds()
	if min := tokens * 4; want < min {
		want = min
	}
	resp := nb.server.Request(nb.tenant, nb.node, nb.mu.rate, want)
	nb.mu.local += resp.Granted
	if resp.TrickleRate > 0 {
		nb.mu.trickleRate = resp.TrickleRate
		nb.mu.trickleDeadline = resp.TrickleDeadline
		nb.mu.trickleAccrued = now
	}

	if nb.mu.local >= tokens {
		nb.mu.local -= tokens
		return 0
	}

	// Still short: we are in trickle mode. The deficit arrives at the
	// trickle rate; schedule it on the virtual timeline so each caller's
	// delay smears its own consumption without double-charging debts.
	deficit := tokens - nb.mu.local
	nb.mu.local = 0
	rate := nb.mu.trickleRate
	if rate <= 0 {
		// No trickle grant (e.g. zero demand share): be conservative and
		// retry-after one second.
		return time.Second
	}
	start := now
	if nb.mu.payThrough.After(start) {
		start = nb.mu.payThrough
	}
	finish := start.Add(time.Duration(deficit / rate * float64(time.Second)))
	nb.mu.payThrough = finish
	// Future trickle accrual up to finish is spoken for.
	if finish.After(nb.mu.trickleAccrued) {
		nb.mu.trickleAccrued = finish
	}
	return finish.Sub(now)
}

// accrueTrickleLocked adds trickle-rate tokens accrued since the last call.
func (nb *NodeBucket) accrueTrickleLocked(now time.Time) {
	if nb.mu.trickleRate <= 0 {
		return
	}
	until := now
	if until.After(nb.mu.trickleDeadline) {
		until = nb.mu.trickleDeadline
	}
	dt := until.Sub(nb.mu.trickleAccrued).Seconds()
	if dt > 0 {
		nb.mu.local += nb.mu.trickleRate * dt
		nb.mu.trickleAccrued = until
	}
	if !now.Before(nb.mu.trickleDeadline) {
		nb.mu.trickleRate = 0
	}
}

// updateRateLocked maintains the consumption EWMA used as reported demand.
func (nb *NodeBucket) updateRateLocked(now time.Time, tokens float64) {
	dt := now.Sub(nb.mu.lastUpdate).Seconds()
	if dt <= 0 {
		dt = 1e-9
	}
	instant := tokens / dt
	// Smooth over roughly the request window.
	alpha := dt / (dt + nb.requestWindow.Seconds()/2)
	if alpha > 1 {
		alpha = 1
	}
	nb.mu.rate = (1-alpha)*nb.mu.rate + alpha*instant
	nb.mu.lastUpdate = now
}

// Consumed returns cumulative tokens consumed through this node bucket.
func (nb *NodeBucket) Consumed() float64 {
	nb.mu.Lock()
	defer nb.mu.Unlock()
	return nb.mu.consumed
}

// LocalTokens returns the current local buffer balance.
func (nb *NodeBucket) LocalTokens() float64 {
	nb.mu.Lock()
	defer nb.mu.Unlock()
	return nb.mu.local
}
