package region

import (
	"testing"
	"time"

	"crdbserverless/internal/randutil"
)

func TestTopologyRTT(t *testing.T) {
	top := DefaultTopology()
	if got := top.RTT("asia-southeast1", "europe-west1"); got != 180*time.Millisecond {
		t.Fatalf("RTT = %v", got)
	}
	// Symmetric.
	if got := top.RTT("europe-west1", "asia-southeast1"); got != 180*time.Millisecond {
		t.Fatalf("reverse RTT = %v", got)
	}
	// Same region is sub-millisecond.
	if got := top.RTT("us-central1", "us-central1"); got >= time.Millisecond {
		t.Fatalf("local RTT = %v", got)
	}
	// Unknown pairs get a conservative default.
	if got := top.RTT("mars-east1", "us-central1"); got != 150*time.Millisecond {
		t.Fatalf("unknown RTT = %v", got)
	}
}

func TestTopologyRegionsSortedAndContains(t *testing.T) {
	top := NewTopology([]Region{"zz", "aa", "mm"})
	rs := top.Regions()
	if rs[0] != "aa" || rs[1] != "mm" || rs[2] != "zz" {
		t.Fatalf("regions = %v", rs)
	}
	if !top.Contains("mm") || top.Contains("nope") {
		t.Fatal("Contains broken")
	}
}

func TestSampleRTTJitterBounds(t *testing.T) {
	top := DefaultTopology()
	rng := randutil.NewRand(1)
	base := top.RTT("asia-southeast1", "us-central1")
	for i := 0; i < 200; i++ {
		d := top.SampleRTT(rng, "asia-southeast1", "us-central1")
		if d < time.Duration(float64(base)*0.89) || d > time.Duration(float64(base)*1.11) {
			t.Fatalf("jittered RTT %v outside ±10%% of %v", d, base)
		}
	}
}

func TestNearest(t *testing.T) {
	top := DefaultTopology()
	got := top.Nearest("europe-west1", []Region{"asia-southeast1", "us-central1"})
	if got != "us-central1" {
		t.Fatalf("nearest from europe = %s", got)
	}
	if got := top.Nearest("x", nil); got != "" {
		t.Fatalf("nearest of empty = %q", got)
	}
	// Origin inside the candidate set picks itself.
	if got := top.Nearest("us-central1", top.Regions()); got != "us-central1" {
		t.Fatalf("nearest from member region = %s", got)
	}
}

func TestDNSNamesAndResolve(t *testing.T) {
	top := DefaultTopology()
	dns := NewDNS(top)
	if got := dns.GlobalName("acme"); got != "acme.serverless.example.com" {
		t.Fatalf("global name = %s", got)
	}
	regional := dns.RegionalName("acme", "europe-west1")
	if regional != "acme.europe-west1.serverless.example.com" {
		t.Fatalf("regional name = %s", regional)
	}
	tenantRegions := []Region{"europe-west1", "us-central1"}
	// Regional name routes to its region.
	r, err := dns.Resolve(regional, "asia-southeast1", tenantRegions)
	if err != nil || r != "europe-west1" {
		t.Fatalf("regional resolve = %s, %v", r, err)
	}
	// Regional name for a region the tenant is not in fails.
	if _, err := dns.Resolve(dns.RegionalName("acme", "asia-southeast1"), "x", tenantRegions); err == nil {
		t.Fatal("resolve to absent region should fail")
	}
	// Global name geo-routes to the nearest tenant region.
	r, err = dns.Resolve(dns.GlobalName("acme"), "asia-southeast1", tenantRegions)
	if err != nil || r != "us-central1" {
		t.Fatalf("global resolve from asia = %s, %v", r, err)
	}
	// No regions configured.
	if _, err := dns.Resolve(dns.GlobalName("acme"), "x", nil); err == nil {
		t.Fatal("resolve with no regions should fail")
	}
}

func TestLocalityString(t *testing.T) {
	for l, want := range map[Locality]string{
		LocalityRegionalByTable: "REGIONAL BY TABLE",
		LocalityGlobal:          "GLOBAL",
		LocalityRegionalByRow:   "REGIONAL BY ROW",
		Locality(9):             "Locality(9)",
	} {
		if got := l.String(); got != want {
			t.Fatalf("%d = %q", l, got)
		}
	}
}

func TestLeasePlacementReadLatency(t *testing.T) {
	top := DefaultTopology()
	// Unoptimized: leaseholders pinned to asia-southeast1 (the Fig 10b
	// baseline). A read from us-central1 pays the cross-region RTT.
	pinned := LeasePlacement{Locality: LocalityRegionalByTable, Home: "asia-southeast1"}
	remote := pinned.ReadRTT(top, "us-central1")
	if remote != top.RTT("us-central1", "asia-southeast1") {
		t.Fatalf("pinned remote read RTT = %v", remote)
	}
	// Optimized: global tables read locally from every region.
	global := LeasePlacement{Locality: LocalityGlobal}
	local := global.ReadRTT(top, "us-central1")
	if local >= remote {
		t.Fatalf("global read %v should beat pinned remote read %v", local, remote)
	}
	// Regional-by-row reads the node's own row locally.
	byRow := LeasePlacement{Locality: LocalityRegionalByRow}
	if byRow.ReadRTT(top, "europe-west1") >= remote {
		t.Fatal("regional-by-row read should be local")
	}
}

func TestLeasePlacementWriteLatency(t *testing.T) {
	top := DefaultTopology()
	// Global tables pay the farthest-region RTT on writes.
	global := LeasePlacement{Locality: LocalityGlobal}
	w := global.WriteRTT(top, "us-central1")
	if w != top.RTT("us-central1", "asia-southeast1") {
		t.Fatalf("global write RTT = %v", w)
	}
	// Regional-by-row writes stay local — this is why system.sql_instances
	// uses it (§3.2.5: latency-sensitive startup writes).
	byRow := LeasePlacement{Locality: LocalityRegionalByRow}
	if byRow.WriteRTT(top, "us-central1") >= w {
		t.Fatal("regional-by-row write should be local")
	}
	// Pinned tables write to their home region.
	pinned := LeasePlacement{Locality: LocalityRegionalByTable, Home: "europe-west1"}
	if pinned.WriteRTT(top, "us-central1") != top.RTT("us-central1", "europe-west1") {
		t.Fatal("pinned write RTT mismatch")
	}
}
