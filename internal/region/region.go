// Package region models multi-region topology: named regions, a round-trip
// latency matrix between them, table localities (§3.2.5), per-tenant region
// selection, and geo-routed DNS (§4.2.5). Cold-start latency experiments
// (Fig 10b) draw cross-region access costs from this model.
package region

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"crdbserverless/internal/randutil"
)

// Region is a named cloud region.
type Region string

// Locality describes how a table is optimized for multi-region access
// (§3.2.5).
type Locality int

const (
	// LocalityRegionalByTable places all leaseholders in one home region:
	// reads and writes from that region are fast, remote reads pay an RTT.
	// This is the default (and the "unoptimized" configuration of Fig 10b).
	LocalityRegionalByTable Locality = iota
	// LocalityGlobal allows consistent local reads in every region at the
	// cost of higher write latency (system.descriptor uses this).
	LocalityGlobal
	// LocalityRegionalByRow partitions by row so each row's leaseholder
	// lives in a specific region (system.sql_instances uses this: a node's
	// startup write stays local).
	LocalityRegionalByRow
)

// String implements fmt.Stringer.
func (l Locality) String() string {
	switch l {
	case LocalityRegionalByTable:
		return "REGIONAL BY TABLE"
	case LocalityGlobal:
		return "GLOBAL"
	case LocalityRegionalByRow:
		return "REGIONAL BY ROW"
	default:
		return fmt.Sprintf("Locality(%d)", int(l))
	}
}

// Topology is a set of regions and the RTTs between them.
type Topology struct {
	mu      sync.RWMutex
	regions []Region
	rtt     map[[2]Region]time.Duration
	// jitterFrac is applied to latency draws (default 0.1).
	jitterFrac float64
}

// NewTopology creates a topology over the given regions with the provided
// symmetric RTT matrix entries.
func NewTopology(regions []Region) *Topology {
	t := &Topology{
		regions:    append([]Region(nil), regions...),
		rtt:        make(map[[2]Region]time.Duration),
		jitterFrac: 0.1,
	}
	sort.Slice(t.regions, func(i, j int) bool { return t.regions[i] < t.regions[j] })
	return t
}

// DefaultTopology returns the three-region topology used in the paper's
// multi-region cold start evaluation (Fig 10b), with RTTs approximating the
// real asia-southeast1 / europe-west1 / us-central1 distances.
func DefaultTopology() *Topology {
	t := NewTopology([]Region{"asia-southeast1", "europe-west1", "us-central1"})
	t.SetRTT("asia-southeast1", "europe-west1", 180*time.Millisecond)
	t.SetRTT("asia-southeast1", "us-central1", 160*time.Millisecond)
	t.SetRTT("europe-west1", "us-central1", 100*time.Millisecond)
	return t
}

// Regions returns the regions in sorted order.
func (t *Topology) Regions() []Region {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]Region(nil), t.regions...)
}

// Contains reports whether r is part of the topology.
func (t *Topology) Contains(r Region) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, x := range t.regions {
		if x == r {
			return true
		}
	}
	return false
}

// SetRTT sets the symmetric round-trip time between two regions.
func (t *Topology) SetRTT(a, b Region, rtt time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rtt[[2]Region{a, b}] = rtt
	t.rtt[[2]Region{b, a}] = rtt
}

// RTT returns the round-trip time between two regions. Same-region RTTs are
// 500µs (intra-region network).
func (t *Topology) RTT(a, b Region) time.Duration {
	if a == b {
		return 500 * time.Microsecond
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if d, ok := t.rtt[[2]Region{a, b}]; ok {
		return d
	}
	// Unknown pairs default to a conservative intercontinental RTT.
	return 150 * time.Millisecond
}

// SampleRTT draws a jittered RTT between two regions.
func (t *Topology) SampleRTT(rng *rand.Rand, a, b Region) time.Duration {
	return randutil.Jitter(rng, t.RTT(a, b), t.jitterFrac)
}

// Nearest returns the region in the topology with the lowest RTT from the
// given origin region (which may be outside the topology).
func (t *Topology) Nearest(origin Region, among []Region) Region {
	if len(among) == 0 {
		return ""
	}
	best := among[0]
	bestRTT := t.RTT(origin, best)
	for _, r := range among[1:] {
		if d := t.RTT(origin, r); d < bestRTT {
			best = r
			bestRTT = d
		}
	}
	return best
}

// DNS provides the tenant's connection endpoints: a per-region name that
// always routes to that region, and a global name that geo-routes to the
// nearest region in the tenant's selection (§4.2.5).
type DNS struct {
	topology *Topology
}

// NewDNS returns a DNS resolver over the topology.
func NewDNS(t *Topology) *DNS { return &DNS{topology: t} }

// RegionalName returns the per-region DNS name for a tenant cluster.
func (d *DNS) RegionalName(tenantName string, r Region) string {
	return fmt.Sprintf("%s.%s.serverless.example.com", tenantName, r)
}

// GlobalName returns the tenant's geo-routed global DNS name.
func (d *DNS) GlobalName(tenantName string) string {
	return fmt.Sprintf("%s.serverless.example.com", tenantName)
}

// Resolve routes a connection: a regional name goes to its region; the
// global name goes to the nearest of the tenant's selected regions from the
// client's origin.
func (d *DNS) Resolve(name string, origin Region, tenantRegions []Region) (Region, error) {
	if len(tenantRegions) == 0 {
		return "", fmt.Errorf("region: tenant has no regions configured")
	}
	for _, r := range d.topology.Regions() {
		suffix := fmt.Sprintf(".%s.serverless.example.com", r)
		if len(name) > len(suffix) && name[len(name)-len(suffix):] == suffix {
			for _, tr := range tenantRegions {
				if tr == r {
					return r, nil
				}
			}
			return "", fmt.Errorf("region: tenant not present in %s", r)
		}
	}
	return d.topology.Nearest(origin, tenantRegions), nil
}

// LeasePlacement answers where a table's leaseholder lives for an access
// from a given region, under a locality setting. This is the latency kernel
// of the multi-region cold-start analysis (§3.2.5): a read blocks on the
// leaseholder region unless the table is GLOBAL; a write blocks on the
// leaseholder region unless the table is REGIONAL BY ROW (the row's home is
// the writing region).
type LeasePlacement struct {
	Locality Locality
	// Home is the leaseholder region for REGIONAL BY TABLE tables.
	Home Region
}

// ReadRTT returns the network round trips a consistent read from the given
// region pays.
func (p LeasePlacement) ReadRTT(t *Topology, from Region) time.Duration {
	switch p.Locality {
	case LocalityGlobal:
		// Global tables serve consistent local reads.
		return t.RTT(from, from)
	case LocalityRegionalByRow:
		// The rows a node reads at startup are its own region's rows.
		return t.RTT(from, from)
	default:
		return t.RTT(from, p.Home)
	}
}

// WriteRTT returns the network round trips a write from the given region
// pays.
func (p LeasePlacement) WriteRTT(t *Topology, from Region) time.Duration {
	switch p.Locality {
	case LocalityGlobal:
		// Global tables pay a cross-region commit wave: the farthest
		// region's RTT bounds the write.
		var max time.Duration
		for _, r := range t.Regions() {
			if d := t.RTT(from, r); d > max {
				max = d
			}
		}
		return max
	case LocalityRegionalByRow:
		// The node writes its own region's row locally.
		return t.RTT(from, from)
	default:
		return t.RTT(from, p.Home)
	}
}
