package metric

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements a Prometheus-style text exposition of a Registry:
// every registered metric — counters, gauges, histograms (with cumulative
// _bucket{le=...} lines plus _sum/_count so scraped rates, averages, and
// quantile estimates all work), labeled vectors, and time series — rendered
// in deterministic sorted name order. Dots in registered names become
// underscores (the registry's `subsystem.name` convention maps onto
// Prometheus's `subsystem_name`), and an optional label set distinguishes
// multiple registries sharing one page (e.g. one per region).

// expositionName converts a registered `subsystem.name` to the exposed
// `subsystem_name` form.
func expositionName(name string) string {
	return strings.ReplaceAll(name, ".", "_")
}

// formatLabels renders a label set as `{k="v",...}` with keys sorted,
// or "" when empty. extra (e.g. a quantile label) is appended last.
func formatLabels(labels map[string]string, extra string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys)+1)
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", k, labels[k]))
	}
	if extra != "" {
		parts = append(parts, extra)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteExposition writes every registered metric in Prometheus-style
// text format, in sorted name order.
func (r *Registry) WriteExposition(w io.Writer) error {
	return r.WriteExpositionLabels(w, nil)
}

// WriteExpositionLabels is WriteExposition with a label set attached to
// every exposed line, so several registries (one per region, say) can
// share one exposition page without name collisions.
func (r *Registry) WriteExpositionLabels(w io.Writer, labels map[string]string) error {
	var b strings.Builder
	for _, name := range r.Names() {
		m := r.Get(name)
		en := expositionName(name)
		ls := formatLabels(labels, "")
		switch v := m.(type) {
		case *Counter:
			fmt.Fprintf(&b, "# TYPE %s counter\n", en)
			fmt.Fprintf(&b, "%s%s %d\n", en, ls, v.Value())
		case *Gauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n", en)
			fmt.Fprintf(&b, "%s%s %s\n", en, ls, formatFloat(v.Value()))
		case *Histogram:
			fmt.Fprintf(&b, "# TYPE %s histogram\n", en)
			writeHistogramLines(&b, en, labels, v.Snapshot())
		case *CounterVec:
			fmt.Fprintf(&b, "# TYPE %s counter\n", en)
			keys := v.Keys()
			v.Each(func(values []string, c *Counter) {
				fmt.Fprintf(&b, "%s%s %d\n", en, formatLabels(mergeLabels(labels, keys, values), ""), c.Value())
			})
		case *GaugeVec:
			fmt.Fprintf(&b, "# TYPE %s gauge\n", en)
			keys := v.Keys()
			v.Each(func(values []string, g *Gauge) {
				fmt.Fprintf(&b, "%s%s %s\n", en, formatLabels(mergeLabels(labels, keys, values), ""), formatFloat(g.Value()))
			})
		case *HistogramVec:
			fmt.Fprintf(&b, "# TYPE %s histogram\n", en)
			keys := v.Keys()
			v.Each(func(values []string, h *Histogram) {
				writeHistogramLines(&b, en, mergeLabels(labels, keys, values), h.Snapshot())
			})
		case *TimeSeries:
			var latest float64
			if s, ok := v.Latest(); ok {
				latest = s.Value
			}
			fmt.Fprintf(&b, "# TYPE %s gauge\n", en)
			fmt.Fprintf(&b, "%s%s %s\n", en, ls, formatFloat(latest))
			fmt.Fprintf(&b, "%s_samples%s %d\n", en, ls, v.Len())
		default:
			fmt.Fprintf(&b, "# %s: unexposable metric type %T\n", en, m)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// mergeLabels overlays a vector child's key/value pairs onto a base label
// set (the child wins on collision).
func mergeLabels(base map[string]string, keys, values []string) map[string]string {
	out := make(map[string]string, len(base)+len(keys))
	for k, v := range base {
		out[k] = v
	}
	for i, k := range keys {
		out[k] = values[i]
	}
	return out
}

// writeHistogramLines renders one histogram series in Prometheus histogram
// form: cumulative _bucket{le=...} lines (bounds in seconds), then _sum and
// _count so scraped averages work.
func writeHistogramLines(b *strings.Builder, en string, labels map[string]string, s Summary) {
	for _, bc := range s.Buckets {
		le := fmt.Sprintf("le=%q", formatFloat(bc.UpperBound.Seconds()))
		fmt.Fprintf(b, "%s_bucket%s %d\n", en, formatLabels(labels, le), bc.Count)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", en, formatLabels(labels, `le="+Inf"`), s.Count)
	fmt.Fprintf(b, "%s_sum%s %s\n", en, formatLabels(labels, ""), formatFloat(s.Sum.Seconds()))
	fmt.Fprintf(b, "%s_count%s %d\n", en, formatLabels(labels, ""), s.Count)
}
