package metric

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements a Prometheus-style text exposition of a Registry:
// every registered metric — counters, gauges, histograms (as summaries
// with p50/p95/p99), and time series — rendered in deterministic sorted
// name order. Dots in registered names become underscores (the
// registry's `subsystem.name` convention maps onto Prometheus's
// `subsystem_name`), and an optional label set distinguishes multiple
// registries sharing one page (e.g. one per region).

// expositionName converts a registered `subsystem.name` to the exposed
// `subsystem_name` form.
func expositionName(name string) string {
	return strings.ReplaceAll(name, ".", "_")
}

// formatLabels renders a label set as `{k="v",...}` with keys sorted,
// or "" when empty. extra (e.g. a quantile label) is appended last.
func formatLabels(labels map[string]string, extra string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys)+1)
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", k, labels[k]))
	}
	if extra != "" {
		parts = append(parts, extra)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteExposition writes every registered metric in Prometheus-style
// text format, in sorted name order.
func (r *Registry) WriteExposition(w io.Writer) error {
	return r.WriteExpositionLabels(w, nil)
}

// WriteExpositionLabels is WriteExposition with a label set attached to
// every exposed line, so several registries (one per region, say) can
// share one exposition page without name collisions.
func (r *Registry) WriteExpositionLabels(w io.Writer, labels map[string]string) error {
	var b strings.Builder
	for _, name := range r.Names() {
		m := r.Get(name)
		en := expositionName(name)
		ls := formatLabels(labels, "")
		switch v := m.(type) {
		case *Counter:
			fmt.Fprintf(&b, "# TYPE %s counter\n", en)
			fmt.Fprintf(&b, "%s%s %d\n", en, ls, v.Value())
		case *Gauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n", en)
			fmt.Fprintf(&b, "%s%s %s\n", en, ls, formatFloat(v.Value()))
		case *Histogram:
			s := v.Snapshot()
			fmt.Fprintf(&b, "# TYPE %s summary\n", en)
			for _, q := range []struct {
				label string
				d     float64
			}{
				{`quantile="0.5"`, s.P50.Seconds()},
				{`quantile="0.95"`, s.P95.Seconds()},
				{`quantile="0.99"`, s.P99.Seconds()},
			} {
				fmt.Fprintf(&b, "%s%s %s\n", en, formatLabels(labels, q.label), formatFloat(q.d))
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", en, ls, formatFloat(s.Sum.Seconds()))
			fmt.Fprintf(&b, "%s_count%s %d\n", en, ls, s.Count)
		case *TimeSeries:
			var latest float64
			if s, ok := v.Latest(); ok {
				latest = s.Value
			}
			fmt.Fprintf(&b, "# TYPE %s gauge\n", en)
			fmt.Fprintf(&b, "%s%s %s\n", en, ls, formatFloat(latest))
			fmt.Fprintf(&b, "%s_samples%s %d\n", en, ls, v.Len())
		default:
			fmt.Fprintf(&b, "# %s: unexposable metric type %T\n", en, m)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
