package metric

import (
	"testing"
	"time"
)

func TestTimeSeriesWindowBoundaries(t *testing.T) {
	ts := NewTimeSeries(0)
	base := time.Unix(100, 0)
	ts.Add(base, 1)                      // exactly now-window: excluded
	ts.Add(base.Add(time.Second), 2)     // inside
	ts.Add(base.Add(5*time.Second), 3)   // exactly now: included
	ts.Add(base.Add(6*time.Second), 100) // after now: excluded

	now := base.Add(5 * time.Second)
	// The window is the half-open interval (now-window, now].
	if got := ts.WindowAvg(now, 5*time.Second); got != 2.5 {
		t.Fatalf("WindowAvg = %f, want 2.5 (boundary sample at now-window must be excluded, at now included)", got)
	}
	if got := ts.WindowMax(now, 5*time.Second); got != 3 {
		t.Fatalf("WindowMax = %f, want 3 (sample after now must be excluded)", got)
	}
}

func TestTimeSeriesWindowMaxNegativeValues(t *testing.T) {
	ts := NewTimeSeries(0)
	base := time.Unix(0, 0)
	ts.Add(base.Add(time.Second), -5)
	ts.Add(base.Add(2*time.Second), -2)
	// All values negative: the max is the least negative, not the zero
	// "no samples" sentinel.
	if got := ts.WindowMax(base.Add(2*time.Second), 5*time.Second); got != -2 {
		t.Fatalf("WindowMax = %f, want -2", got)
	}
}

func TestTimeSeriesZeroRetentionKeepsEverything(t *testing.T) {
	ts := NewTimeSeries(0)
	base := time.Unix(0, 0)
	for i := 0; i < 1000; i++ {
		ts.Add(base.Add(time.Duration(i)*time.Hour), float64(i))
	}
	if ts.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000 (zero retention must keep all samples)", ts.Len())
	}
}

func TestTimeSeriesRetentionRelativeToNewest(t *testing.T) {
	ts := NewTimeSeries(time.Minute)
	base := time.Unix(0, 0)
	ts.Add(base, 1)
	ts.Add(base.Add(30*time.Second), 2)
	// Both within a minute of the newest sample.
	if ts.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ts.Len())
	}
	// A sample two minutes later evicts both earlier ones.
	ts.Add(base.Add(150*time.Second), 3)
	samples := ts.Samples()
	if len(samples) != 1 || samples[0].Value != 3 {
		t.Fatalf("samples after trim = %+v, want only the newest", samples)
	}
}

func TestTimeSeriesSamplesInsertionOrder(t *testing.T) {
	ts := NewTimeSeries(0)
	base := time.Unix(0, 0)
	ts.Add(base.Add(2*time.Second), 2)
	ts.Add(base.Add(1*time.Second), 1) // out of order, still accepted
	ts.Add(base.Add(3*time.Second), 3)
	got := ts.Samples()
	if len(got) != 3 || got[0].Value != 2 || got[1].Value != 1 || got[2].Value != 3 {
		t.Fatalf("Samples() = %+v, want insertion order 2,1,3", got)
	}
	latest, ok := ts.Latest()
	if !ok || latest.Value != 3 {
		t.Fatalf("Latest = %+v ok=%v, want the last-added sample", latest, ok)
	}
}
