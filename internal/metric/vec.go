package metric

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// This file implements labeled metric vectors: families of child metrics
// keyed by a small, fixed set of label keys (the tenant dimension, mostly).
// Cardinality is hard-capped: once a vector holds maxCardinality distinct
// label sets, every further label set is routed to a single shared
// __overflow__ child instead of allocating a new one. Which label sets land
// in overflow is first-arrival order, so under a deterministic workload the
// split is deterministic too — the same property every other part of this
// codebase relies on for byte-identical same-seed output.

// OverflowLabelValue is the label value under which a vector aggregates all
// label sets beyond its cardinality cap.
const OverflowLabelValue = "__overflow__"

// DefaultVecCardinality is the per-vector cap on distinct label sets. 2048
// comfortably holds the "thousands of tenants per cluster" regime the paper
// targets while bounding worst-case memory to a few MB per vector.
const DefaultVecCardinality = 2048

// labelKeyRE is the shape every label key must have: lowercase snake_case.
// crdb-lint's metricnames check additionally restricts keys to a small
// allowed vocabulary at registration sites.
var labelKeyRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// vecSep joins label values into a child key. 0xff cannot appear in UTF-8
// text, so joined keys cannot collide across value boundaries.
const vecSep = "\xff"

// vecChild pairs a child metric with the label values that key it.
type vecChild struct {
	values []string
	m      any
}

// vecCore holds the label-set bookkeeping shared by CounterVec, GaugeVec,
// and HistogramVec.
type vecCore struct {
	keys []string

	mu       sync.Mutex
	max      int
	children map[string]*vecChild
	overflow *vecChild // lazily created once the cap is hit
	absorbed int64     // distinct label sets routed to overflow
}

func newVecCore(name string, keys []string) vecCore {
	if len(keys) == 0 {
		panic(fmt.Sprintf("metric: vector %q needs at least one label key", name))
	}
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if !labelKeyRE.MatchString(k) {
			panic(fmt.Sprintf("metric: vector %q label key %q is not lowercase snake_case", name, k))
		}
		if seen[k] {
			panic(fmt.Sprintf("metric: vector %q repeats label key %q", name, k))
		}
		seen[k] = true
	}
	return vecCore{
		keys:     append([]string(nil), keys...),
		max:      DefaultVecCardinality,
		children: make(map[string]*vecChild),
	}
}

// Keys returns the vector's label keys in declaration order.
func (v *vecCore) Keys() []string { return append([]string(nil), v.keys...) }

// SetMaxCardinality lowers (or raises) the cap on distinct label sets.
// Existing children are kept even if they exceed a lowered cap; only new
// label sets are affected.
func (v *vecCore) SetMaxCardinality(n int) {
	if n < 1 {
		n = 1
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.max = n
}

// Len returns the number of distinct (non-overflow) children.
func (v *vecCore) Len() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.children)
}

// Absorbed returns how many distinct label sets have been routed to the
// overflow child.
func (v *vecCore) Absorbed() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.absorbed
}

// child returns the metric for the given label values, creating it with
// mk on first use. Past the cardinality cap it returns the shared overflow
// child instead.
func (v *vecCore) child(values []string, mk func() any) any {
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("metric: vector expects %d label values, got %d", len(v.keys), len(values)))
	}
	k := strings.Join(values, vecSep)
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[k]; ok {
		return c.m
	}
	if len(v.children) >= v.max {
		// An explicit __overflow__ label set maps to the same child, so the
		// overflow bucket is addressable without inflating absorbed counts.
		explicit := true
		for _, val := range values {
			if val != OverflowLabelValue {
				explicit = false
				break
			}
		}
		if !explicit {
			v.absorbed++
		}
		if v.overflow == nil {
			ov := make([]string, len(v.keys))
			for i := range ov {
				ov[i] = OverflowLabelValue
			}
			v.overflow = &vecChild{values: ov, m: mk()}
		}
		return v.overflow.m
	}
	c := &vecChild{values: append([]string(nil), values...), m: mk()}
	v.children[k] = c
	return c.m
}

// peek returns the child for the given label values without creating it:
// nil when the label set has never been observed. Explicit overflow values
// resolve to the overflow child if one exists.
func (v *vecCore) peek(values []string) any {
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("metric: vector expects %d label values, got %d", len(v.keys), len(values)))
	}
	k := strings.Join(values, vecSep)
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[k]; ok {
		return c.m
	}
	if v.overflow != nil && k == strings.Join(v.overflow.values, vecSep) {
		return v.overflow.m
	}
	return nil
}

// each calls fn for every child in sorted label-value order, with the
// overflow child (if any) last. The snapshot is taken under the lock; fn
// runs outside it.
func (v *vecCore) each(fn func(values []string, m any)) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	snap := make([]*vecChild, 0, len(keys)+1)
	for _, k := range keys {
		snap = append(snap, v.children[k])
	}
	if v.overflow != nil {
		snap = append(snap, v.overflow)
	}
	v.mu.Unlock()
	for _, c := range snap {
		fn(c.values, c.m)
	}
}

// CounterVec is a family of Counters keyed by label values.
type CounterVec struct {
	vecCore
}

// NewCounterVec registers and returns a labeled counter family.
func (r *Registry) NewCounterVec(name string, labelKeys ...string) *CounterVec {
	v := &CounterVec{vecCore: newVecCore(name, labelKeys)}
	r.MustRegister(name, v)
	return v
}

// With returns the child counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	return v.child(values, func() any { return &Counter{} }).(*Counter)
}

// Peek returns the child counter for the given label values, or nil if
// that label set has never been observed. Unlike With, it never creates a
// series, so read paths (debug pages) don't perturb the exposition.
func (v *CounterVec) Peek(values ...string) *Counter {
	m := v.peek(values)
	if m == nil {
		return nil
	}
	return m.(*Counter)
}

// Each calls fn for every child in sorted label-value order.
func (v *CounterVec) Each(fn func(values []string, c *Counter)) {
	v.each(func(values []string, m any) { fn(values, m.(*Counter)) })
}

// GaugeVec is a family of Gauges keyed by label values.
type GaugeVec struct {
	vecCore
}

// NewGaugeVec registers and returns a labeled gauge family.
func (r *Registry) NewGaugeVec(name string, labelKeys ...string) *GaugeVec {
	v := &GaugeVec{vecCore: newVecCore(name, labelKeys)}
	r.MustRegister(name, v)
	return v
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// Peek returns the child gauge for the given label values, or nil if that
// label set has never been observed.
func (v *GaugeVec) Peek(values ...string) *Gauge {
	m := v.peek(values)
	if m == nil {
		return nil
	}
	return m.(*Gauge)
}

// Each calls fn for every child in sorted label-value order.
func (v *GaugeVec) Each(fn func(values []string, g *Gauge)) {
	v.each(func(values []string, m any) { fn(values, m.(*Gauge)) })
}

// HistogramVec is a family of Histograms keyed by label values.
type HistogramVec struct {
	vecCore
}

// NewHistogramVec registers and returns a labeled histogram family.
func (r *Registry) NewHistogramVec(name string, labelKeys ...string) *HistogramVec {
	v := &HistogramVec{vecCore: newVecCore(name, labelKeys)}
	r.MustRegister(name, v)
	return v
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.child(values, func() any { return NewHistogram() }).(*Histogram)
}

// Peek returns the child histogram for the given label values, or nil if
// that label set has never been observed.
func (v *HistogramVec) Peek(values ...string) *Histogram {
	m := v.peek(values)
	if m == nil {
		return nil
	}
	return m.(*Histogram)
}

// Each calls fn for every child in sorted label-value order.
func (v *HistogramVec) Each(fn func(values []string, h *Histogram)) {
	v.each(func(values []string, m any) { fn(values, m.(*Histogram)) })
}
