package metric

import (
	"fmt"
	"regexp"
	"sort"
	"sync"
	"time"
)

// NameRE is the metric naming convention: lowercase dot-separated
// `subsystem.name`, snake_case within each component, at least two
// components. crdb-lint's metricnames check enforces it statically at every
// registration site; MustRegister enforces it at runtime for names built
// dynamically behind a //lint:allow.
var NameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$`)

// Registry maps stable metric names to metric objects (*Counter, *Gauge,
// *Histogram, *TimeSeries). Each subsystem registers its metrics once at
// construction; registering the same name twice panics, because a second
// registration always means two components believe they own the metric.
// Safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]any
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

// MustRegister adds m under name, panicking on a malformed name or a
// duplicate registration. Misregistration is a programming error caught at
// component construction (and statically by crdb-lint), not a runtime
// condition worth an error path.
func (r *Registry) MustRegister(name string, m any) {
	if !NameRE.MatchString(name) {
		panic(fmt.Sprintf("metric: name %q does not follow the subsystem.name convention", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.metrics[name]; ok {
		panic(fmt.Sprintf("metric: %q registered twice", name))
	}
	r.metrics[name] = m
}

// NewCounter registers and returns a fresh Counter.
func (r *Registry) NewCounter(name string) *Counter {
	c := &Counter{}
	r.MustRegister(name, c)
	return c
}

// NewGauge registers and returns a fresh Gauge.
func (r *Registry) NewGauge(name string) *Gauge {
	g := &Gauge{}
	r.MustRegister(name, g)
	return g
}

// NewHistogram registers and returns a fresh Histogram.
func (r *Registry) NewHistogram(name string) *Histogram {
	h := NewHistogram()
	r.MustRegister(name, h)
	return h
}

// NewTimeSeries registers and returns a fresh TimeSeries with the given
// retention.
func (r *Registry) NewTimeSeries(name string, retention time.Duration) *TimeSeries {
	ts := NewTimeSeries(retention)
	r.MustRegister(name, ts)
	return ts
}

// Get returns the metric registered under name, or nil.
func (r *Registry) Get(name string) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.metrics[name]
}

// Names returns every registered name, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Each calls fn for every registered metric in name order.
func (r *Registry) Each(fn func(name string, m any)) {
	for _, n := range r.Names() {
		if m := r.Get(n); m != nil {
			fn(n, m)
		}
	}
}
