package metric

import (
	"sync"
	"time"
)

// Sample is one timestamped observation in a TimeSeries.
type Sample struct {
	At    time.Time
	Value float64
}

// TimeSeries stores timestamped float64 samples and answers windowed
// average/maximum queries. The autoscaler (§4.2.3) computes its target from
// the 5-minute moving average and 5-minute peak of per-tenant CPU usage; this
// type provides exactly those queries. It is safe for concurrent use.
type TimeSeries struct {
	mu        sync.Mutex
	samples   []Sample
	retention time.Duration
}

// NewTimeSeries returns a TimeSeries that retains samples for at least the
// given duration (relative to the newest sample). A zero retention keeps
// everything.
func NewTimeSeries(retention time.Duration) *TimeSeries {
	return &TimeSeries{retention: retention}
}

// Add appends a sample. Samples should be added in non-decreasing time
// order; out-of-order samples are accepted but windowed queries assume
// ordering for trimming.
func (ts *TimeSeries) Add(at time.Time, v float64) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.samples = append(ts.samples, Sample{At: at, Value: v})
	if ts.retention > 0 {
		cutoff := at.Add(-ts.retention)
		i := 0
		for i < len(ts.samples) && ts.samples[i].At.Before(cutoff) {
			i++
		}
		if i > 0 {
			ts.samples = append(ts.samples[:0], ts.samples[i:]...)
		}
	}
}

// Len returns the number of retained samples.
func (ts *TimeSeries) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.samples)
}

// Samples returns a copy of all retained samples in insertion order.
func (ts *TimeSeries) Samples() []Sample {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]Sample, len(ts.samples))
	copy(out, ts.samples)
	return out
}

// Latest returns the most recent sample and true, or a zero Sample and false
// if the series is empty.
func (ts *TimeSeries) Latest() (Sample, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if len(ts.samples) == 0 {
		return Sample{}, false
	}
	return ts.samples[len(ts.samples)-1], true
}

// WindowAvg returns the mean of samples with At in (now-window, now]. It
// returns 0 if the window contains no samples.
func (ts *TimeSeries) WindowAvg(now time.Time, window time.Duration) float64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	cutoff := now.Add(-window)
	var sum float64
	var n int
	for _, s := range ts.samples {
		if s.At.After(cutoff) && !s.At.After(now) {
			sum += s.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WindowMax returns the maximum of samples with At in (now-window, now], or 0
// if the window contains no samples.
func (ts *TimeSeries) WindowMax(now time.Time, window time.Duration) float64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	cutoff := now.Add(-window)
	var max float64
	var seen bool
	for _, s := range ts.samples {
		if s.At.After(cutoff) && !s.At.After(now) {
			if !seen || s.Value > max {
				max = s.Value
				seen = true
			}
		}
	}
	return max
}
