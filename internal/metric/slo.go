package metric

import (
	"fmt"
	"time"
)

// This file implements per-tenant SLO tracking with multi-window burn
// rates. An Objective declares what "good" means (latency at or under a
// threshold, and no error) and what fraction of requests must be good (the
// target). The burn rate over a window is
//
//	burn(W) = badFraction(W) / (1 - target)
//
// i.e. how many times faster than "exactly exhausting the error budget"
// the tenant is currently burning it. burn = 1 means the budget drains
// exactly at the sustainable pace; burn = 10 over 5m is the classic page
// condition. Two windows (5m and 1h) distinguish a fast spike from a slow
// leak, per the standard multi-window multi-burn-rate alerting scheme.

// Objective declares a per-tenant latency/availability objective.
type Objective struct {
	// LatencyThreshold is the latency at or under which a successful
	// request counts as good.
	LatencyThreshold time.Duration
	// Target is the required good fraction, e.g. 0.999.
	Target float64
}

// DefaultObjective is the objective tenants get unless one is declared:
// 99.9% of requests good within 100ms.
func DefaultObjective() Objective {
	return Objective{LatencyThreshold: 100 * time.Millisecond, Target: 0.999}
}

// String renders the objective compactly, e.g. "99.9% < 100ms".
func (o Objective) String() string {
	return fmt.Sprintf("%g%% < %v", o.Target*100, o.LatencyThreshold)
}

// Burn windows for the multi-window burn-rate computation.
const (
	BurnShortWindow = 5 * time.Minute
	BurnLongWindow  = time.Hour
)

// SLO tracks one tenant's request outcomes against an Objective.
type SLO struct {
	obj Objective
	win *Windowed
}

// NewSLO returns an SLO tracker over a fresh window ring.
func NewSLO(obj Objective, width time.Duration, n int) *SLO {
	if obj.Target <= 0 || obj.Target >= 1 {
		obj = DefaultObjective()
	}
	return &SLO{obj: obj, win: NewWindowed(width, n)}
}

// Objective returns the declared objective.
func (s *SLO) Objective() Objective { return s.obj }

// Record classifies one request: good iff it did not error and its latency
// is at or under the objective's threshold.
func (s *SLO) Record(now time.Time, latency time.Duration, errored bool) {
	bad := errored || latency > s.obj.LatencyThreshold
	s.win.Observe(now, latency, bad)
}

// GoodFraction returns the fraction of good requests over the trailing
// span, or 1 when there were none (an idle tenant is not violating its
// SLO).
func (s *SLO) GoodFraction(now time.Time, span time.Duration) float64 {
	count, bad, _ := s.win.Totals(now, span)
	if count == 0 {
		return 1
	}
	return 1 - float64(bad)/float64(count)
}

// BurnRate returns the error-budget burn rate over the trailing span: the
// bad fraction divided by the budget (1 - target). 0 when idle.
func (s *SLO) BurnRate(now time.Time, span time.Duration) float64 {
	count, bad, _ := s.win.Totals(now, span)
	if count == 0 {
		return 0
	}
	budget := 1 - s.obj.Target
	return (float64(bad) / float64(count)) / budget
}
