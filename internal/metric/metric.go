// Package metric implements the lightweight metrics primitives the system
// needs: latency histograms with percentile extraction, counters, gauges, and
// windowed time series. The autoscaler's 5-minute average/peak CPU inputs
// (§4.2.3 of the paper) and every latency table in the evaluation are
// computed with these types.
package metric

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram records durations into exponential buckets and reports
// percentiles. It is safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	counts  []uint64
	total   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	samples []time.Duration // exact values kept up to sampleCap for precise quantiles
}

// sampleCap bounds the exact-sample reservoir. Below the cap percentiles are
// exact; above it they fall back to bucket interpolation.
const sampleCap = 1 << 16

// numBuckets covers 1ns..~18h with ~4 buckets per doubling.
const numBuckets = 64 * 4

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, numBuckets), min: math.MaxInt64}
}

func bucketFor(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	// 4 sub-buckets per power of two.
	f := math.Log2(float64(d)) * 4
	b := int(f)
	if b < 0 {
		b = 0
	}
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

func bucketUpper(b int) time.Duration {
	return time.Duration(math.Pow(2, float64(b+1)/4))
}

// Record adds a single duration observation.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.counts[bucketFor(d)]++
	h.total++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	if len(h.samples) < sampleCap {
		h.samples = append(h.samples, d)
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Mean returns the average of all observations, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 if empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the q-th quantile (q in [0,1]) of the recorded values.
// While the reservoir holds every sample the result is exact; afterwards it
// is interpolated from bucket boundaries.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantilesLocked(q)[0]
}

// quantilesLocked computes several quantiles with a single pass (and, on
// the exact-sample path, a single sort). Caller must hold h.mu.
func (h *Histogram) quantilesLocked(qs ...float64) []time.Duration {
	out := make([]time.Duration, len(qs))
	if h.total == 0 {
		return out
	}
	for i, q := range qs {
		if q < 0 {
			qs[i] = 0
		}
		if q > 1 {
			qs[i] = 1
		}
	}
	if uint64(len(h.samples)) == h.total {
		s := append([]time.Duration(nil), h.samples...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		for i, q := range qs {
			out[i] = s[int(q*float64(len(s)-1))]
		}
		return out
	}
	for i, q := range qs {
		target := uint64(q * float64(h.total))
		var cum uint64
		v := h.max
		for b, c := range h.counts {
			cum += c
			if cum > target {
				v = bucketUpper(b)
				break
			}
		}
		out[i] = v
	}
	return out
}

// P50 is shorthand for Quantile(0.50).
func (h *Histogram) P50() time.Duration { return h.Quantile(0.50) }

// P99 is shorthand for Quantile(0.99).
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }

// Snapshot returns a point-in-time summary of the histogram. The whole
// summary is computed under a single acquisition of the lock, so it is
// internally consistent even under concurrent Record calls.
func (h *Histogram) Snapshot() Summary {
	h.mu.Lock()
	defer h.mu.Unlock()
	var mean time.Duration
	if h.total > 0 {
		mean = h.sum / time.Duration(h.total)
	}
	quants := h.quantilesLocked(0.50, 0.95, 0.99)
	return Summary{
		Count:   h.total,
		Sum:     h.sum,
		Mean:    mean,
		P50:     quants[0],
		P95:     quants[1],
		P99:     quants[2],
		Max:     h.max,
		Buckets: h.cumulativeBucketsLocked(),
	}
}

// ExpositionBounds is the fixed upper-bound ladder histograms are folded
// onto for Prometheus `_bucket{le=...}` exposition. Coarser than the
// internal bucket space on purpose: scrape output stays small and the
// ladder is identical for every histogram, so recording rules can
// aggregate across them.
var ExpositionBounds = []time.Duration{
	time.Millisecond,
	4 * time.Millisecond,
	16 * time.Millisecond,
	64 * time.Millisecond,
	256 * time.Millisecond,
	time.Second,
	4 * time.Second,
	16 * time.Second,
}

// cumulativeBucketsLocked folds the internal exponential buckets onto
// ExpositionBounds, returning the cumulative count at or under each bound.
// Caller must hold h.mu.
func (h *Histogram) cumulativeBucketsLocked() []BucketCount {
	out := make([]BucketCount, len(ExpositionBounds))
	var cum uint64
	b := 0
	for i, bound := range ExpositionBounds {
		for b < len(h.counts) && bucketUpper(b) <= bound {
			cum += h.counts[b]
			b++
		}
		out[i] = BucketCount{UpperBound: bound, Count: cum}
	}
	return out
}

// BucketCount is one cumulative histogram bucket: the number of
// observations at or under UpperBound.
type BucketCount struct {
	UpperBound time.Duration
	Count      uint64
}

// Summary is a point-in-time latency summary.
type Summary struct {
	Count uint64
	Sum   time.Duration
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
	// Buckets holds cumulative counts on the ExpositionBounds ladder; the
	// implicit +Inf bucket equals Count.
	Buckets []BucketCount
}

// String renders the summary in a compact table-friendly form.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}

// Counter is a monotonically increasing counter safe for concurrent use.
// It sits on the per-request hot path (every span start/finish bumps
// one), so it is lock-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds delta (which must be non-negative) to the counter.
func (c *Counter) Inc(delta int64) {
	if delta < 0 {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	return c.v.Load()
}

// Gauge is a concurrent float64 gauge, stored lock-free as IEEE-754
// bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the gauge.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	return math.Float64frombits(g.bits.Load())
}
