package metric

import "testing"

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestRegistryRegisterAndGet(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("proxy.test_hits")
	c.Inc(3)
	got := r.Get("proxy.test_hits")
	if got == nil {
		t.Fatal("registered counter not found")
	}
	if got.(*Counter).Value() != 3 {
		t.Errorf("counter value = %d, want 3", got.(*Counter).Value())
	}
	names := r.Names()
	if len(names) != 1 || names[0] != "proxy.test_hits" {
		t.Errorf("Names() = %v", names)
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	r := NewRegistry()
	mustPanic(t, "no dot", func() { r.NewCounter("nodots") })
	mustPanic(t, "uppercase", func() { r.NewGauge("Proxy.Things") })
	mustPanic(t, "empty", func() { r.MustRegister("", 1) })
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("proxy.dup_check")
	mustPanic(t, "duplicate", func() { r.NewCounter("proxy.dup_check") })
}
