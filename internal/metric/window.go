package metric

import (
	"sync"
	"time"
)

// This file implements a windowed in-memory time-series store: observations
// land in clock-aligned fixed-width windows arranged in a ring, so rate and
// quantile queries over "the last 5 minutes" or "the last hour" are cheap
// scans over a handful of windows and old data ages out without any
// background goroutine. Alignment (window start = now truncated to the
// width) makes same-seed simulated runs land every observation in the same
// window, which is what keeps /debug/tenantz byte-identical across runs.

// windowBounds is the coarse latency ladder used inside windows. It is much
// smaller than the Histogram bucket space because a window ring multiplies
// it by windows x series; 16 bounds from 250µs to 8s (x2 steps) is enough
// resolution for SLO-grade p99s.
var windowBounds = func() []time.Duration {
	bounds := make([]time.Duration, 0, 16)
	for d := 250 * time.Microsecond; d <= 8*time.Second; d *= 2 {
		bounds = append(bounds, d)
	}
	return bounds
}()

func windowBucketFor(d time.Duration) int {
	for i, b := range windowBounds {
		if d <= b {
			return i
		}
	}
	return len(windowBounds) // +Inf bucket
}

// window accumulates observations whose timestamps fall in
// [start, start+width).
type window struct {
	start   time.Time
	count   uint64
	bad     uint64
	sum     time.Duration
	buckets [17]uint64 // len(windowBounds)+1; last is +Inf
}

// Windowed is a ring of aligned windows. Safe for concurrent use.
type Windowed struct {
	width time.Duration
	n     int

	mu    sync.Mutex
	slots []*window // index = (start/width) mod n; nil until first use
}

// DefaultWindowWidth and DefaultWindowCount retain one hour of 15-second
// windows — enough span for the 1h burn-rate window with 15s resolution for
// the 5m one.
const (
	DefaultWindowWidth = 15 * time.Second
	DefaultWindowCount = 240
)

// NewWindowed returns a ring of n windows of the given width.
func NewWindowed(width time.Duration, n int) *Windowed {
	if width <= 0 {
		width = DefaultWindowWidth
	}
	if n < 2 {
		n = 2
	}
	return &Windowed{width: width, n: n, slots: make([]*window, n)}
}

// Width returns the window width.
func (w *Windowed) Width() time.Duration { return w.width }

// Span returns the total retention of the ring.
func (w *Windowed) Span() time.Duration { return w.width * time.Duration(w.n) }

// slotFor returns the live window covering t, evicting a stale occupant of
// the slot if the ring has wrapped. Caller must hold w.mu.
func (w *Windowed) slotFor(t time.Time) *window {
	start := t.Truncate(w.width)
	idx := int((start.UnixNano() / int64(w.width)) % int64(w.n))
	if idx < 0 {
		idx += w.n
	}
	if s := w.slots[idx]; s != nil && s.start.Equal(start) {
		return s
	}
	s := &window{start: start}
	w.slots[idx] = s
	return s
}

// Observe records one observation at time now: its latency and whether it
// was bad (an error, or over-threshold — the caller decides).
func (w *Windowed) Observe(now time.Time, latency time.Duration, bad bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := w.slotFor(now)
	s.count++
	s.sum += latency
	s.buckets[windowBucketFor(latency)]++
	if bad {
		s.bad++
	}
}

// visit calls fn for every window in the trailing span ending at now: the
// window containing now plus the aligned windows after the cutoff. The
// cutoff itself is aligned (truncated to the width), so a window is either
// fully in or fully out — no partial-overlap double counting.
// Caller must hold w.mu.
func (w *Windowed) visit(now time.Time, span time.Duration, fn func(*window)) {
	if span > w.Span() {
		span = w.Span()
	}
	cutoffStart := now.Add(-span).Truncate(w.width)
	for _, s := range w.slots {
		if s == nil {
			continue
		}
		if s.start.After(cutoffStart) && !s.start.After(now) {
			fn(s)
		}
	}
}

// Totals returns the observation count, bad count, and latency sum over the
// trailing span ending at now.
func (w *Windowed) Totals(now time.Time, span time.Duration) (count, bad uint64, sum time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.visit(now, span, func(s *window) {
		count += s.count
		bad += s.bad
		sum += s.sum
	})
	return count, bad, sum
}

// Rate returns observations per second over the trailing span ending at now.
func (w *Windowed) Rate(now time.Time, span time.Duration) float64 {
	if span <= 0 {
		return 0
	}
	if span > w.Span() {
		span = w.Span()
	}
	count, _, _ := w.Totals(now, span)
	return float64(count) / span.Seconds()
}

// BadFraction returns the fraction of observations marked bad over the
// trailing span ending at now, or 0 when there were none.
func (w *Windowed) BadFraction(now time.Time, span time.Duration) float64 {
	count, bad, _ := w.Totals(now, span)
	if count == 0 {
		return 0
	}
	return float64(bad) / float64(count)
}

// Quantile returns the q-th latency quantile over the trailing span ending
// at now, interpolated from the coarse window ladder (the returned value is
// the upper bound of the bucket the quantile falls in).
func (w *Windowed) Quantile(now time.Time, span time.Duration, q float64) time.Duration {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var merged [17]uint64
	var total uint64
	w.visit(now, span, func(s *window) {
		for i, c := range s.buckets {
			merged[i] += c
		}
		total += s.count
	})
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	var cum uint64
	for i, c := range merged {
		cum += c
		if cum > target {
			if i < len(windowBounds) {
				return windowBounds[i]
			}
			// +Inf bucket: report one step past the ladder.
			return 2 * windowBounds[len(windowBounds)-1]
		}
	}
	return 2 * windowBounds[len(windowBounds)-1]
}
