package metric

import (
	"testing"
	"time"
)

func TestWindowedTotalsAndRate(t *testing.T) {
	w := NewWindowed(15*time.Second, 8)
	base := time.Unix(1000, 0)
	// 10 observations in the current window, 5 in the previous one.
	for i := 0; i < 5; i++ {
		w.Observe(base.Add(-20*time.Second), 10*time.Millisecond, false)
	}
	for i := 0; i < 10; i++ {
		w.Observe(base, 20*time.Millisecond, i == 0)
	}
	count, bad, sum := w.Totals(base, 15*time.Second)
	if count != 10 || bad != 1 {
		t.Fatalf("Totals(15s) = %d/%d, want 10/1", count, bad)
	}
	if sum != 200*time.Millisecond {
		t.Fatalf("sum = %v, want 200ms", sum)
	}
	count, _, _ = w.Totals(base, time.Minute)
	if count != 15 {
		t.Fatalf("Totals(1m) = %d, want 15", count)
	}
	if got := w.Rate(base, time.Minute); got != 15.0/60 {
		t.Fatalf("Rate = %v, want 0.25", got)
	}
	if got := w.BadFraction(base, 15*time.Second); got != 0.1 {
		t.Fatalf("BadFraction = %v, want 0.1", got)
	}
}

func TestWindowedRingEviction(t *testing.T) {
	w := NewWindowed(time.Second, 4)
	base := time.Unix(2000, 0)
	w.Observe(base, time.Millisecond, false)
	// Advance past the full retention: the old window's slot is reused.
	later := base.Add(10 * time.Second)
	w.Observe(later, time.Millisecond, false)
	count, _, _ := w.Totals(later, w.Span())
	if count != 1 {
		t.Fatalf("Totals after wrap = %d, want 1 (old window evicted)", count)
	}
}

func TestWindowedQuantile(t *testing.T) {
	w := NewWindowed(15*time.Second, 8)
	base := time.Unix(3000, 0)
	// 99 fast observations, 1 slow one: p50 small, p99.5 large.
	for i := 0; i < 99; i++ {
		w.Observe(base, 2*time.Millisecond, false)
	}
	w.Observe(base, 900*time.Millisecond, false)
	p50 := w.Quantile(base, time.Minute, 0.50)
	if p50 > 4*time.Millisecond {
		t.Fatalf("p50 = %v, want <= 4ms", p50)
	}
	p999 := w.Quantile(base, time.Minute, 0.999)
	if p999 < 500*time.Millisecond {
		t.Fatalf("p99.9 = %v, want >= 500ms", p999)
	}
	if got := w.Quantile(base.Add(time.Hour), time.Minute, 0.5); got != 0 {
		t.Fatalf("quantile over empty span = %v, want 0", got)
	}
}

func TestWindowedAlignmentDeterminism(t *testing.T) {
	// Two rings fed the same absolute timestamps report identical numbers:
	// windows are aligned to absolute time, not to first observation.
	run := func() (uint64, time.Duration) {
		w := NewWindowed(15*time.Second, 16)
		base := time.Unix(5000, 3)
		for i := 0; i < 100; i++ {
			w.Observe(base.Add(time.Duration(i)*time.Second), time.Duration(i)*time.Millisecond, i%7 == 0)
		}
		count, _, _ := w.Totals(base.Add(100*time.Second), 2*time.Minute)
		return count, w.Quantile(base.Add(100*time.Second), 2*time.Minute, 0.99)
	}
	c1, q1 := run()
	c2, q2 := run()
	if c1 != c2 || q1 != q2 {
		t.Fatalf("windowed results differ across identical runs: %d/%v vs %d/%v", c1, q1, c2, q2)
	}
}
