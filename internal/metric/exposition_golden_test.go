package metric

import (
	"strings"
	"testing"
	"time"
)

// TestExpositionGolden pins the exact bytes of the exposition page for a
// small registry covering every histogram line type — _bucket ladder, +Inf,
// _sum, _count — plus a labeled vector with an overflowed child. Any
// formatting drift (bucket bounds, label ordering, float rendering) fails
// here first.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("proxy.requests").Inc(7)
	r.NewHistogram("sql.exec_latency").Record(5 * time.Millisecond)
	v := r.NewCounterVec("kv.tenant_batches", "tenant")
	v.SetMaxCardinality(2)
	v.With("alpha").Inc(1)
	v.With("beta").Inc(2)
	v.With("gamma").Inc(4) // past the cap: absorbed into __overflow__

	const want = `# TYPE kv_tenant_batches counter
kv_tenant_batches{tenant="alpha"} 1
kv_tenant_batches{tenant="beta"} 2
kv_tenant_batches{tenant="__overflow__"} 4
# TYPE proxy_requests counter
proxy_requests 7
# TYPE sql_exec_latency histogram
sql_exec_latency_bucket{le="0.001"} 0
sql_exec_latency_bucket{le="0.004"} 0
sql_exec_latency_bucket{le="0.016"} 1
sql_exec_latency_bucket{le="0.064"} 1
sql_exec_latency_bucket{le="0.256"} 1
sql_exec_latency_bucket{le="1"} 1
sql_exec_latency_bucket{le="4"} 1
sql_exec_latency_bucket{le="16"} 1
sql_exec_latency_bucket{le="+Inf"} 1
sql_exec_latency_sum 0.005
sql_exec_latency_count 1
`
	var b strings.Builder
	if err := r.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != want {
		t.Fatalf("golden exposition mismatch:\n--- got\n%s\n--- want\n%s", got, want)
	}
}
