package metric

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterVecBasics(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("sql.tenant_queries", "tenant", "result")
	v.With("alpha", "ok").Inc(3)
	v.With("alpha", "ok").Inc(2)
	v.With("alpha", "error").Inc(1)
	if got := v.With("alpha", "ok").Value(); got != 5 {
		t.Fatalf("child value = %d, want 5", got)
	}
	if got := v.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	var visited []string
	v.Each(func(values []string, c *Counter) {
		visited = append(visited, fmt.Sprintf("%s/%s=%d", values[0], values[1], c.Value()))
	})
	want := []string{"alpha/error=1", "alpha/ok=5"}
	if fmt.Sprint(visited) != fmt.Sprint(want) {
		t.Fatalf("Each order = %v, want %v", visited, want)
	}
}

func TestVecPanicsOnBadSchema(t *testing.T) {
	r := NewRegistry()
	for name, fn := range map[string]func(){
		"no keys":       func() { r.NewCounterVec("a.nokeys") },
		"bad key shape": func() { r.NewGaugeVec("a.badkey", "Tenant") },
		"repeated key":  func() { r.NewHistogramVec("a.repkey", "tenant", "tenant") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
	v := r.NewCounterVec("a.ok", "tenant")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong arity: no panic")
			}
		}()
		v.With("x", "y")
	}()
}

// TestVecCardinalityGuard is the cap+1 guard: registering one more label
// set than the cap routes the excess to a single shared __overflow__ child
// instead of growing without bound.
func TestVecCardinalityGuard(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("kv.tenant_batches", "tenant")
	const capN = 16
	v.SetMaxCardinality(capN)
	for i := 0; i < capN+1; i++ {
		v.With(fmt.Sprintf("tenant-%04d", i)).Inc(1)
	}
	if got := v.Len(); got != capN {
		t.Fatalf("Len = %d, want the cap %d", got, capN)
	}
	if got := v.Absorbed(); got != 1 {
		t.Fatalf("Absorbed = %d, want 1", got)
	}
	// Everything past the cap shares one child, however many label sets
	// arrive.
	for i := capN + 1; i < 4*capN; i++ {
		v.With(fmt.Sprintf("tenant-%04d", i)).Inc(1)
	}
	if got := v.Len(); got != capN {
		t.Fatalf("Len grew past the cap: %d", got)
	}
	if got := v.With(OverflowLabelValue).Value(); got != int64(3*capN) {
		t.Fatalf("overflow child = %d, want %d", got, 3*capN)
	}
	// Explicitly addressing the overflow bucket does not count as a new
	// absorbed label set.
	if got := v.Absorbed(); got != int64(3*capN) {
		t.Fatalf("Absorbed = %d, want %d", got, 3*capN)
	}
	var last []string
	v.Each(func(values []string, c *Counter) { last = values })
	if len(last) != 1 || last[0] != OverflowLabelValue {
		t.Fatalf("overflow child not iterated last: %v", last)
	}
}

// TestVecOverflowDeterministic: under a fixed arrival order the
// overflow split and the exposition bytes are identical run to run.
func TestVecOverflowDeterministic(t *testing.T) {
	render := func() string {
		r := NewRegistry()
		v := r.NewCounterVec("kv.tenant_batches", "tenant")
		v.SetMaxCardinality(4)
		for i := 0; i < 10; i++ {
			v.With(fmt.Sprintf("t%02d", i)).Inc(int64(i + 1))
		}
		var b strings.Builder
		if err := r.WriteExposition(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := render()
	for i := 0; i < 5; i++ {
		if got := render(); got != first {
			t.Fatalf("overflow exposition not deterministic:\n--- first\n%s\n--- run %d\n%s", first, i, got)
		}
	}
	if !strings.Contains(first, `kv_tenant_batches{tenant="__overflow__"} 45`) {
		t.Fatalf("overflow child missing or wrong (want 5+...+10=45):\n%s", first)
	}
}

func TestVecConcurrentUse(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("kv.tenant_batches", "tenant")
	v.SetMaxCardinality(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				v.With(fmt.Sprintf("t%d", i%16)).Inc(1)
			}
		}(g)
	}
	wg.Wait()
	var total int64
	v.Each(func(_ []string, c *Counter) { total += c.Value() })
	if total != 800 {
		t.Fatalf("total across children = %d, want 800", total)
	}
}

func TestHistogramAndGaugeVec(t *testing.T) {
	r := NewRegistry()
	hv := r.NewHistogramVec("sql.tenant_exec_latency", "tenant")
	for i := 1; i <= 10; i++ {
		hv.With("alpha").Record(5e6) // 5ms
	}
	if got := hv.With("alpha").Count(); got != 10 {
		t.Fatalf("histogram child count = %d, want 10", got)
	}
	gv := r.NewGaugeVec("tenantcost.tenant_ru", "tenant")
	gv.With("alpha").Add(2.5)
	gv.With("alpha").Add(1.5)
	if got := gv.With("alpha").Value(); got != 4 {
		t.Fatalf("gauge child = %v, want 4", got)
	}
}
