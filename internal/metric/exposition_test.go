package metric

import (
	"sort"
	"strings"
	"testing"
	"time"
)

// buildExpositionRegistry registers one metric of every exposable type.
func buildExpositionRegistry() *Registry {
	r := NewRegistry()
	r.NewCounter("proxy.requests").Inc(7)
	r.NewGauge("kv.cpu_load").Set(0.625)
	h := r.NewHistogram("sql.exec_latency")
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	ts := r.NewTimeSeries("autoscaler.vcpus", 0)
	ts.Add(time.Unix(10, 0), 2)
	ts.Add(time.Unix(20, 0), 4)
	cv := r.NewCounterVec("proxy.tenant_conns", "tenant")
	cv.With("beta").Inc(3)
	cv.With("alpha").Inc(9)
	return r
}

// TestExpositionCoversEveryRegisteredMetric is the completeness contract:
// every name in the registry appears in the exposed page, in the
// registry's deterministic sorted iteration order.
func TestExpositionCoversEveryRegisteredMetric(t *testing.T) {
	r := buildExpositionRegistry()
	var b strings.Builder
	if err := r.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	names := r.Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Registry.Names() not sorted: %v", names)
	}
	lastIdx := -1
	for _, name := range names {
		en := expositionName(name)
		idx := strings.Index(out, "# TYPE "+en+" ")
		if idx < 0 {
			t.Fatalf("metric %q (exposed as %q) missing from exposition:\n%s", name, en, out)
		}
		if idx <= lastIdx {
			t.Fatalf("metric %q exposed out of sorted order", name)
		}
		lastIdx = idx
	}
}

func TestExpositionFormatPerType(t *testing.T) {
	r := buildExpositionRegistry()
	var b strings.Builder
	if err := r.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE proxy_requests counter\nproxy_requests 7\n",
		"# TYPE kv_cpu_load gauge\nkv_cpu_load 0.625\n",
		"# TYPE sql_exec_latency histogram\n",
		`sql_exec_latency_bucket{le="0.001"} `,
		`sql_exec_latency_bucket{le="0.064"} `,
		`sql_exec_latency_bucket{le="+Inf"} 100` + "\n",
		"sql_exec_latency_sum 5.05\n",
		"sql_exec_latency_count 100\n",
		"# TYPE autoscaler_vcpus gauge\nautoscaler_vcpus 4\n",
		"autoscaler_vcpus_samples 2\n",
		"# TYPE proxy_tenant_conns counter\n" +
			`proxy_tenant_conns{tenant="alpha"} 9` + "\n" +
			`proxy_tenant_conns{tenant="beta"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpositionLabelsSortedAndOnEveryLine(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("proxy.requests").Inc(1)
	h := r.NewHistogram("sql.exec_latency")
	h.Record(time.Millisecond)
	var b strings.Builder
	err := r.WriteExpositionLabels(&b, map[string]string{"zone": "b", "region": "us-east1"})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Label keys render sorted regardless of map order, and the le
	// label comes last.
	for _, want := range []string{
		`proxy_requests{region="us-east1",zone="b"} 1`,
		`sql_exec_latency_bucket{region="us-east1",zone="b",le="0.001"}`,
		`sql_exec_latency_count{region="us-east1",zone="b"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("labeled exposition missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, `region="us-east1"`) {
			t.Errorf("line missing label set: %q", line)
		}
	}
}

// TestExpositionDeterministic: two renders of the same registry are
// byte-identical (no map-order leakage).
func TestExpositionDeterministic(t *testing.T) {
	r := buildExpositionRegistry()
	labels := map[string]string{"region": "eu-west1", "az": "a", "pod": "p1"}
	render := func() string {
		var b strings.Builder
		if err := r.WriteExpositionLabels(&b, labels); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := render()
	for i := 0; i < 10; i++ {
		if got := render(); got != first {
			t.Fatalf("exposition not deterministic:\n--- first\n%s\n--- run %d\n%s", first, i, got)
		}
	}
}

// TestRegistryEachSortedOrder pins the iteration order the exposition
// relies on: Each visits metrics in ascending name order.
func TestRegistryEachSortedOrder(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zz.last", "aa.first", "mm.middle"} {
		r.NewCounter(name)
	}
	var visited []string
	r.Each(func(name string, m any) {
		visited = append(visited, name)
	})
	want := []string{"aa.first", "mm.middle", "zz.last"}
	for i := range want {
		if i >= len(visited) || visited[i] != want[i] {
			t.Fatalf("Each order = %v, want %v", visited, want)
		}
	}
}
