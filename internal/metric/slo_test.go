package metric

import (
	"testing"
	"time"
)

func TestSLOBurnRate(t *testing.T) {
	obj := Objective{LatencyThreshold: 100 * time.Millisecond, Target: 0.999}
	s := NewSLO(obj, 15*time.Second, 240)
	base := time.Unix(10000, 0)
	// 1000 requests, 10 bad (5 errors + 5 over-threshold):
	// badFraction = 0.01, budget = 0.001, burn = 10.
	for i := 0; i < 1000; i++ {
		lat := 10 * time.Millisecond
		errored := false
		switch {
		case i < 5:
			errored = true
		case i < 10:
			lat = 500 * time.Millisecond
		}
		s.Record(base, lat, errored)
	}
	if got := s.GoodFraction(base, BurnShortWindow); got != 0.99 {
		t.Fatalf("GoodFraction = %v, want 0.99", got)
	}
	burn := s.BurnRate(base, BurnShortWindow)
	if burn < 9.99 || burn > 10.01 {
		t.Fatalf("BurnRate = %v, want ~10", burn)
	}
}

func TestSLOIdleTenant(t *testing.T) {
	s := NewSLO(DefaultObjective(), 15*time.Second, 240)
	now := time.Unix(10000, 0)
	if got := s.GoodFraction(now, BurnShortWindow); got != 1 {
		t.Fatalf("idle GoodFraction = %v, want 1", got)
	}
	if got := s.BurnRate(now, BurnLongWindow); got != 0 {
		t.Fatalf("idle BurnRate = %v, want 0", got)
	}
}

func TestSLOMultiWindow(t *testing.T) {
	// A burst 30 minutes ago shows up in the 1h burn rate but not the 5m
	// one — the multi-window distinction that separates a past spike from
	// an ongoing incident.
	s := NewSLO(Objective{LatencyThreshold: 50 * time.Millisecond, Target: 0.99}, 15*time.Second, 240)
	base := time.Unix(100000, 0)
	for i := 0; i < 100; i++ {
		s.Record(base.Add(-30*time.Minute), time.Second, false) // all bad
	}
	for i := 0; i < 100; i++ {
		s.Record(base, time.Millisecond, false) // all good
	}
	if got := s.BurnRate(base, BurnShortWindow); got != 0 {
		t.Fatalf("5m burn = %v, want 0", got)
	}
	long := s.BurnRate(base, BurnLongWindow)
	if long < 49 || long > 51 {
		t.Fatalf("1h burn = %v, want ~50 (half the requests bad, budget 0.01)", long)
	}
	if def := NewSLO(Objective{}, 0, 0); def.Objective() != DefaultObjective() {
		t.Fatalf("zero objective not defaulted: %+v", def.Objective())
	}
}
