package metric

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.P50() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramExactQuantiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if got := h.P50(); got < 49*time.Millisecond || got > 51*time.Millisecond {
		t.Fatalf("p50 = %v, want ~50ms", got)
	}
	if got := h.P99(); got < 98*time.Millisecond || got > 100*time.Millisecond {
		t.Fatalf("p99 = %v, want ~99ms", got)
	}
	if got := h.Min(); got != time.Millisecond {
		t.Fatalf("min = %v", got)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Fatalf("max = %v", got)
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v, want 50.5ms", got)
	}
}

func TestHistogramQuantileClamps(t *testing.T) {
	h := NewHistogram()
	h.Record(5 * time.Millisecond)
	if got := h.Quantile(-1); got != 5*time.Millisecond {
		t.Fatalf("Quantile(-1) = %v", got)
	}
	if got := h.Quantile(2); got != 5*time.Millisecond {
		t.Fatalf("Quantile(2) = %v", got)
	}
}

func TestHistogramBucketFallback(t *testing.T) {
	h := NewHistogram()
	// Overflow the exact-sample reservoir to force bucket interpolation.
	for i := 0; i < sampleCap+1000; i++ {
		h.Record(time.Duration(1+i%100) * time.Millisecond)
	}
	p50 := h.P50()
	// Bucketed estimate should land within a factor of ~2 of the true 50ms.
	if p50 < 25*time.Millisecond || p50 > 110*time.Millisecond {
		t.Fatalf("bucketed p50 = %v, want within 2x of 50ms", p50)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	// Property: for any set of recorded values, Quantile is monotonic in q.
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range vals {
			h.Record(time.Duration(v) * time.Microsecond)
		}
		prev := time.Duration(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryString(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("snapshot count = %d", s.Count)
	}
	if str := s.String(); str == "" {
		t.Fatal("empty summary string")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc(5)
	c.Inc(3)
	c.Inc(-1) // ignored
	if c.Value() != 8 {
		t.Fatalf("counter = %d, want 8", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(1.5)
	if g.Value() != 4.0 {
		t.Fatalf("gauge = %f, want 4", g.Value())
	}
}

func TestTimeSeriesWindowQueries(t *testing.T) {
	ts := NewTimeSeries(0)
	base := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		ts.Add(base.Add(time.Duration(i)*time.Second), float64(i))
	}
	now := base.Add(9 * time.Second)
	// Window of 5s covers samples at t=5..9 (values 5..9).
	if got := ts.WindowAvg(now, 5*time.Second); got != 7 {
		t.Fatalf("WindowAvg = %f, want 7", got)
	}
	if got := ts.WindowMax(now, 5*time.Second); got != 9 {
		t.Fatalf("WindowMax = %f, want 9", got)
	}
	// Empty window.
	if got := ts.WindowAvg(base.Add(-time.Hour), time.Second); got != 0 {
		t.Fatalf("empty WindowAvg = %f", got)
	}
	if got := ts.WindowMax(base.Add(-time.Hour), time.Second); got != 0 {
		t.Fatalf("empty WindowMax = %f", got)
	}
}

func TestTimeSeriesRetention(t *testing.T) {
	ts := NewTimeSeries(10 * time.Second)
	base := time.Unix(0, 0)
	for i := 0; i < 100; i++ {
		ts.Add(base.Add(time.Duration(i)*time.Second), float64(i))
	}
	if n := ts.Len(); n > 12 {
		t.Fatalf("retention did not trim: %d samples", n)
	}
	latest, ok := ts.Latest()
	if !ok || latest.Value != 99 {
		t.Fatalf("latest = %+v ok=%v", latest, ok)
	}
}

func TestTimeSeriesLatestEmpty(t *testing.T) {
	ts := NewTimeSeries(0)
	if _, ok := ts.Latest(); ok {
		t.Fatal("empty series reported a latest sample")
	}
}

func TestTimeSeriesSamplesCopy(t *testing.T) {
	ts := NewTimeSeries(0)
	ts.Add(time.Unix(1, 0), 1)
	s := ts.Samples()
	s[0].Value = 42
	if got := ts.Samples()[0].Value; got != 1 {
		t.Fatalf("Samples() must return a copy; got mutated value %f", got)
	}
}
