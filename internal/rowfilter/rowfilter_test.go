package rowfilter

import (
	"testing"
	"testing/quick"
)

type row []Value

func (r row) Column(i int) (Value, bool) {
	if i < 0 || i >= len(r) {
		return Value{}, false
	}
	return r[i], true
}

func vi(v int64) Value   { return Value{Kind: KindInt, I: v} }
func vf(v float64) Value { return Value{Kind: KindFloat, F: v} }
func vs(v string) Value  { return Value{Kind: KindString, S: v} }
func vb(v bool) Value    { return Value{Kind: KindBool, B: v} }
func vnull() Value       { return Value{Null: true} }

func TestEmptyFilterMatchesAll(t *testing.T) {
	var f Filter
	if !f.Matches(row{vi(1)}) {
		t.Fatal("empty filter must match")
	}
	var nilF *Filter
	if !nilF.Matches(row{}) {
		t.Fatal("nil filter must match")
	}
}

func TestComparisonOps(t *testing.T) {
	r := row{vi(5), vs("m"), vb(true), vf(2.5)}
	cases := []struct {
		cond Cond
		want bool
	}{
		{Cond{Col: 0, Op: OpEq, Value: vi(5)}, true},
		{Cond{Col: 0, Op: OpEq, Value: vi(6)}, false},
		{Cond{Col: 0, Op: OpNe, Value: vi(6)}, true},
		{Cond{Col: 0, Op: OpLt, Value: vi(6)}, true},
		{Cond{Col: 0, Op: OpLe, Value: vi(5)}, true},
		{Cond{Col: 0, Op: OpGt, Value: vi(5)}, false},
		{Cond{Col: 0, Op: OpGe, Value: vi(5)}, true},
		{Cond{Col: 1, Op: OpLt, Value: vs("z")}, true},
		{Cond{Col: 1, Op: OpGt, Value: vs("z")}, false},
		{Cond{Col: 2, Op: OpEq, Value: vb(true)}, true},
		{Cond{Col: 2, Op: OpGt, Value: vb(false)}, true},
		{Cond{Col: 3, Op: OpEq, Value: vf(2.5)}, true},
		// Cross-numeric: INT column vs FLOAT constant.
		{Cond{Col: 0, Op: OpLt, Value: vf(5.5)}, true},
		{Cond{Col: 3, Op: OpGt, Value: vi(2)}, true},
	}
	for _, c := range cases {
		f := Filter{Conds: []Cond{c.cond}}
		if got := f.Matches(r); got != c.want {
			t.Fatalf("col%d %s %v: got %v, want %v", c.cond.Col, c.cond.Op, c.cond.Value, got, c.want)
		}
	}
}

func TestNullNeverMatches(t *testing.T) {
	r := row{vnull()}
	for _, op := range []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe} {
		f := Filter{Conds: []Cond{{Col: 0, Op: op, Value: vi(1)}}}
		if f.Matches(r) {
			t.Fatalf("NULL %s 1 matched", op)
		}
	}
	// NULL constant also never matches.
	f := Filter{Conds: []Cond{{Col: 0, Op: OpEq, Value: vnull()}}}
	if f.Matches(row{vi(1)}) {
		t.Fatal("x = NULL matched")
	}
}

func TestConjunction(t *testing.T) {
	f := Filter{Conds: []Cond{
		{Col: 0, Op: OpGe, Value: vi(10)},
		{Col: 0, Op: OpLt, Value: vi(20)},
	}}
	if !f.Matches(row{vi(15)}) || f.Matches(row{vi(5)}) || f.Matches(row{vi(20)}) {
		t.Fatal("range conjunction broken")
	}
}

func TestMismatchedTypesAndBounds(t *testing.T) {
	f := Filter{Conds: []Cond{{Col: 0, Op: OpEq, Value: vs("x")}}}
	if f.Matches(row{vi(1)}) {
		t.Fatal("int = string matched")
	}
	f = Filter{Conds: []Cond{{Col: 9, Op: OpEq, Value: vi(1)}}}
	if f.Matches(row{vi(1)}) {
		t.Fatal("out-of-range column matched")
	}
	if got := Op(99).String(); got == "" {
		t.Fatal("unknown op string empty")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := &Filter{Conds: []Cond{
		{Col: 2, Op: OpLe, Value: vf(3.14)},
		{Col: 0, Op: OpEq, Value: vs("hello")},
	}}
	enc, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Conds) != 2 || out.Conds[0].Value.F != 3.14 || out.Conds[1].Value.S != "hello" {
		t.Fatalf("round trip = %+v", out)
	}
	if _, err := Decode([]byte("junk")); err == nil {
		t.Fatal("junk decoded")
	}
}

func TestMatchesConsistentWithComparisonProperty(t *testing.T) {
	// Property: for int columns, Matches agrees with direct comparison.
	f := func(col, constant int32, opSel uint8) bool {
		op := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}[opSel%6]
		filter := Filter{Conds: []Cond{{Col: 0, Op: op, Value: vi(int64(constant))}}}
		got := filter.Matches(row{vi(int64(col))})
		var want bool
		switch op {
		case OpEq:
			want = col == constant
		case OpNe:
			want = col != constant
		case OpLt:
			want = col < constant
		case OpLe:
			want = col <= constant
		case OpGt:
			want = col > constant
		case OpGe:
			want = col >= constant
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
