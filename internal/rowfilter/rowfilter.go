// Package rowfilter defines a restricted, serializable row predicate that
// can be evaluated inside the KV layer — the "row filtering push-down" the
// paper lists as future work (§8): "performing row filtering on the KV node
// rather than the SQL node would bring efficiency gains" for analytical
// queries that lack an efficient index.
//
// The predicate language is deliberately tiny — a conjunction of
// single-column comparisons against constants — so the KV layer can evaluate
// it without any knowledge of SQL: the SQL layer compiles eligible WHERE
// conjuncts down to this form, and scan responses then carry only matching
// rows across the process boundary.
//
// The package sits below both the SQL layer and the KV server (neither may
// import the other), so it owns the minimal value model the two share.
package rowfilter

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Kind is the type of a filter constant.
type Kind byte

// Filter constant kinds.
const (
	KindInt Kind = iota
	KindFloat
	KindString
	KindBool
)

// Op is a comparison operator.
type Op byte

// Comparison operators.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", byte(o))
	}
}

// Value is a filter constant.
type Value struct {
	Kind Kind
	Null bool
	I    int64
	F    float64
	S    string
	B    bool
}

// Cond is one column comparison: row[Col] Op Value.
type Cond struct {
	Col   int
	Op    Op
	Value Value
}

// Filter is a conjunction of conditions. The zero Filter matches every row.
type Filter struct {
	Conds []Cond
}

// Empty reports whether the filter matches everything.
func (f *Filter) Empty() bool { return f == nil || len(f.Conds) == 0 }

// RowValue is the KV-visible view of one decoded column: the evaluator
// receives column values through a RowAccessor so it never depends on the
// SQL layer's datum representation.
type RowAccessor interface {
	// Column returns the value at the given offset. ok is false when the
	// offset is out of range.
	Column(i int) (Value, bool)
}

// Matches evaluates the conjunction against a row. SQL NULL semantics apply:
// a comparison involving NULL is not true, so such rows are filtered out.
func (f *Filter) Matches(row RowAccessor) bool {
	if f.Empty() {
		return true
	}
	for _, c := range f.Conds {
		v, ok := row.Column(c.Col)
		if !ok || v.Null || c.Value.Null {
			return false
		}
		cmp, comparable := compare(v, c.Value)
		if !comparable {
			return false
		}
		switch c.Op {
		case OpEq:
			if cmp != 0 {
				return false
			}
		case OpNe:
			if cmp == 0 {
				return false
			}
		case OpLt:
			if cmp >= 0 {
				return false
			}
		case OpLe:
			if cmp > 0 {
				return false
			}
		case OpGt:
			if cmp <= 0 {
				return false
			}
		case OpGe:
			if cmp < 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// compare orders two values, with INT/FLOAT comparing numerically.
func compare(a, b Value) (int, bool) {
	num := func(v Value) (float64, bool) {
		switch v.Kind {
		case KindInt:
			return float64(v.I), true
		case KindFloat:
			return v.F, true
		default:
			return 0, false
		}
	}
	if x, ok := num(a); ok {
		y, ok2 := num(b)
		if !ok2 {
			return 0, false
		}
		switch {
		case x < y:
			return -1, true
		case x > y:
			return 1, true
		default:
			return 0, true
		}
	}
	if a.Kind != b.Kind {
		return 0, false
	}
	switch a.Kind {
	case KindString:
		return bytes.Compare([]byte(a.S), []byte(b.S)), true
	case KindBool:
		switch {
		case !a.B && b.B:
			return -1, true
		case a.B && !b.B:
			return 1, true
		default:
			return 0, true
		}
	default:
		return 0, false
	}
}

// Encode serializes the filter for transport in a KV request.
func (f *Filter) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, fmt.Errorf("rowfilter: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode parses a transported filter.
func Decode(b []byte) (*Filter, error) {
	var f Filter
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&f); err != nil {
		return nil, fmt.Errorf("rowfilter: decode: %w", err)
	}
	return &f, nil
}
