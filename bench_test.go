package crdbserverless

// One benchmark per table and figure of the paper's evaluation (§6), plus
// ablation benches for the design choices DESIGN.md calls out. Each bench
// regenerates its experiment through internal/experiments and reports the
// headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. The experiments are end-to-end runs, not
// microbenchmarks: run them with -benchtime=1x (the default b.N=1 pass is
// what they are designed for).

import (
	"testing"
	"time"

	"crdbserverless/internal/experiments"
)

// BenchmarkFig5WriteBatchModel regenerates Fig 5: the write-batch efficiency
// curve and its piecewise-linear fit.
func BenchmarkFig5WriteBatchModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, _ := experiments.Fig5()
		first, last := points[0], points[len(points)-1]
		b.ReportMetric(first.BatchesPerVCPUs, "batches/vcpu-low-rate")
		b.ReportMetric(last.BatchesPerVCPUs, "batches/vcpu-high-rate")
	}
}

// BenchmarkFig6Efficiency regenerates Fig 6: Serverless vs Traditional CPU
// for TPC-C and TPC-H Q1/Q9.
func BenchmarkFig6Efficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, _, err := experiments.Fig6(experiments.Fig6Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			b.ReportMetric(r.CPURatio, r.Name+"-cpu-ratio")
		}
	}
}

// BenchmarkFig7TenantOverhead regenerates Fig 7: suspended and idle tenant
// overhead.
func BenchmarkFig7TenantOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig7(experiments.Fig7Options{})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Suspended[len(res.Suspended)-1]
		b.ReportMetric(float64(last.BytesPerTenant), "suspended-B/tenant")
		if len(res.Idle) > 0 {
			b.ReportMetric(float64(res.Idle[len(res.Idle)-1].BytesPerTenant), "idle-B/tenant")
			b.ReportMetric(res.IdleCPUPerTenant, "idle-cpu/tenant")
		}
	}
}

// BenchmarkFig8Autoscaler regenerates Fig 8: the autoscaler tracking a
// bursty production-like trace.
func BenchmarkFig8Autoscaler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanHeadroom, "mean-headroom-x")
		b.ReportMetric(res.UnderProvisionedFrac*100, "under-provisioned-%")
	}
}

// BenchmarkFig9Migration regenerates Fig 9: a rolling upgrade migrating
// every connection with no visible impact.
func BenchmarkFig9Migration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig9(experiments.Fig9Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Migrations), "migrations")
		b.ReportMetric(float64(res.Errors), "errors")
		b.ReportMetric(float64(res.Aborts), "aborts")
		b.ReportMetric(res.During.P99.Seconds()*1000, "during-p99-ms")
	}
}

// BenchmarkFig10aColdStart regenerates Fig 10a: cold-start latency with and
// without the pre-warmed SQL process.
func BenchmarkFig10aColdStart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig10a(2000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Unoptimized.P50.Seconds(), "unopt-p50-s")
		b.ReportMetric(res.Optimized.P50.Seconds(), "opt-p50-s")
		b.ReportMetric(res.Optimized.P99.Seconds(), "opt-p99-s")
	}
}

// BenchmarkFig10bMultiRegion regenerates Fig 10b: multi-region cold starts
// under region-aware vs pinned system databases.
func BenchmarkFig10bMultiRegion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig10b(2000)
		var worstOpt time.Duration
		for _, r := range rows {
			if r.Optimized.P50 > worstOpt {
				worstOpt = r.Optimized.P50
			}
		}
		b.ReportMetric(worstOpt.Seconds(), "worst-region-opt-p50-s")
	}
}

// BenchmarkTable1NoisyNeighbor regenerates Table 1: the well-behaved
// tenant's latency and throughput under the three control configurations.
func BenchmarkTable1NoisyNeighbor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Table1(experiments.Table1Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			prefix := map[experiments.NoisyConfig]string{
				experiments.NoLimits:  "nolimits",
				experiments.ACOnly:    "ac",
				experiments.ACAndECPU: "ac+ecpu",
			}[row.Config]
			b.ReportMetric(row.P99.Seconds()*1000, prefix+"-p99-ms")
			b.ReportMetric(row.TpmC, prefix+"-tpmC")
		}
	}
}

// BenchmarkFig12Stability regenerates the Fig 12 series (per-node cores and
// leases) and reports lease-movement churn per configuration.
func BenchmarkFig12Stability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Table1(experiments.Table1Options{
			Configs: []experiments.NoisyConfig{experiments.NoLimits, experiments.ACOnly},
		})
		if err != nil {
			b.Fatal(err)
		}
		for cfg, tl := range res.Timelines {
			churn := 0
			for j := 1; j < len(tl); j++ {
				for n := range tl[j].LeasesPerNode {
					d := tl[j].LeasesPerNode[n] - tl[j-1].LeasesPerNode[n]
					if d < 0 {
						d = -d
					}
					churn += d
				}
			}
			name := "ac"
			if cfg == experiments.NoLimits {
				name = "nolimits"
			}
			b.ReportMetric(float64(churn), name+"-lease-moves")
		}
	}
}

// BenchmarkFig13TenantECPU regenerates the Fig 13 series and reports the
// noisy tenants' eCPU rate stability under limits.
func BenchmarkFig13TenantECPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Table1(experiments.Table1Options{
			Configs: []experiments.NoisyConfig{experiments.ACAndECPU},
		})
		if err != nil {
			b.Fatal(err)
		}
		tl := res.Timelines[experiments.ACAndECPU]
		var sum float64
		var n int
		for _, s := range tl[len(tl)/2:] { // steady-state half
			for name, rate := range s.ECPUPerTenant {
				if name != "test" {
					sum += rate
					n++
				}
			}
		}
		if n > 0 {
			b.ReportMetric(sum/float64(n), "noisy-ecpu-vcpus-mean")
		}
	}
}

// BenchmarkFig11ModelAccuracy regenerates Fig 11: estimated vs actual CPU on
// the 23 held-out workloads. This is the longest experiment (~minutes).
func BenchmarkFig11ModelAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Within20Frac*100, "within-20pct-%")
	}
}

// BenchmarkExtensionFilterPushdown measures the §8 row-filter push-down on a
// selective full scan.
func BenchmarkExtensionFilterPushdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.AblationFilterPushdown(1000, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PenaltyNoPushdown, "penalty-no-pushdown-x")
		b.ReportMetric(res.PenaltyWithPushdown, "penalty-pushdown-x")
	}
}

// BenchmarkExtensionKVScaling exercises automatic KV node scaling (§8 future
// work) across a load cycle.
func BenchmarkExtensionKVScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.ExtensionKVScaling()
		if err != nil {
			b.Fatal(err)
		}
		if !res.DataOK {
			b.Fatal("data lost across the scale cycle")
		}
		b.ReportMetric(float64(res.MaxNodes), "peak-kv-nodes")
		b.ReportMetric(float64(res.EndNodes), "end-kv-nodes")
	}
}

// BenchmarkAblationFIFOvsFair isolates the heap-of-heaps fairness design.
func BenchmarkAblationFIFOvsFair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.AblationFIFOvsFair()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FIFOLightP99.Seconds()*1000, "fifo-light-p99-ms")
		b.ReportMetric(res.FairLightP99.Seconds()*1000, "fair-light-p99-ms")
	}
}

// BenchmarkAblationTrickleGrants isolates the trickle-grant design of
// §5.2.2.
func BenchmarkAblationTrickleGrants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.AblationTrickleGrants()
		b.ReportMetric(res.StopStartMaxStall.Seconds(), "stopstart-max-stall-s")
		b.ReportMetric(res.TrickleMaxStall.Seconds(), "trickle-max-stall-s")
	}
}

// BenchmarkAblationAutoscalerPeak quantifies the 1.33x-peak term's effect on
// spike reaction (the Fig 8 trace with the term disabled under-reacts).
func BenchmarkAblationAutoscalerPeak(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanHeadroom, "with-peak-headroom-x")
	}
}

// BenchmarkAblationWarmPool sweeps warm-pool sizes against cold-start
// arrivals.
func BenchmarkAblationWarmPool(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, _ := experiments.AblationWarmPool(20, 2000)
		b.ReportMetric(points[0].P50Latency.Seconds(), "pool0-p50-s")
		b.ReportMetric(points[len(points)-1].P50Latency.Seconds(), "pool8-p50-s")
	}
}

// BenchmarkAblationCostModelShape compares piecewise-linear and single-slope
// cost models over the Fig 5 sweep.
func BenchmarkAblationCostModelShape(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.AblationCostModelShape()
		b.ReportMetric(res.PiecewiseMaxErrPct, "piecewise-maxerr-%")
		b.ReportMetric(res.LinearMaxErrPct, "linear-maxerr-%")
	}
}
