// Command repro regenerates the paper's tables and figures (§6) on the
// simulated substrate. Each experiment prints rows/series mirroring the
// paper's presentation.
//
// Usage:
//
//	repro -experiment all
//	repro -experiment fig6
//	repro -list
//
// Experiments: fig5, fig6, fig7, fig8, fig9, fig10a, fig10b, table1 (also
// emits fig12+fig13), kvbench (also writes BENCH_kv.json), tracez, fleetobs
// (per-tenant observability under a noisy-neighbor storm), fig11, pushdown,
// kvscaling, chaos (seeded fault storm; -chaos-seed reproduces a run),
// mergestorm (split/merge churn against the range directory), ablations.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"crdbserverless/internal/experiments"
)

type experiment struct {
	name string
	desc string
	run  func() error
}

func main() {
	var (
		which      = flag.String("experiment", "all", "experiment id or 'all'")
		list       = flag.Bool("list", false, "list experiments and exit")
		quick      = flag.Bool("quick", false, "smaller sizes for a fast pass")
		chaosSeed  = flag.Int64("chaos-seed", 1, "seed for the chaos experiment; same seed reproduces the run")
		kvMin      = flag.Float64("kvbench-min-speedup", 0, "fail kvbench if group_commit_speedup falls below this (0 disables the gate)")
		kvZipf     = flag.Float64("kvbench-min-zipf-speedup", 0, "fail kvbench if zipf_read_p99_speedup falls below this (0 disables the gate)")
		kvBlock    = flag.Float64("kvbench-min-block-hit", 0, "fail kvbench if block_cache_hit_ratio falls below this (0 disables the gate)")
		kvReclaim  = flag.Float64("kvbench-min-vlog-reclaim", 0, "fail kvbench if vlog_reclaim_fraction falls below this (0 disables the gate)")
		kvRecovery = flag.Float64("kvbench-max-recovery-ms", 0, "fail kvbench if recovery_ms exceeds this ceiling (0 disables the gate)")
		kvHotRange = flag.Float64("kvbench-min-hotrange-speedup", 0, "fail kvbench if fleet_hot_p99_speedup falls below this (0 disables the gate)")
		kvTickUS   = flag.Float64("kvbench-max-tick-us", 0, "fail kvbench if fleet_idle_tick_us exceeds this ceiling (0 disables the gate)")
	)
	flag.Parse()

	exps := buildExperiments(*quick, *chaosSeed, kvGates{
		minSpeedup:     *kvMin,
		minZipfSpeedup: *kvZipf,
		minBlockHit:    *kvBlock,
		minVlogReclaim: *kvReclaim,
		maxRecoveryMS:  *kvRecovery,
		minHotRange:    *kvHotRange,
		maxTickUS:      *kvTickUS,
	})
	if *list {
		for _, e := range exps {
			fmt.Printf("%-10s %s\n", e.name, e.desc)
		}
		return
	}
	ran := 0
	for _, e := range exps {
		if *which != "all" && *which != e.name {
			continue
		}
		ran++
		start := time.Now() //lint:allow directtime CLI progress display wants real wall time
		fmt.Printf("--- %s: %s\n", e.name, e.desc)
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.name, err)
			os.Exit(1)
		}
		//lint:allow directtime CLI progress display wants real wall time
		fmt.Printf("--- %s done in %v\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *which)
		os.Exit(1)
	}
}

// kvGates are the CI floor checks applied to the kvbench results; zero
// values disable the corresponding gate.
type kvGates struct {
	minSpeedup     float64 // group_commit_speedup
	minZipfSpeedup float64 // zipf_read_p99_speedup
	minBlockHit    float64 // block_cache_hit_ratio
	minVlogReclaim float64 // vlog_reclaim_fraction
	maxRecoveryMS  float64 // recovery_ms ceiling
	minHotRange    float64 // fleet_hot_p99_speedup
	maxTickUS      float64 // fleet_idle_tick_us ceiling
}

func buildExperiments(quick bool, chaosSeed int64, kv kvGates) []experiment {
	scale := func(full, small int) int {
		if quick {
			return small
		}
		return full
	}
	return []experiment{
		{"fig5", "write-batch rate vs CPU efficiency; piecewise-linear fit (§5.2.1)", func() error {
			_, table := experiments.Fig5()
			fmt.Print(table)
			return nil
		}},
		{"fig6", "TPC-C / TPC-H Q1 / Q9: Serverless vs Traditional CPU & latency (§6.1)", func() error {
			_, table, err := experiments.Fig6(experiments.Fig6Options{
				TPCCOps:  scale(60, 15),
				TPCHRows: scale(800, 300),
				TPCHRuns: scale(10, 4),
			})
			if err != nil {
				return err
			}
			fmt.Print(table)
			return nil
		}},
		{"fig7", "per-tenant overhead of suspended and idle tenants (§6.2)", func() error {
			opts := experiments.Fig7Options{}
			if quick {
				opts.SuspendedCounts = []int{20, 100}
				opts.IdleCounts = []int{4}
			}
			_, table, err := experiments.Fig7(opts)
			if err != nil {
				return err
			}
			fmt.Print(table)
			return nil
		}},
		{"fig8", "autoscaler tracks a bursty CPU trace (§6.3)", func() error {
			_, table, err := experiments.Fig8()
			if err != nil {
				return err
			}
			fmt.Print(table)
			return nil
		}},
		{"fig9", "rolling upgrade with session migration (§6.4)", func() error {
			opts := experiments.Fig9Options{}
			if quick {
				opts.Phase = 300 * time.Millisecond
				opts.Connections = 4
			}
			_, table, err := experiments.Fig9(opts)
			if err != nil {
				return err
			}
			fmt.Print(table)
			return nil
		}},
		{"fig10a", "cold start latency: pre-warmed SQL processes (§6.5.1)", func() error {
			_, table, err := experiments.Fig10a(scale(2000, 400))
			if err != nil {
				return err
			}
			fmt.Print(table)
			return nil
		}},
		{"fig10b", "multi-region cold starts: region-aware system DB (§6.5.2)", func() error {
			_, table := experiments.Fig10b(scale(2000, 400))
			fmt.Print(table)
			return nil
		}},
		{"table1", "noisy neighbors: No Limits / AC / AC+eCPU, plus Fig 12 & 13 (§6.6)", func() error {
			opts := experiments.Table1Options{}
			if quick {
				opts.Duration = time.Second
			}
			res, table, err := experiments.Table1(opts)
			if err != nil {
				return err
			}
			fmt.Print(table)
			for _, cfg := range []experiments.NoisyConfig{
				experiments.NoLimits, experiments.ACOnly, experiments.ACAndECPU,
			} {
				fmt.Println()
				fmt.Print(experiments.Fig12Table(cfg, res.Timelines[cfg]))
				fmt.Println()
				fmt.Print(experiments.Fig13Table(cfg, res.Timelines[cfg]))
			}
			return nil
		}},
		{"kvbench", "KV hot path: fan-out + read-accel + write-path pipelining; writes BENCH_kv.json", func() error {
			res, table, err := experiments.KVBench(experiments.KVBenchOptions{})
			if err != nil {
				return err
			}
			fmt.Print(table)
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return err
			}
			data = append(data, '\n')
			if err := os.WriteFile("BENCH_kv.json", data, 0o644); err != nil {
				return err
			}
			fmt.Println("wrote BENCH_kv.json")
			if kv.minSpeedup > 0 && res.GroupCommitSpeedup < kv.minSpeedup {
				return fmt.Errorf("group_commit_speedup %.2fx below the %.2fx gate",
					res.GroupCommitSpeedup, kv.minSpeedup)
			}
			if kv.minZipfSpeedup > 0 && res.ZipfP99Speedup < kv.minZipfSpeedup {
				return fmt.Errorf("zipf_read_p99_speedup %.2fx below the %.2fx gate",
					res.ZipfP99Speedup, kv.minZipfSpeedup)
			}
			if kv.minBlockHit > 0 && res.BlockCacheHitRatio < kv.minBlockHit {
				return fmt.Errorf("block_cache_hit_ratio %.2f below the %.2f gate",
					res.BlockCacheHitRatio, kv.minBlockHit)
			}
			if kv.minVlogReclaim > 0 && res.VlogReclaimFraction < kv.minVlogReclaim {
				return fmt.Errorf("vlog_reclaim_fraction %.2f below the %.2f gate",
					res.VlogReclaimFraction, kv.minVlogReclaim)
			}
			if kv.maxRecoveryMS > 0 && res.RecoveryMillis > kv.maxRecoveryMS {
				return fmt.Errorf("recovery_ms %.1f above the %.1f ceiling",
					res.RecoveryMillis, kv.maxRecoveryMS)
			}
			if kv.minHotRange > 0 && res.FleetHotP99Speedup < kv.minHotRange {
				return fmt.Errorf("fleet_hot_p99_speedup %.2fx below the %.2fx gate",
					res.FleetHotP99Speedup, kv.minHotRange)
			}
			if kv.maxTickUS > 0 && res.FleetIdleTickMicros > kv.maxTickUS {
				return fmt.Errorf("fleet_idle_tick_us %.1f above the %.1f ceiling",
					res.FleetIdleTickMicros, kv.maxTickUS)
			}
			return nil
		}},
		{"tracez", "observability: end-to-end request traces and the debug surfaces", func() error {
			res, table, err := experiments.Tracez(experiments.TracezOptions{Queries: scale(50, 10)})
			if err != nil {
				return err
			}
			fmt.Print(table)
			fmt.Println()
			fmt.Print(res.Tracez)
			fmt.Println()
			fmt.Print(res.Metrics)
			return nil
		}},
		{"fleetobs", "per-tenant observability plane under a 1k-tenant noisy-neighbor storm", func() error {
			res, table, err := experiments.FleetObs(experiments.FleetObsOptions{
				Tenants:    scale(1000, 120),
				CalmTicks:  scale(20, 12),
				StormTicks: scale(8, 6),
			})
			if err != nil {
				return err
			}
			fmt.Print(table)
			fmt.Println()
			fmt.Print(res.Tenantz)
			fmt.Println()
			fmt.Print(res.VictimPage)
			fmt.Println()
			fmt.Print(res.AggressorPage)
			if !res.DeterminismOK {
				return fmt.Errorf("fleetobs: same-seed runs rendered different debug pages")
			}
			return nil
		}},
		{"fig11", "estimated CPU model accuracy on 23 held-out workloads (§6.7)", func() error {
			_, table, err := experiments.Fig11()
			if err != nil {
				return err
			}
			fmt.Print(table)
			return nil
		}},
		{"pushdown", "extension (§8): row-filter push-down on selective full scans", func() error {
			_, table, err := experiments.AblationFilterPushdown(scale(1000, 400), scale(8, 4))
			if err != nil {
				return err
			}
			fmt.Print(table)
			return nil
		}},
		{"kvscaling", "extension (§8): automatic KV node scaling across a load cycle", func() error {
			_, table, err := experiments.ExtensionKVScaling()
			if err != nil {
				return err
			}
			fmt.Print(table)
			return nil
		}},
		{"chaos", "deterministic fault injection: seeded failure storm + consistency invariants", func() error {
			res, err := experiments.Chaos(context.Background(), experiments.ChaosOptions{
				Seed: chaosSeed,
				Ops:  scale(5000, 1000),
			})
			if err != nil {
				return err
			}
			fmt.Print(res.Table)
			if len(res.Violations) > 0 {
				for _, v := range res.Violations {
					fmt.Fprintf(os.Stderr, "violation: %s\n", v)
				}
				return fmt.Errorf("chaos run (seed=%d) found %d invariant violations; rerun with -chaos-seed=%d to reproduce",
					res.Seed, len(res.Violations), res.Seed)
			}
			fmt.Printf("all invariants held (rerun with -chaos-seed=%d for the identical schedule)\n", res.Seed)
			return nil
		}},
		{"mergestorm", "chaos profile: split/merge storm against the range directory + partition invariant", func() error {
			res, err := experiments.Chaos(context.Background(), experiments.ChaosOptions{
				Seed:       chaosSeed,
				Ops:        scale(2000, 600),
				MergeStorm: true,
			})
			if err != nil {
				return err
			}
			fmt.Print(res.Table)
			if len(res.Violations) > 0 {
				for _, v := range res.Violations {
					fmt.Fprintf(os.Stderr, "violation: %s\n", v)
				}
				return fmt.Errorf("merge storm (seed=%d) found %d invariant violations; rerun with -chaos-seed=%d to reproduce",
					res.Seed, len(res.Violations), res.Seed)
			}
			if res.Merges == 0 || res.Splits == 0 {
				return fmt.Errorf("merge storm did not churn the directory: splits=%d merges=%d", res.Splits, res.Merges)
			}
			fmt.Printf("all invariants held across %d splits and %d merges (seed=%d)\n", res.Splits, res.Merges, res.Seed)
			return nil
		}},
		{"ablations", "design-choice ablations (fair queueing, trickle grants, model shape, warm pool)", func() error {
			_, t1, err := experiments.AblationFIFOvsFair()
			if err != nil {
				return err
			}
			fmt.Print(t1)
			fmt.Println()
			_, t2 := experiments.AblationTrickleGrants()
			fmt.Print(t2)
			fmt.Println()
			_, t3 := experiments.AblationCostModelShape()
			fmt.Print(t3)
			fmt.Println()
			_, t4 := experiments.AblationWarmPool(20, scale(2000, 500))
			fmt.Print(t4)
			return nil
		}},
	}
}
