package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"crdbserverless/internal/lint"
)

// wantRE matches golden-corpus markers. `// want check1 check2` expects those
// checks to fire on the marker's own line; `// want-next ...` expects them on
// the following line (used where a trailing comment would change the
// semantics of the line under test, e.g. inside a //lint:allow reason).
var wantRE = regexp.MustCompile(`// want(-next)? ([a-z ]+)$`)

// TestCorpus runs the full linter over the golden corpus and requires the
// diagnostics to match the `// want` markers exactly, in both directions:
// every marker must fire and nothing unmarked may fire.
func TestCorpus(t *testing.T) {
	root := filepath.Join("testdata", "src")

	want := map[string]bool{}
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			lineNo := i + 1
			if m[1] == "-next" {
				lineNo++
			}
			for _, check := range strings.Fields(m[2]) {
				want[fmt.Sprintf("%s:%d:%s", rel, lineNo, check)] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning corpus markers: %v", err)
	}
	if len(want) == 0 {
		t.Fatal("corpus has no // want markers; is testdata/src populated?")
	}

	diags, err := lint.Run(root)
	if err != nil {
		t.Fatalf("lint.Run(%s): %v", root, err)
	}
	got := map[string]bool{}
	gotDetail := map[string]string{}
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		key := fmt.Sprintf("%s:%d:%s", filepath.ToSlash(rel), d.Pos.Line, d.Check)
		got[key] = true
		gotDetail[key] = d.Message
	}

	var missing, unexpected []string
	for k := range want {
		if !got[k] {
			missing = append(missing, k)
		}
	}
	for k := range got {
		if !want[k] {
			unexpected = append(unexpected, fmt.Sprintf("%s (%s)", k, gotDetail[k]))
		}
	}
	sort.Strings(missing)
	sort.Strings(unexpected)
	for _, k := range missing {
		t.Errorf("marker did not fire: %s", k)
	}
	for _, k := range unexpected {
		t.Errorf("unmarked diagnostic: %s", k)
	}
}

// TestRepoTreeClean requires the live repository tree to be violation-free:
// every real finding has been migrated or carries a justified //lint:allow.
func TestRepoTreeClean(t *testing.T) {
	diags, err := lint.Run(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("lint.Run(repo root): %v", err)
	}
	for _, d := range diags {
		t.Errorf("live tree violation: %s", d)
	}
}
