package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"crdbserverless/internal/lint"
)

// wantRE matches golden-corpus markers. `// want check1 check2` expects those
// checks to fire on the marker's own line; `// want-next ...` expects them on
// the following line (used where a trailing comment would change the
// semantics of the line under test, e.g. inside a //lint:allow reason).
var wantRE = regexp.MustCompile(`// want(-next)? ([a-z ]+)$`)

// TestCorpus runs the full linter over the golden corpus and requires the
// diagnostics to match the `// want` markers exactly, in both directions:
// every marker must fire and nothing unmarked may fire.
func TestCorpus(t *testing.T) {
	root := filepath.Join("testdata", "src")

	want := map[string]bool{}
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			lineNo := i + 1
			if m[1] == "-next" {
				lineNo++
			}
			for _, check := range strings.Fields(m[2]) {
				want[fmt.Sprintf("%s:%d:%s", rel, lineNo, check)] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning corpus markers: %v", err)
	}
	if len(want) == 0 {
		t.Fatal("corpus has no // want markers; is testdata/src populated?")
	}

	diags, err := lint.Run(root)
	if err != nil {
		t.Fatalf("lint.Run(%s): %v", root, err)
	}
	got := map[string]bool{}
	gotDetail := map[string]string{}
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		key := fmt.Sprintf("%s:%d:%s", filepath.ToSlash(rel), d.Pos.Line, d.Check)
		got[key] = true
		gotDetail[key] = d.Message
	}

	var missing, unexpected []string
	for k := range want {
		if !got[k] {
			missing = append(missing, k)
		}
	}
	for k := range got {
		if !want[k] {
			unexpected = append(unexpected, fmt.Sprintf("%s (%s)", k, gotDetail[k]))
		}
	}
	sort.Strings(missing)
	sort.Strings(unexpected)
	for _, k := range missing {
		t.Errorf("marker did not fire: %s", k)
	}
	for _, k := range unexpected {
		t.Errorf("unmarked diagnostic: %s", k)
	}
}

// TestRepoTreeClean requires the live repository tree to be violation-free:
// every real finding has been migrated or carries a justified //lint:allow.
func TestRepoTreeClean(t *testing.T) {
	diags, err := lint.Run(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("lint.Run(repo root): %v", err)
	}
	for _, d := range diags {
		t.Errorf("live tree violation: %s", d)
	}
}

// TestChecksFilter runs only maporder over the corpus and requires that no
// other check's diagnostics leak through (directive findings for enabled
// checks stay, by design).
func TestChecksFilter(t *testing.T) {
	root := filepath.Join("testdata", "src")
	diags, err := lint.RunOpts(root, lint.Options{Checks: []string{"maporder"}})
	if err != nil {
		t.Fatalf("RunOpts: %v", err)
	}
	sawMapOrder := false
	for _, d := range diags {
		switch d.Check {
		case "maporder":
			sawMapOrder = true
		case "lintdirective":
			// malformed or unused directives are still reported
		default:
			t.Errorf("check filter leaked a %s diagnostic: %s", d.Check, d)
		}
	}
	if !sawMapOrder {
		t.Error("no maporder diagnostics from the corpus with the check enabled")
	}
}

// TestChecksFilterUnknown rejects a check name that does not exist.
func TestChecksFilterUnknown(t *testing.T) {
	_, err := lint.RunOpts(filepath.Join("testdata", "src"), lint.Options{Checks: []string{"nosuchcheck"}})
	if err == nil || !strings.Contains(err.Error(), "nosuchcheck") {
		t.Fatalf("err = %v, want an unknown-check error naming nosuchcheck", err)
	}
}

// TestUnderAny covers the module-root widening filter.
func TestUnderAny(t *testing.T) {
	root := "repo"
	for _, tc := range []struct {
		file string
		subs []string
		want bool
	}{
		{"repo/internal/lint/a.go", []string{"."}, true},
		{"repo/internal/lint/a.go", []string{"internal/lint"}, true},
		{"repo/internal/lint/a.go", []string{"internal"}, true},
		{"repo/internal/lint/a.go", []string{"cmd"}, false},
		{"repo/internal/linter/a.go", []string{"internal/lint"}, false},
	} {
		if got := underAny(root, tc.file, tc.subs); got != tc.want {
			t.Errorf("underAny(%q, %v) = %v, want %v", tc.file, tc.subs, got, tc.want)
		}
	}
}
