// The lockscope check is scoped to lsm and raftlite package directories: the
// same shapes in any other package are unremarkable and must not fire.
package other

import (
	"sort"
	"sync"
)

type reg struct{}

func (reg) Should(site string) bool { return false }

type thing struct {
	mu     sync.Mutex
	faults reg
	xs     []int
}

func mergeRuns(xs []int) []int { return xs }

func (t *thing) sortUnderLockElsewhere() {
	t.mu.Lock()
	defer t.mu.Unlock()
	sort.Slice(t.xs, func(i, j int) bool { return t.xs[i] < t.xs[j] })
	_ = mergeRuns(t.xs)
	_ = t.faults.Should("some.site")
}

func (t *thing) helperLocked() {
	_ = mergeRuns(t.xs)
}
