// Positive cases for the lockscope check: heavy work (merges, SSTable
// builds, sorts, fault consults) performed while the engine lock is held.
// The directory base name "lsm" puts this package in the check's scope.
package lsm

import (
	"sort"
	"sync"
)

type entry struct{ key string }

type table struct{ entries []entry }

func mergeRuns(runs [][]entry) []entry { return nil }

func newSSTable(id uint64, entries []entry) *table { return &table{entries: entries} }

type faultReg struct{}

func (faultReg) Should(site string) bool { return false }

func (faultReg) MaybeErr(site string) error { return nil }

type engine struct {
	mu     sync.Mutex
	faults faultReg
	tables []*table
}

func (e *engine) flushUnderLock(entries []entry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := newSSTable(1, entries) // want lockscope
	e.tables = append(e.tables, t)
}

func (e *engine) compactUnderLock(runs [][]entry) {
	e.mu.Lock()
	merged := mergeRuns(runs)                  // want lockscope
	sort.Slice(e.tables, func(i, j int) bool { // want lockscope
		return e.tables[i].entries[0].key < e.tables[j].entries[0].key
	})
	_ = merged
	e.mu.Unlock()
}

func (e *engine) consultUnderLock() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.faults.Should("lsm.compact.error") // want lockscope
}

func (e *engine) consultInCondition() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.faults.MaybeErr("lsm.flush.error"); err != nil { // want lockscope
		return
	}
}

// installLocked is analyzed as if a caller's lock were held: the *Locked
// naming convention marks helpers that require the engine mutex.
func (e *engine) installLocked(entries []entry) {
	t := newSSTable(2, entries) // want lockscope
	e.tables = append(e.tables, t)
}

type blockCache struct{}

func (blockCache) addBlock(id uint64, idx int, entries []entry, bytes int64) {}

type hotCache struct{}

func (hotCache) addHot(key, val []byte, ok bool) {}

func (e *engine) rewriteVlogFile(id uint32) bool { return true }

type cachedEngine struct {
	engine
	bc blockCache
	hc hotCache
}

func (e *cachedEngine) fillBlockUnderLock(entries []entry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.bc.addBlock(1, 0, entries, 128) // want lockscope
}

func (e *cachedEngine) fillHotUnderLock(key, val []byte) {
	e.mu.Lock()
	e.hc.addHot(key, val, true) // want lockscope
	e.mu.Unlock()
}

func (e *cachedEngine) gcUnderLock() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rewriteVlogFile(7) // want lockscope
}
