// Negative cases for the lockscope check: the same heavy work is fine when
// it runs outside the critical section, and a justified //lint:allow
// suppresses the in-lock exceptions (zero-delay fault consults).
package lsm

import "sort"

func (e *engine) flushPipelined(entries []entry) {
	e.mu.Lock()
	// Rotation under the lock is a pointer swap; the build happens below,
	// after the unlock.
	e.mu.Unlock()
	t := newSSTable(3, entries)
	sort.Slice(t.entries, func(i, j int) bool { return t.entries[i].key < t.entries[j].key })
	e.mu.Lock()
	e.tables = append(e.tables, t)
	e.mu.Unlock()
}

func (e *engine) consultOutsideLock(runs [][]entry) []entry {
	if e.faults.Should("lsm.compact.error") {
		return nil
	}
	merged := mergeRuns(runs)
	e.mu.Lock()
	e.mu.Unlock()
	return merged
}

func (e *engine) allowedConsult() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	//lint:allow lockscope site is delay-free by contract
	return e.faults.Should("lsm.flush.error")
}

// install has no Locked suffix and takes no lock: heavy calls are fine.
func (e *engine) install(entries []entry) *table {
	return newSSTable(4, entries)
}

// Cache fills and GC rewrites are fine once the engine lock is released: the
// caches take only their own internal mutexes, and the rewrite acquires the
// engine lock itself, briefly, per record.
func (e *cachedEngine) fillOutsideLock(key, val []byte, entries []entry) {
	e.mu.Lock()
	e.mu.Unlock()
	e.bc.addBlock(2, 1, entries, 64)
	e.hc.addHot(key, val, true)
	e.rewriteVlogFile(8)
}
