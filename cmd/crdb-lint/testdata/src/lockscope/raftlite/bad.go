// Positive cases for the lockscope check in a raftlite-scoped package:
// clock sleeps and fault consults inside the group lock serialize every
// concurrent proposer behind them.
package raftlite

import "sync"

type clockIface struct{}

func (clockIface) Sleep(d int64) {}

type reg struct{}

func (reg) Should(site string) bool { return false }

type group struct {
	mu     sync.Mutex
	clock  clockIface
	faults reg
}

func (g *group) commitWithSleepUnderLock(d int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.clock.Sleep(d) // want lockscope
}

func (g *group) consultUnderLock() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.faults.Should("raftlite.lease.expire") // want lockscope
}

// applyLocked carries the convention suffix, so a sleep inside it is flagged
// even though the Lock call lives in its caller.
func (g *group) applyLocked(d int64) {
	g.clock.Sleep(d) // want lockscope
}
