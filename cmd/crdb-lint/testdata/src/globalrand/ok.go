// Negative cases for the globalrand check: explicitly threaded *rand.Rand
// values are the sanctioned pattern.
package globalrand

import "math/rand"

type workload struct {
	rng *rand.Rand
}

func (w *workload) draw() int {
	// Method calls on a threaded generator are fine; only package-level
	// functions touch the global source.
	return w.rng.Intn(100)
}

func fork(parent *rand.Rand) int64 {
	return parent.Int63()
}
