// Positive cases for the globalrand check: global draws, unsanctioned RNG
// construction, and clock-seeded sources.
package globalrand

import (
	"math/rand"
	"time"
)

func globalDraws() {
	_ = rand.Intn(10)                  // want globalrand
	_ = rand.Float64()                 // want globalrand
	rand.Shuffle(3, func(i, j int) {}) // want globalrand
	rand.Seed(42)                      // want globalrand
}

func constructionOutsideRandutil() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want globalrand
}

func seededFromWallClock() rand.Source {
	return rand.NewSource(time.Now().UnixNano()) // want globalrand directtime
}
