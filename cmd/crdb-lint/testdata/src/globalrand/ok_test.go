// Test files may construct their own seeded generators; the seed is explicit
// so failures stay reproducible.
package globalrand

import "math/rand"

func testHelperRand() *rand.Rand {
	return rand.New(rand.NewSource(1))
}
