// Test files may re-register names already used elsewhere: each test builds
// its own registry, so tree-wide duplicate detection skips them.
package metricnames

func registerInTest(r *registry) {
	r.MustRegister("proxy.active_conns", nil)
	r.MustRegister("proxy.active_conns", nil)
}
