// Negative cases for the metricnames check: conventional subsystem.name
// literals, each registered once.
package metricnames

func registerOK(r *registry) {
	r.MustRegister("proxy.active_conns", nil)
	r.MustRegister("orchestrator.pods_warm", nil)
	r.MustRegister("kv.raft.apply_latency", nil)
	_ = r.NewCounter("gateway.requests_total")
	// A non-string first argument on the New* helpers means a package-level
	// constructor, not a registration.
	_ = newHistogram(64)
}

func newHistogram(buckets int) int { return buckets }

func registerVecsOK(r *registry) {
	_ = r.NewCounterVec("proxy.tenant_conns", "tenant")
	_ = r.NewGaugeVec("tenantcost.tenant_ru", "tenant", "region")
	_ = r.NewHistogramVec("kv.node_batch_latency", "node", "result")
}
