// Positive cases for the metricnames check: malformed names, non-literal
// registration, and duplicate registration.
package metricnames

type registry struct{}

func (r *registry) MustRegister(name string, m any) {}
func (r *registry) NewCounter(name string) int      { return 0 }

func (r *registry) NewCounterVec(name string, keys ...string) int   { return 0 }
func (r *registry) NewGaugeVec(name string, keys ...string) int     { return 0 }
func (r *registry) NewHistogramVec(name string, keys ...string) int { return 0 }

var dynamicName = "proxy.dynamic"

func register(r *registry) {
	r.MustRegister("BadName", nil)          // want metricnames
	r.MustRegister("nodots", nil)           // want metricnames
	r.MustRegister("proxy.Mixed_Case", nil) // want metricnames
	r.MustRegister(dynamicName, nil)        // want metricnames
	_ = r.NewCounter("Proxy.Requests")      // want metricnames
	r.MustRegister("proxy.dup_name", nil)
	r.MustRegister("proxy.dup_name", nil) // want metricnames
}

var dynamicKey = "tenant"

func registerVecs(r *registry) {
	_ = r.NewCounterVec("proxy.unlabeled_conns")                    // want metricnames
	_ = r.NewGaugeVec("sql.tenant_mem", "Tenant")                   // want metricnames
	_ = r.NewHistogramVec("sql.tenant_lat", "tenant", "datacenter") // want metricnames
	_ = r.NewCounterVec("dist.tenant_ops", dynamicKey)              // want metricnames
	_ = r.NewCounterVec(dynamicName, "tenant")                      // want metricnames
}
