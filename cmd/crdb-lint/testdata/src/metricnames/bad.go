// Positive cases for the metricnames check: malformed names, non-literal
// registration, and duplicate registration.
package metricnames

type registry struct{}

func (r *registry) MustRegister(name string, m any) {}
func (r *registry) NewCounter(name string) int      { return 0 }

var dynamicName = "proxy.dynamic"

func register(r *registry) {
	r.MustRegister("BadName", nil)          // want metricnames
	r.MustRegister("nodots", nil)           // want metricnames
	r.MustRegister("proxy.Mixed_Case", nil) // want metricnames
	r.MustRegister(dynamicName, nil)        // want metricnames
	_ = r.NewCounter("Proxy.Requests")      // want metricnames
	r.MustRegister("proxy.dup_name", nil)
	r.MustRegister("proxy.dup_name", nil) // want metricnames
}
