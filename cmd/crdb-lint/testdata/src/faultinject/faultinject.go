// Package faultinject is the corpus stand-in for the real fault injector.
// The faulterr check recognizes consultation sites by the package's
// import-path suffix, so this twin only needs the consultation methods.
package faultinject

import "errors"

// Registry is the corpus twin of the real seed-driven registry.
type Registry struct{}

// Should reports whether the named site fires this consultation.
func (r *Registry) Should(name string) bool { return r != nil }

// MaybeErr returns an injected error when the named site fires.
func (r *Registry) MaybeErr(name string) error {
	if r.Should(name) {
		return errors.New(name)
	}
	return nil
}
