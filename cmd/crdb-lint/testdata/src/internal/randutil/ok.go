// internal/randutil is the RNG factory: rand.New/rand.NewSource are allowed
// here (and only here) in non-test code.
package randutil

import "math/rand"

func newRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
