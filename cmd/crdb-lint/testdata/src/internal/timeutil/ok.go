// internal/timeutil is the one package allowed to read the real clock: it
// is where RealClock is implemented.
package timeutil

import "time"

func realNow() time.Time {
	time.Sleep(0)
	return time.Now()
}
