package faulterr

// checksErrors handles every fault-reaching call's error.
func checksErrors(s *store) error {
	if err := s.write("a"); err != nil {
		return err
	}
	err := s.flush()
	return err
}

// allowedDrop documents why the error is intentionally dropped.
func allowedDrop(s *store) {
	//lint:allow faulterr best-effort cleanup; the primary error has already been returned
	_ = s.flush()
}
