// Any call whose callee transitively consults a fault-injection site can
// fail on demand under simulation, so dropping its error hides a schedule's
// fault instead of propagating it.
package faulterr

import "faultinject"

type store struct {
	faults *faultinject.Registry
}

// write consults a fault site directly.
func (s *store) write(key string) error {
	if err := s.faults.MaybeErr("store.write.err"); err != nil {
		return err
	}
	_ = key
	return nil
}

// flush reaches a fault site transitively through write.
func (s *store) flush() error {
	return s.write("flush")
}

func dropsErrors(s *store) {
	s.write("a")       // want faulterr
	_ = s.flush()      // want faulterr
	go s.flush()       // want faulterr
	defer s.write("b") // want faulterr
}
