package maporder

import (
	"fmt"
	"sort"
)

// sortedAfter collects then sorts, so the escape is deterministic.
func sortedAfter(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedThenPrinted ranges the sorted slice, not the map, when printing.
func sortedThenPrinted(m map[string]int) {
	for _, k := range sortedAfter(m) {
		fmt.Println(k, m[k])
	}
}

// aggregate is a pure reduction; order cannot be observed.
func aggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// allowedAppend documents why unsorted order is acceptable.
func allowedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //lint:allow maporder the only caller treats the result as a set
	}
	return keys
}
