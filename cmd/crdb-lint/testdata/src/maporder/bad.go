// Ranging over a map must not let the nondeterministic iteration order
// escape into observable behavior: appended slices, channel sends, formatted
// output, or calls into order-observable code.
package maporder

import "fmt"

func appendsInMapOrder(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want maporder
	}
	return keys
}

func sendsInMapOrder(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want maporder
	}
}

func printsInMapOrder(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want maporder
	}
}

// emit is order-observable: it sends on a channel.
func emit(ch chan string, s string) {
	ch <- s
}

func callsOrderedCallee(m map[string]int, ch chan string) {
	for k := range m {
		emit(ch, k) // want maporder
	}
}
