// Range-management decision paths: split, merge, and lease-transfer
// candidates often live in maps keyed by range ID, and acting on them in
// iteration order makes rebalancing decisions nondeterministic — two runs of
// the same tick would split or transfer different ranges first.
package maporder

import "sort"

type rangeID int

type loadState struct {
	qps float64
}

// enqueueSplit is order-observable: the split queue is consumed positionally
// by the tick that performs the splits.
func enqueueSplit(queue chan rangeID, id rangeID) {
	queue <- id
}

// splitInMapOrder enqueues splits while ranging the hot-range map: the split
// order (and with a per-tick budget, the chosen set) depends on iteration
// order.
func splitInMapOrder(hot map[rangeID]*loadState, queue chan rangeID) {
	for id := range hot {
		enqueueSplit(queue, id) // want maporder
	}
}

// transferQueueInMapOrder builds the lease-transfer work list in map order;
// the queue is consumed positionally, so the order escapes.
func transferQueueInMapOrder(changed map[rangeID]float64) []rangeID {
	var queue []rangeID
	for id := range changed {
		queue = append(queue, id) // want maporder
	}
	return queue
}

// mergeCandidatesSorted drains the cold-range set through a sort, so the
// merge pass visits ranges in ID order regardless of map layout.
func mergeCandidatesSorted(cold map[rangeID]struct{}) []rangeID {
	out := make([]rangeID, 0, len(cold))
	for id := range cold {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// hottestRange is a pure reduction with a deterministic ID tie-break; no
// iteration order escapes.
func hottestRange(loads map[rangeID]float64) rangeID {
	best, bestQPS := rangeID(0), -1.0
	for id, qps := range loads {
		if qps > bestQPS || (qps == bestQPS && id < best) {
			best, bestQPS = id, qps
		}
	}
	return best
}
