// Positive cases for the directtime check: every direct wall-clock call in
// component code must be flagged, including through an import alias.
package directtime

import (
	"time"

	clk "time"
)

func wallClockEverywhere() time.Duration {
	start := time.Now()             // want directtime
	time.Sleep(time.Millisecond)    // want directtime
	<-time.After(time.Millisecond)  // want directtime
	t := time.NewTimer(time.Second) // want directtime
	tk := time.NewTicker(time.Hour) // want directtime
	_ = time.Tick(time.Second)      // want directtime
	time.AfterFunc(0, func() {})    // want directtime
	_ = time.Until(start)           // want directtime
	_ = clk.Now()                   // want directtime
	t.Stop()
	tk.Stop()
	return time.Since(start) // want directtime
}

func afterOnItsOwnLine() {
	<-time.After(time.Millisecond) // want directtime
}
