// Test files may use real timeouts for hang protection.
package directtime

import "time"

func testOnlyHelper() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
