// Negative cases for directtime: clock-threaded code, pure duration and
// time.Time arithmetic, and a justified //lint:allow escape hatch.
package directtime

import "time"

// Clock mirrors timeutil.Clock.
type Clock interface {
	Now() time.Time
	Since(t time.Time) time.Duration
	Sleep(d time.Duration)
}

func threaded(c Clock) time.Duration {
	start := c.Now()
	c.Sleep(5 * time.Millisecond)
	deadline := start.Add(time.Second)
	if c.Now().Before(deadline) {
		return c.Since(start)
	}
	return 0
}

func justified() time.Time {
	return time.Now() //lint:allow directtime this corpus case exercises the escape hatch
}

func justifiedLineAbove() time.Time {
	//lint:allow directtime the directive also covers the next line
	return time.Now()
}
