package lockorder

import "sync"

// pool acquires its two locks in one global order everywhere, so the
// acquisition graph stays acyclic.
type pool struct {
	bigMu   sync.Mutex
	smallMu sync.Mutex
	big     int
	small   int
}

func (p *pool) grow() {
	p.bigMu.Lock()
	defer p.bigMu.Unlock()
	p.smallMu.Lock()
	p.small++
	p.smallMu.Unlock()
	p.big++
}

func (p *pool) shrink() {
	p.bigMu.Lock()
	defer p.bigMu.Unlock()
	p.smallMu.Lock()
	p.small--
	p.smallMu.Unlock()
	p.big--
}
