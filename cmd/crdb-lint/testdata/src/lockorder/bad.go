// Two code paths that acquire the same pair of locks in opposite orders can
// deadlock; the linter builds the global acquisition graph and rejects the
// cycle.
package lockorder

import "sync"

type server struct {
	regMu  sync.Mutex
	connMu sync.Mutex
	reg    int
	conns  int
}

func (s *server) register() {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	s.connMu.Lock()
	s.conns++
	s.connMu.Unlock()
}

func (s *server) broadcast() {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	s.regMu.Lock() // want lockorder
	s.reg++
	s.regMu.Unlock()
}
