package lockorder

import "sync"

// cache has a known, documented cycle: the allow sits on the diagnostic's
// anchor (the first edge of the reported cycle path).
type cache struct {
	aMu sync.Mutex
	bMu sync.Mutex
	a   int
	b   int
}

func (c *cache) fill() {
	c.aMu.Lock()
	defer c.aMu.Unlock()
	c.bMu.Lock() //lint:allow lockorder corpus case: cycle documented as unreachable because fill and evict never run concurrently
	c.b++
	c.bMu.Unlock()
}

func (c *cache) evict() {
	c.bMu.Lock()
	defer c.bMu.Unlock()
	c.aMu.Lock()
	c.a--
	c.aMu.Unlock()
}
