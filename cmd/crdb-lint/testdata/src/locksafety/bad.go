// Positive cases for the locksafety check: missing unlocks, defer-Lock
// typos, by-value lock copies, and channel sends under a lock.
package locksafety

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func missingUnlock(c *counter) int {
	c.mu.Lock() // want locksafety
	return c.n
}

func deferTypo(c *counter) {
	c.mu.Lock()       // want locksafety
	defer c.mu.Lock() // want locksafety
	c.n++
}

func (c counter) byValueReceiver() int { // want locksafety
	return c.n
}

func byValueParam(c counter) int { // want locksafety
	return c.n
}

func waitGroupByValue(wg sync.WaitGroup) { // want locksafety
	wg.Wait()
}

func sendWhileLocked(c *counter, ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch <- c.n // want locksafety
}
