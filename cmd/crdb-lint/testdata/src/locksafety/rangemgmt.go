// Range split/merge critical sections: both sides' latches are held for the
// duration, every exit path must release both, and nothing order-observable
// may happen under the latch.
package locksafety

import "sync"

type rangeLatch struct {
	mu   sync.Mutex
	span string
}

// mergeLeaksRightLatch locks both sides but only defers the left unlock; the
// early ineligible return leaks the right latch.
func mergeLeaksRightLatch(left, right *rangeLatch, eligible bool) bool {
	left.mu.Lock()
	defer left.mu.Unlock()
	right.mu.Lock() // want locksafety
	if !eligible {
		return false
	}
	right.span = left.span + right.span
	return true
}

// splitNotifiesUnderLatch publishes the range event on a shared channel while
// the latch is held: a slow subscriber stalls every batch on the range.
func splitNotifiesUnderLatch(r *rangeLatch, events chan string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	events <- r.span // want locksafety
}

// decideByValueCopy copies the latch-bearing state into the decision helper.
func decideByValueCopy(r rangeLatch) bool { // want locksafety
	return r.span != ""
}

// mergeBothSidesHeld is the safe shape: ordered acquisition, both deferred.
func mergeBothSidesHeld(left, right *rangeLatch) {
	left.mu.Lock()
	defer left.mu.Unlock()
	right.mu.Lock()
	defer right.mu.Unlock()
	right.span = left.span + right.span
}

// splitNotifiesAfterRelease snapshots under the latch and publishes after.
func splitNotifiesAfterRelease(r *rangeLatch, events chan string) {
	r.mu.Lock()
	span := r.span
	r.mu.Unlock()
	events <- span
}
