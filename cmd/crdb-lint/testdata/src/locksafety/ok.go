// Negative cases for the locksafety check: conventional lock hygiene must
// pass untouched.
package locksafety

import "sync"

type gauge struct {
	mu sync.Mutex
	v  int
}

type table struct {
	mu sync.RWMutex
	m  map[string]int
}

func (g *gauge) set(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v = v
}

func (g *gauge) inline(v int) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

func (t *table) get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

// unlockInClosure releases via a deferred closure; the whole-body tally
// still sees the Unlock.
func unlockInClosure(g *gauge) {
	g.mu.Lock()
	defer func() {
		g.mu.Unlock()
	}()
	g.v++
}

// localChanSend sends on a freshly made function-local channel while locked;
// a buffered local channel cannot deadlock against the lock's other users.
func localChanSend(g *gauge) int {
	done := make(chan int, 1)
	g.mu.Lock()
	done <- g.v
	g.mu.Unlock()
	return <-done
}

// sendAfterUnlock releases before the send, so the held-set is empty.
func sendAfterUnlock(g *gauge, ch chan int) {
	g.mu.Lock()
	v := g.v
	g.mu.Unlock()
	ch <- v
}

// goroutineSend: the spawned goroutine does not inherit the caller's lock.
func goroutineSend(g *gauge, ch chan int) {
	g.mu.Lock()
	go func() {
		ch <- 1
	}()
	g.mu.Unlock()
}

// lockManager has acquire/release methods but is not a mutex; the naming
// heuristic must not classify lm.Lock() as a mutex operation.
type lockManager struct{}

func (lm *lockManager) Lock()   {}
func (lm *lockManager) Unlock() {}

func useManager(lm *lockManager) {
	lm.Lock()
}

// byPointer takes the lock-bearing struct by pointer: no copy.
func byPointer(g *gauge) int {
	return g.v
}
