// Positive cases for the spanfinish check: spans whose Start* result is
// dropped, blanked, or bound to a variable that is never finished and never
// escapes.
package spanfinish

type span struct{}

func (s *span) Finish()                    {}
func (s *span) SetAttr(k string, v any)    {}
func (s *span) Eventf(f string, a ...any)  {}
func (s *span) StartChild(op string) *span { return &span{} }

type tracer struct{}

func (t *tracer) StartRoot(op string) *span { return &span{} }
func (t *tracer) StartSpan(ctx any, op string) (any, *span) {
	return ctx, &span{}
}
func (t *tracer) StartRemote(tid, sid uint64, op string) *span { return &span{} }

func dropped(t *tracer) {
	t.StartRoot("dropped") // want spanfinish
}

func blanked(t *tracer) {
	_ = t.StartRoot("blanked") // want spanfinish
}

func blankedPair(t *tracer, ctx any) {
	_, _ = t.StartSpan(ctx, "pair") // want spanfinish
}

func neverFinished(t *tracer) {
	sp := t.StartRoot("leaky") // want spanfinish
	sp.SetAttr("k", 1)
	sp.Eventf("used but never finished")
}

func childNeverFinished(t *tracer) {
	parent := t.StartRoot("parent")
	defer parent.Finish()
	c := parent.StartChild("child") // want spanfinish
	c.SetAttr("k", 2)
}

func remoteNeverFinished(t *tracer) {
	sp := t.StartRemote(1, 2, "remote") // want spanfinish
	sp.Eventf("attached")
}

func pairNeverFinished(t *tracer, ctx any) {
	ctx2, sp := t.StartSpan(ctx, "pair2") // want spanfinish
	_ = ctx2
	sp.SetAttr("k", 3)
}

func declNeverFinished(t *tracer) {
	var sp = t.StartRoot("decl") // want spanfinish
	sp.SetAttr("k", 4)
}
