// Negative cases for the spanfinish check: spans finished in-function
// (directly, deferred, or inside a deferred closure), spans that escape to
// a new owner, and a justified escape hatch.
package spanfinish

type holder struct{ s *span }

func deferred(t *tracer) {
	sp := t.StartRoot("deferred")
	defer sp.Finish()
	sp.SetAttr("k", 1)
}

func direct(t *tracer, fail bool) {
	sp := t.StartRoot("direct")
	if fail {
		sp.Finish()
		return
	}
	sp.Finish()
}

func pairForm(t *tracer, ctx any) {
	ctx2, sp := t.StartSpan(ctx, "pair")
	defer sp.Finish()
	_ = ctx2
}

func reassigned(t *tracer) {
	var sp *span
	sp = t.StartRemote(1, 2, "remote")
	sp.Finish()
}

func finishedInClosure(t *tracer) {
	sp := t.StartRoot("closure")
	defer func() { sp.Finish() }()
}

func escapesByReturn(t *tracer) *span {
	sp := t.StartRoot("returned")
	return sp
}

func escapesAsArg(t *tracer) {
	sp := t.StartRoot("arg")
	adopt(sp)
}

func adopt(s *span) { s.Finish() }

func escapesIntoStruct(t *tracer) holder {
	sp := t.StartRoot("field")
	return holder{s: sp}
}

func escapesOnChannel(t *tracer, ch chan *span) {
	sp := t.StartRoot("sent")
	ch <- sp
}

func allowed(t *tracer) {
	sp := t.StartRoot("sampled") //lint:allow spanfinish demo span intentionally left open
	sp.SetAttr("k", 2)
}
