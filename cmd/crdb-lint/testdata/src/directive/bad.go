// Malformed //lint:allow directives are themselves violations, and a broken
// directive must not suppress the finding it sits on.
package directive

import "time"

func misdirected() time.Duration {
	start := time.Now() //lint:allow nosuchcheck typo in the check name // want lintdirective directtime
	// want-next lintdirective
	//lint:allow directtime
	return time.Since(start) // want directtime
}
