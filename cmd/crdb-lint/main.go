// Command crdb-lint is the repository's static-analysis pass. It enforces
// the determinism, lock-safety, lock-ordering, fault-propagation, and
// metric-naming invariants every component must uphold for the simulator and
// the paper reproductions to stay reproducible. It is part of tier-1
// verification:
//
//	go run ./cmd/crdb-lint ./...
//
// Flags:
//
//	-checks=a,b   run only the named checks (default: all)
//	-json         emit findings as a JSON array instead of text lines
//
// Exit status: 0 clean, 1 violations found, 2 operational error.
// See internal/lint for the checks and the //lint:allow escape hatch.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"crdbserverless/internal/lint"
)

// jsonDiagnostic is the -json wire shape, one object per finding.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	checksFlag := flag.String("checks", "", "comma-separated checks to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: crdb-lint [flags] [dir|dir/...]...\n\nchecks: %s\n", strings.Join(lint.Checks, ", "))
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var opts lint.Options
	if *checksFlag != "" {
		for _, c := range strings.Split(*checksFlag, ",") {
			if c = strings.TrimSpace(c); c != "" {
				opts.Checks = append(opts.Checks, c)
			}
		}
	}

	// The type-aware checks need the whole module (cross-package call graph),
	// so a root inside a module widens to the module root; the final
	// diagnostics are filtered back down to the requested subpaths.
	subpaths := map[string][]string{} // widened root -> requested rel subpaths ("." = all)
	var order []string
	for _, a := range args {
		a = strings.TrimSuffix(a, "...")
		a = strings.TrimSuffix(a, "/")
		if a == "" || a == "." || a == "./" {
			a = "."
		}
		root, sub := a, "."
		if mod := moduleRootFor(a); mod != "" {
			root = mod
			if rel, err := filepath.Rel(mod, a); err == nil {
				sub = filepath.ToSlash(rel)
			}
		}
		if _, seen := subpaths[root]; !seen {
			order = append(order, root)
		}
		subpaths[root] = append(subpaths[root], sub)
	}

	exit := 0
	var all []jsonDiagnostic
	for _, root := range order {
		diags, err := lint.RunOpts(root, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crdb-lint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			if !underAny(root, d.Pos.Filename, subpaths[root]) {
				continue
			}
			exit = 1
			if *jsonOut {
				all = append(all, jsonDiagnostic{
					File:    filepath.ToSlash(d.Pos.Filename),
					Line:    d.Pos.Line,
					Col:     d.Pos.Column,
					Check:   d.Check,
					Message: d.Message,
				})
			} else {
				fmt.Println(d)
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []jsonDiagnostic{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintf(os.Stderr, "crdb-lint: %v\n", err)
			os.Exit(2)
		}
	}
	os.Exit(exit)
}

// underAny reports whether a diagnostic's file falls under one of the
// requested subpaths of root ("." accepts everything).
func underAny(root, filename string, subs []string) bool {
	rel, err := filepath.Rel(root, filename)
	if err != nil {
		return true
	}
	rel = filepath.ToSlash(rel)
	for _, sub := range subs {
		if sub == "." || rel == sub || strings.HasPrefix(rel, sub+"/") {
			return true
		}
	}
	return false
}

// moduleRootFor walks from dir toward the filesystem root looking for a
// go.mod, returning the containing directory (or "" when dir is not inside a
// module). Linting a subdirectory still type-checks the whole module so
// cross-package imports resolve.
func moduleRootFor(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	for cur := abs; ; {
		if _, err := os.Stat(filepath.Join(cur, "go.mod")); err == nil {
			rel, err := filepath.Rel(mustGetwd(), cur)
			if err != nil {
				return cur
			}
			return filepath.ToSlash(rel)
		}
		parent := filepath.Dir(cur)
		if parent == cur {
			return ""
		}
		cur = parent
	}
}

func mustGetwd() string {
	wd, err := os.Getwd()
	if err != nil {
		return "."
	}
	return wd
}
