// Command crdb-lint is the repository's static-analysis pass. It enforces
// the determinism, lock-safety, and metric-naming invariants every component
// must uphold for the simulator and the paper reproductions to stay
// reproducible. It is part of tier-1 verification:
//
//	go run ./cmd/crdb-lint ./...
//
// Exit status: 0 clean, 1 violations found, 2 operational error.
// See internal/lint for the checks and the //lint:allow escape hatch.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"crdbserverless/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: crdb-lint [dir|dir/...]...\n\nchecks: %s\n", strings.Join(lint.Checks, ", "))
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	roots := map[string]bool{}
	var order []string
	for _, a := range args {
		a = strings.TrimSuffix(a, "...")
		a = strings.TrimSuffix(a, "/")
		if a == "" || a == "." || a == "./" {
			a = "."
		}
		if !roots[a] {
			roots[a] = true
			order = append(order, a)
		}
	}

	exit := 0
	for _, root := range order {
		diags, err := lint.Run(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crdb-lint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			exit = 1
		}
	}
	os.Exit(exit)
}
