// Command crdb-sim starts a local Serverless deployment and offers an
// interactive SQL shell against it: a quick way to see cluster
// virtualization, scale-to-zero, and cold starts working.
//
// Usage:
//
//	crdb-sim                      # shell on tenant "demo"
//	crdb-sim -tenant acme         # shell on a different tenant
//	crdb-sim -exec "SHOW TABLES"  # one-shot statements (';'-separated)
//	crdb-sim -debug-addr :8081    # serve /debug/tracez, /debug/metrics,
//	                              # /debug/tenantz, and /debug/slo
//	crdb-sim -exec "..." -debug-dump   # dump the debug surfaces before exiting
//
// Shell meta-commands:
//
//	\tenants        list virtual clusters
//	\suspend NAME   scale a tenant to zero
//	\pods           show SQL pods per tenant
//	\tracez         dump request traces (per-op percentiles + recent trees)
//	\metrics        dump the metric registries in exposition format
//	\tenantz [T]    per-tenant top-k tables, or one tenant's drill-down
//	\slo            per-tenant SLO objectives and burn rates
//	\q              quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"crdbserverless"
	"crdbserverless/internal/wire"
)

func main() {
	var (
		tenant    = flag.String("tenant", "demo", "tenant (virtual cluster) to connect to")
		exec      = flag.String("exec", "", "run ';'-separated statements and exit")
		traceSeed = flag.Int64("trace-seed", 1, "seed for trace/span IDs (same seed + same workload => identical traces)")
		debugAddr = flag.String("debug-addr", "", "serve the /debug surfaces on this address")
		debugDump = flag.Bool("debug-dump", false, "print the /debug surfaces before exiting")
	)
	flag.Parse()

	srv, err := crdbserverless.New(crdbserverless.Options{TraceSeed: *traceSeed})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	debug := srv.DebugHandler()
	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, debug.HTTPHandler()); err != nil {
				fmt.Fprintln(os.Stderr, "crdb-sim: debug server:", err)
			}
		}()
		fmt.Printf("crdb-sim: debug surfaces at http://%s/debug/{tracez,metrics,tenantz,slo}\n", *debugAddr)
	}
	ctx := context.Background()
	if _, err := srv.CreateTenant(ctx, *tenant, crdbserverless.TenantOptions{}); err != nil {
		fatal(err)
	}
	conn, err := srv.Connect(*tenant, "")
	if err != nil {
		fatal(err)
	}
	defer conn.Close()

	if *exec != "" {
		for _, stmt := range strings.Split(*exec, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			if err := runStatement(conn, stmt); err != nil {
				fatal(err)
			}
		}
		if *debugDump {
			// The connection's root span finishes asynchronously when the
			// proxy tears the session down; close and wait for it to land
			// in the recorder so the dump includes the full trace tree.
			conn.Close()
			for i := 0; i < 400 && len(srv.Tracer().Recorder().RecentRoots()) == 0; i++ {
				//lint:allow directtime CLI waits on wall time for the proxy's async teardown
				time.Sleep(5 * time.Millisecond)
			}
			if err := debug.WriteTracez(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
			if err := debug.WriteMetrics(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
			if err := debug.WriteTenantz(os.Stdout, "", 0); err != nil {
				fatal(err)
			}
			fmt.Println()
			if err := debug.WriteSLO(os.Stdout); err != nil {
				fatal(err)
			}
		}
		return
	}

	fmt.Printf("crdb-sim: connected to virtual cluster %q (type \\q to quit)\n", *tenant)
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("sql> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
		case line == `\q`:
			return
		case line == `\tenants`:
			for _, t := range srv.Registry().List() {
				fmt.Printf("  %-16s id=%d state=%s regions=%v\n", t.Name, t.ID, t.State, t.Regions)
			}
		case line == `\pods`:
			for _, t := range srv.Registry().List() {
				pods := srv.Orchestrator("us-central1").PodsForTenant(t.Name)
				fmt.Printf("  %-16s %d pod(s)\n", t.Name, len(pods))
			}
		case line == `\tracez`:
			if err := debug.WriteTracez(os.Stdout); err != nil {
				fmt.Println("error:", err)
			}
		case line == `\metrics`:
			if err := debug.WriteMetrics(os.Stdout); err != nil {
				fmt.Println("error:", err)
			}
		case line == `\tenantz` || strings.HasPrefix(line, `\tenantz `):
			name := strings.TrimSpace(strings.TrimPrefix(line, `\tenantz`))
			if err := debug.WriteTenantz(os.Stdout, name, 0); err != nil {
				fmt.Println("error:", err)
			}
		case line == `\slo`:
			if err := debug.WriteSLO(os.Stdout); err != nil {
				fmt.Println("error:", err)
			}
		case strings.HasPrefix(line, `\suspend `):
			name := strings.TrimSpace(strings.TrimPrefix(line, `\suspend`))
			if err := srv.Suspend(ctx, name); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("%s suspended (scaled to zero)\n", name)
			}
		default:
			if err := runStatement(conn, line); err != nil {
				fmt.Println("error:", err)
				// A dropped backend (e.g. after suspend) needs a reconnect —
				// which is itself a cold start.
				if c2, cerr := srv.Connect(*tenant, ""); cerr == nil {
					conn.Close()
					conn = c2
					fmt.Println("(reconnected — cold start)")
				}
			}
		}
		fmt.Print("sql> ")
	}
}

func runStatement(conn *crdbserverless.Client, stmt string) error {
	res, err := conn.Query(stmt)
	if err != nil {
		return err
	}
	printResult(res)
	return nil
}

func printResult(res *wire.Result) {
	if len(res.Columns) == 0 {
		fmt.Printf("OK (%d row(s) affected)\n", res.RowsAffected)
		return
	}
	fmt.Println(strings.Join(res.Columns, " | "))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, d := range row {
			parts[i] = d.String()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("(%d row(s))\n", len(res.Rows))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crdb-sim:", err)
	os.Exit(1)
}
