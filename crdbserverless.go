// Package crdbserverless is a from-scratch reproduction of "CockroachDB
// Serverless: Sub-second Scaling from Zero with Multi-region Cluster
// Virtualization" (SIGMOD-Companion 2025): a multi-tenant, serverless,
// multi-region SQL database built as cluster virtualization over a shared
// transactional KV layer.
//
// A Serverless value assembles the whole system: the shared KV cluster
// (ranges, replication, admission control), the cluster-virtualization layer
// (tenant keyspaces and the SQL/KV security boundary), and the per-region
// serving fabric (routing proxies, pre-warmed SQL node pools, autoscalers).
//
// Quickstart:
//
//	srv, _ := crdbserverless.New(crdbserverless.Options{})
//	defer srv.Close()
//	srv.CreateTenant(ctx, "acme", crdbserverless.TenantOptions{})
//	conn, _ := srv.Connect("acme", "")
//	conn.Query("CREATE TABLE t (id INT PRIMARY KEY, v STRING)")
package crdbserverless

import (
	"context"
	"fmt"
	"time"

	"crdbserverless/internal/autoscaler"
	"crdbserverless/internal/core"
	"crdbserverless/internal/debug"
	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/lsm"
	"crdbserverless/internal/metric"
	"crdbserverless/internal/orchestrator"
	"crdbserverless/internal/proxy"
	"crdbserverless/internal/raftlite"
	"crdbserverless/internal/region"
	"crdbserverless/internal/sql"
	"crdbserverless/internal/tenantcost"
	"crdbserverless/internal/tenantobs"
	"crdbserverless/internal/timeutil"
	"crdbserverless/internal/trace"
	"crdbserverless/internal/txn"
	"crdbserverless/internal/wire"
)

// Re-exported types so applications only import this package.
type (
	// Tenant is a virtual cluster's control-plane record.
	Tenant = core.Tenant
	// TenantOptions configure CreateTenant.
	TenantOptions = core.TenantOptions
	// Region names a cloud region.
	Region = region.Region
	// Client is a SQL connection.
	Client = wire.Client
	// Result is a statement result returned by Client.Query.
	Result = wire.Result
	// Session is an in-process SQL session (benchmarks bypass the wire).
	Session = sql.Session
	// Datum is a SQL value.
	Datum = sql.Datum
)

// Datum constructors, re-exported.
var (
	// DInt makes an INT datum.
	DInt = sql.DInt
	// DString makes a STRING datum.
	DString = sql.DString
	// DFloat makes a FLOAT datum.
	DFloat = sql.DFloat
	// DBool makes a BOOL datum.
	DBool = sql.DBool
)

// Options configure a Serverless deployment.
type Options struct {
	// Regions to deploy in. Defaults to a single region, "us-central1".
	// Multi-region deployments get one proxy/orchestrator/autoscaler per
	// region over one global KV cluster (§4.2.5).
	Regions []Region
	// KVNodesPerRegion is the shared KV fleet size per region. Default 3.
	KVNodesPerRegion int
	// KVNodeVCPUs is each KV node's CPU capacity. Default 8.
	KVNodeVCPUs int
	// WarmPoolSize is the pre-warmed SQL pod pool per region. Default 4.
	WarmPoolSize int
	// AdmissionControl enables per-node admission control (§5.1).
	AdmissionControl bool
	// Clock defaults to the real clock; experiments pass a manual clock.
	Clock timeutil.Clock
	// CostConfig overrides the KV ground-truth CPU cost model.
	CostConfig *kvserver.CostConfig
	// TraceSeed seeds the deployment tracer's ID generator; two deployments
	// built with the same seed (and the same workload) produce identical
	// trace and span IDs. Defaults to 1.
	TraceSeed int64
	// SlowSpanThreshold is the root-span duration beyond which a trace is
	// force-retained by the recorder. Zero means the recorder default.
	SlowSpanThreshold time.Duration
}

// Serverless is a running deployment.
type Serverless struct {
	opts     Options
	topology *region.Topology
	dns      *region.DNS

	cluster  *kvserver.Cluster
	registry *core.Registry
	buckets  *tenantcost.BucketServer

	// tracer is the deployment-wide request tracer; metrics is the
	// deployment-level registry (trace.* counters live here), while each
	// region's orchestrator and proxy share a per-region registry so the
	// same metric names can repeat across regions.
	tracer        *trace.Tracer
	metrics       *metric.Registry
	regionMetrics map[Region]*metric.Registry

	// obs is the tenant observability plane: per-tenant labeled metrics on
	// the deployment registry, windowed time series, and SLO burn rates,
	// surfaced at /debug/tenantz and /debug/slo.
	obs *tenantobs.Plane

	orchestrators map[Region]*orchestrator.Orchestrator
	autoscalers   map[Region]*autoscaler.Autoscaler
	proxies       map[Region]*proxy.Proxy
}

// New assembles and starts a deployment.
func New(opts Options) (*Serverless, error) {
	if len(opts.Regions) == 0 {
		opts.Regions = []Region{"us-central1"}
	}
	if opts.KVNodesPerRegion <= 0 {
		opts.KVNodesPerRegion = 3
	}
	if opts.KVNodeVCPUs <= 0 {
		opts.KVNodeVCPUs = 8
	}
	if opts.WarmPoolSize <= 0 {
		opts.WarmPoolSize = 4
	}
	if opts.Clock == nil {
		opts.Clock = timeutil.NewRealClock()
	}
	if opts.TraceSeed == 0 {
		opts.TraceSeed = 1
	}
	cost := kvserver.DefaultCostConfig()
	if opts.CostConfig != nil {
		cost = *opts.CostConfig
	}

	topology := region.DefaultTopology()
	s := &Serverless{
		opts:          opts,
		topology:      topology,
		dns:           region.NewDNS(topology),
		metrics:       metric.NewRegistry(),
		regionMetrics: make(map[Region]*metric.Registry),
		orchestrators: make(map[Region]*orchestrator.Orchestrator),
		autoscalers:   make(map[Region]*autoscaler.Autoscaler),
		proxies:       make(map[Region]*proxy.Proxy),
	}
	s.tracer = trace.New(trace.Options{
		Clock:         opts.Clock,
		Seed:          opts.TraceSeed,
		Metrics:       s.metrics,
		SlowThreshold: opts.SlowSpanThreshold,
	})
	s.obs = tenantobs.New(tenantobs.Config{Registry: s.metrics, Clock: opts.Clock})

	// The shared KV cluster spans all regions. Every node's engine shares
	// one set of read-path counters on the deployment registry: the
	// lsm.reads / lsm.bloom.filtered / lsm.tables.probed exposition is
	// cluster-wide, matching how the trace.* counters are aggregated.
	lsmReadMetrics := lsm.NewReadMetrics(s.metrics)
	lsmWriteMetrics := lsm.NewWriteMetrics(s.metrics)
	commitMetrics := raftlite.NewCommitMetrics(s.metrics)
	var nodes []*kvserver.Node
	id := kvserver.NodeID(1)
	for _, r := range opts.Regions {
		for i := 0; i < opts.KVNodesPerRegion; i++ {
			nodes = append(nodes, kvserver.NewNode(kvserver.NodeConfig{
				ID:     id,
				VCPUs:  opts.KVNodeVCPUs,
				Region: string(r),
				Clock:  opts.Clock,
				Cost:   cost,
				LSM: lsm.Options{
					Tracer:       s.tracer,
					ReadMetrics:  lsmReadMetrics,
					WriteMetrics: lsmWriteMetrics,
					// Storage acceleration (value separation defaults on):
					// enough block cache to hold each node's hot L1+ blocks
					// and a hot-key cache sized for skewed tenant points.
					BlockCacheBytes: 8 << 20,
					HotKeyCacheSize: 4096,
				},
				AdmissionEnabled: opts.AdmissionControl,
				Obs:              s.obs,
			}))
			id++
		}
	}
	cluster, err := kvserver.NewCluster(kvserver.ClusterConfig{Clock: opts.Clock, CommitMetrics: commitMetrics}, nodes)
	if err != nil {
		return nil, err
	}
	s.cluster = cluster
	cluster.SetRowDecoder(sql.KVRowDecoder())
	s.buckets = tenantcost.NewBucketServer(opts.Clock)
	s.buckets.SetConsumptionObserver(s.obs.AddRU)
	s.registry, err = core.NewRegistry(cluster, s.buckets)
	if err != nil {
		cluster.Close()
		return nil, err
	}

	for _, r := range opts.Regions {
		// One registry per region, shared by the orchestrator and proxy:
		// their metric names repeat across regions, so merging them into
		// the deployment registry would collide. The debug handler labels
		// each region's section instead.
		regMetrics := metric.NewRegistry()
		s.regionMetrics[r] = regMetrics
		orch, err := orchestrator.New(orchestrator.Config{
			Cluster:         cluster,
			Registry:        s.registry,
			Buckets:         s.buckets,
			Clock:           opts.Clock,
			Region:          r,
			WarmPoolSize:    opts.WarmPoolSize,
			PreStartProcess: true,
			NodeVCPUs:       4,
			Metrics:         regMetrics,
			Tracer:          s.tracer,
			Obs:             s.obs,
		})
		if err != nil {
			s.Close()
			return nil, err
		}
		s.orchestrators[r] = orch
		s.autoscalers[r] = autoscaler.New(autoscaler.Config{
			Orchestrator: orch,
			Registry:     s.registry,
			Clock:        opts.Clock,
			Obs:          s.obs,
		})
		p := proxy.New(proxy.Config{Directory: orch, Clock: opts.Clock, Metrics: regMetrics, Tracer: s.tracer, Obs: s.obs})
		if err := p.Start("127.0.0.1:0"); err != nil {
			s.Close()
			return nil, err
		}
		s.proxies[r] = p
	}
	return s, nil
}

// CreateTenant provisions a virtual cluster.
func (s *Serverless) CreateTenant(ctx context.Context, name string, opts TenantOptions) (*Tenant, error) {
	if len(opts.Regions) == 0 {
		opts.Regions = s.opts.Regions
	}
	for _, r := range opts.Regions {
		if _, ok := s.proxies[r]; !ok {
			return nil, fmt.Errorf("crdbserverless: region %s is not deployed", r)
		}
	}
	t, err := s.registry.CreateTenant(ctx, name, opts)
	if err != nil {
		return nil, err
	}
	s.obs.RegisterTenant(t.ID, name)
	return t, nil
}

// Connect opens a SQL connection to a tenant through the nearest region's
// proxy (the geo-routed global DNS name of §4.2.5). If the tenant is
// suspended this is a cold start: the proxy resumes it transparently.
func (s *Serverless) Connect(tenantName, password string) (*Client, error) {
	t, err := s.registry.GetByName(tenantName)
	if err != nil {
		return nil, err
	}
	regions := t.Regions
	if len(regions) == 0 {
		regions = s.opts.Regions
	}
	return s.ConnectRegion(regions[0], tenantName, password)
}

// ConnectRegion connects through a specific region's proxy (the per-region
// DNS name of §4.2.5).
func (s *Serverless) ConnectRegion(r Region, tenantName, password string) (*Client, error) {
	p, ok := s.proxies[r]
	if !ok {
		return nil, fmt.Errorf("crdbserverless: region %s is not deployed", r)
	}
	return wire.Connect(p.Addr(), map[string]string{
		"tenant":   tenantName,
		"user":     "app",
		"password": password,
	})
}

// SQLSession returns an in-process session bound directly to the tenant's
// keyspace, bypassing proxy and wire — the fast path benchmarks use.
func (s *Serverless) SQLSession(tenantName string) (*Session, error) {
	t, err := s.registry.GetByName(tenantName)
	if err != nil {
		return nil, err
	}
	ds := kvserver.NewDistSender(s.cluster, kvserver.Identity{Tenant: t.ID}, kvserver.Config{Obs: s.obs})
	coord := txn.NewCoordinator(ds, s.cluster.Clock(), t.ID)
	coord.SetObs(s.obs)
	catalog := sql.NewCatalog(coord, t.ID)
	exec := sql.NewExecutor(catalog, coord, sql.ExecutorConfig{Obs: s.obs})
	return sql.NewSession(exec, "app"), nil
}

// Suspend scales a tenant to zero compute.
func (s *Serverless) Suspend(ctx context.Context, tenantName string) error {
	for _, r := range s.opts.Regions {
		if err := s.orchestrators[r].SuspendTenant(ctx, tenantName); err != nil && err != core.ErrTenantNotFound {
			return err
		}
	}
	// SuspendTenant marks the registry; calling it per-region is idempotent.
	return nil
}

// Tick advances periodic maintenance: KV cluster upkeep and every region's
// autoscaler. Call at ~3s cadence (a manual clock drives experiments).
func (s *Serverless) Tick(ctx context.Context) error {
	s.cluster.Tick()
	for _, r := range s.opts.Regions {
		if err := s.autoscalers[r].Tick(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Close shuts the deployment down.
func (s *Serverless) Close() {
	for _, r := range s.opts.Regions {
		if p := s.proxies[r]; p != nil {
			p.Close()
		}
		if o := s.orchestrators[r]; o != nil {
			o.Close()
		}
	}
	if s.cluster != nil {
		s.cluster.Close()
	}
}

// Registry exposes tenant lifecycle (the system-tenant control surface).
func (s *Serverless) Registry() *core.Registry { return s.registry }

// Cluster exposes the shared KV cluster.
func (s *Serverless) Cluster() *kvserver.Cluster { return s.cluster }

// Orchestrator returns a region's pod orchestrator.
func (s *Serverless) Orchestrator(r Region) *orchestrator.Orchestrator { return s.orchestrators[r] }

// Autoscaler returns a region's autoscaler.
func (s *Serverless) Autoscaler(r Region) *autoscaler.Autoscaler { return s.autoscalers[r] }

// Proxy returns a region's routing proxy.
func (s *Serverless) Proxy(r Region) *proxy.Proxy { return s.proxies[r] }

// Buckets returns the tenant token-bucket server (§5.2.2).
func (s *Serverless) Buckets() *tenantcost.BucketServer { return s.buckets }

// Tracer returns the deployment-wide request tracer.
func (s *Serverless) Tracer() *trace.Tracer { return s.tracer }

// Obs returns the tenant observability plane.
func (s *Serverless) Obs() *tenantobs.Plane { return s.obs }

// Metrics returns the deployment-level metric registry (trace.* counters).
// Per-region orchestrator/proxy metrics live in RegionMetrics.
func (s *Serverless) Metrics() *metric.Registry { return s.metrics }

// RegionMetrics returns the registry shared by a region's orchestrator and
// proxy.
func (s *Serverless) RegionMetrics(r Region) *metric.Registry { return s.regionMetrics[r] }

// DebugHandler bundles the deployment's tracer and every metric registry
// into the /debug/tracez and /debug/metrics surface. Sections are ordered
// deployment-first, then regions in deployment order, so the exposition is
// deterministic.
func (s *Serverless) DebugHandler() *debug.Handler {
	h := &debug.Handler{Tracer: s.tracer, Tenantz: s.obs}
	h.Sections = append(h.Sections, debug.Section{Registry: s.metrics})
	for _, r := range s.opts.Regions {
		h.Sections = append(h.Sections, debug.Section{
			Labels:   map[string]string{"region": string(r)},
			Registry: s.regionMetrics[r],
		})
	}
	return h
}

// Topology returns the region topology and RTT matrix.
func (s *Serverless) Topology() *region.Topology { return s.topology }

// TenantID returns a tenant's keyspace ID.
func (s *Serverless) TenantID(name string) (keys.TenantID, error) {
	t, err := s.registry.GetByName(name)
	if err != nil {
		return 0, err
	}
	return t.ID, nil
}

// WaitIdle is a convenience for tests: it ticks maintenance n times with the
// given pause on the deployment clock.
func (s *Serverless) WaitIdle(ctx context.Context, n int, pause time.Duration) error {
	for i := 0; i < n; i++ {
		if err := s.Tick(ctx); err != nil {
			return err
		}
		s.opts.Clock.Sleep(pause)
	}
	return nil
}
