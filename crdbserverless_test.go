package crdbserverless

import (
	"context"
	"testing"
	"time"

	"crdbserverless/internal/core"
	"crdbserverless/internal/kvserver"
)

func cheapCost() *kvserver.CostConfig {
	c := kvserver.CostConfig{
		ReadBatchOverhead:  time.Nanosecond,
		WriteBatchOverhead: time.Nanosecond,
	}
	return &c
}

func newServerless(t *testing.T, opts Options) *Serverless {
	t.Helper()
	if opts.CostConfig == nil {
		opts.CostConfig = cheapCost()
	}
	if opts.WarmPoolSize == 0 {
		opts.WarmPoolSize = 2
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestEndToEndQuickstart(t *testing.T) {
	s := newServerless(t, Options{})
	ctx := context.Background()
	if _, err := s.CreateTenant(ctx, "acme", TenantOptions{Password: "pw"}); err != nil {
		t.Fatal(err)
	}
	conn, err := s.Connect("acme", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Query("CREATE TABLE users (id INT PRIMARY KEY, name STRING)"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Query("INSERT INTO users VALUES ($1, $2)", DInt(1), DString("alice")); err != nil {
		t.Fatal(err)
	}
	res, err := conn.Query("SELECT name FROM users WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "alice" {
		t.Fatalf("result = %+v", res)
	}
}

func TestColdStartFromSuspension(t *testing.T) {
	s := newServerless(t, Options{})
	ctx := context.Background()
	s.CreateTenant(ctx, "acme", TenantOptions{})

	// Warm the tenant, write data, then suspend to zero.
	conn, err := s.Connect("acme", "")
	if err != nil {
		t.Fatal(err)
	}
	conn.Query("CREATE TABLE t (a INT PRIMARY KEY)")
	conn.Query("INSERT INTO t VALUES (1)")
	conn.Close()
	if err := s.Suspend(ctx, "acme"); err != nil {
		t.Fatal(err)
	}
	tn, _ := s.Registry().GetByName("acme")
	if tn.State != core.StateSuspended {
		t.Fatalf("state = %s", tn.State)
	}
	if pods := s.Orchestrator("us-central1").PodsForTenant("acme"); len(pods) != 0 {
		t.Fatalf("pods after suspend = %d", len(pods))
	}

	// Reconnecting is a cold start: resume + warm pod + first query.
	conn2, err := s.Connect("acme", "")
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	res, err := conn2.Query("SELECT COUNT(*) FROM t")
	if err != nil || res.Rows[0][0].I != 1 {
		t.Fatalf("cold query = %+v, %v", res, err)
	}
	tn, _ = s.Registry().GetByName("acme")
	if tn.State != core.StateActive {
		t.Fatalf("state after cold start = %s", tn.State)
	}
}

func TestMultiTenantIsolationThroughFullStack(t *testing.T) {
	s := newServerless(t, Options{})
	ctx := context.Background()
	s.CreateTenant(ctx, "a", TenantOptions{})
	s.CreateTenant(ctx, "b", TenantOptions{})
	ca, _ := s.Connect("a", "")
	defer ca.Close()
	cb, _ := s.Connect("b", "")
	defer cb.Close()
	ca.Query("CREATE TABLE secrets (id INT PRIMARY KEY, v STRING)")
	ca.Query("INSERT INTO secrets VALUES (1, 'a-only')")
	// Tenant b sees no such table.
	if _, err := cb.Query("SELECT * FROM secrets"); err == nil {
		t.Fatal("tenant b read tenant a's table")
	}
	// Same-named table is fully independent.
	cb.Query("CREATE TABLE secrets (id INT PRIMARY KEY, v STRING)")
	res, err := cb.Query("SELECT COUNT(*) FROM secrets")
	if err != nil || res.Rows[0][0].I != 0 {
		t.Fatalf("tenant b count = %+v, %v", res, err)
	}
}

func TestMultiRegionDeployment(t *testing.T) {
	s := newServerless(t, Options{
		Regions:          []Region{"us-central1", "europe-west1"},
		KVNodesPerRegion: 2,
	})
	ctx := context.Background()
	if _, err := s.CreateTenant(ctx, "acme", TenantOptions{
		Regions: []Region{"us-central1", "europe-west1"},
	}); err != nil {
		t.Fatal(err)
	}
	cu, err := s.ConnectRegion("us-central1", "acme", "")
	if err != nil {
		t.Fatal(err)
	}
	defer cu.Close()
	cu.Query("CREATE TABLE t (a INT PRIMARY KEY)")
	cu.Query("INSERT INTO t VALUES (42)")
	// A connection in the other region sees the same data (one global KV
	// cluster underneath).
	ce, err := s.ConnectRegion("europe-west1", "acme", "")
	if err != nil {
		t.Fatal(err)
	}
	defer ce.Close()
	res, err := ce.Query("SELECT a FROM t")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].I != 42 {
		t.Fatalf("cross-region read = %+v, %v", res, err)
	}
	// Creating a tenant in an undeployed region fails.
	if _, err := s.CreateTenant(ctx, "bad", TenantOptions{Regions: []Region{"mars-east1"}}); err == nil {
		t.Fatal("undeployed region accepted")
	}
}

func TestSQLSessionDirectPath(t *testing.T) {
	s := newServerless(t, Options{})
	ctx := context.Background()
	s.CreateTenant(ctx, "acme", TenantOptions{})
	sess, err := s.SQLSession("acme")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Execute(ctx, "CREATE TABLE t (a INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Execute(ctx, "INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Execute(ctx, "SELECT COUNT(*) FROM t")
	if err != nil || res.Rows[0][0].I != 1 {
		t.Fatalf("direct session = %+v, %v", res, err)
	}
	if _, err := s.SQLSession("ghost"); err == nil {
		t.Fatal("session for unknown tenant created")
	}
	if _, err := s.TenantID("acme"); err != nil {
		t.Fatal(err)
	}
}

func TestTickRunsMaintenance(t *testing.T) {
	s := newServerless(t, Options{})
	ctx := context.Background()
	s.CreateTenant(ctx, "acme", TenantOptions{})
	if err := s.Tick(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.WaitIdle(ctx, 3, 0); err != nil {
		t.Fatal(err)
	}
}
