package crdbserverless_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"crdbserverless"
	"crdbserverless/internal/kvserver"
)

// Example shows the end-to-end lifecycle: provision a virtual cluster, run
// SQL through the routing proxy, scale to zero, and cold-start back.
func Example() {
	cheap := kvserver.CostConfig{
		ReadBatchOverhead:  time.Nanosecond,
		WriteBatchOverhead: time.Nanosecond,
	}
	srv, err := crdbserverless.New(crdbserverless.Options{CostConfig: &cheap})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()

	if _, err := srv.CreateTenant(ctx, "acme", crdbserverless.TenantOptions{}); err != nil {
		log.Fatal(err)
	}
	conn, err := srv.Connect("acme", "")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := conn.Query("CREATE TABLE greetings (id INT PRIMARY KEY, msg STRING)"); err != nil {
		log.Fatal(err)
	}
	if _, err := conn.Query("INSERT INTO greetings VALUES ($1, $2)",
		crdbserverless.DInt(1), crdbserverless.DString("hello, virtual cluster")); err != nil {
		log.Fatal(err)
	}
	conn.Close()

	// Scale to zero...
	if err := srv.Suspend(ctx, "acme"); err != nil {
		log.Fatal(err)
	}
	// ...and cold-start back with the next connection.
	conn2, err := srv.Connect("acme", "")
	if err != nil {
		log.Fatal(err)
	}
	defer conn2.Close()
	res, err := conn2.Query("SELECT msg FROM greetings WHERE id = 1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Rows[0][0].S)
	// Output: hello, virtual cluster
}
