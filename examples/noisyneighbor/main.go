// Noisyneighbor: three antagonist tenants hammer the shared KV layer while a
// well-behaved tenant runs a paced workload. Compare its latency with no
// limits, with admission control, and with admission control plus per-tenant
// eCPU limits (§5, §6.6).
package main

import (
	"fmt"
	"log"
	"time"

	"crdbserverless/internal/experiments"
)

func main() {
	fmt.Println("running the three §6.6 configurations (a few seconds each)...")
	res, table, err := experiments.Table1(experiments.Table1Options{
		Duration: 1500 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(table)
	fmt.Println()

	// Narrate the Fig 12 takeaway from the recorded timelines.
	for _, cfg := range []experiments.NoisyConfig{
		experiments.NoLimits, experiments.ACOnly, experiments.ACAndECPU,
	} {
		tl := res.Timelines[cfg]
		if len(tl) == 0 {
			continue
		}
		last := tl[len(tl)-1]
		var cores float64
		for _, c := range last.CoresPerNode {
			cores += c
		}
		fmt.Printf("%-18s cluster cores in use at end: %.1f / 12", cfg, cores)
		if cfg == experiments.ACAndECPU {
			fmt.Printf("   <- eCPU limits cap the noisy tenants")
		}
		fmt.Println()
	}
}
