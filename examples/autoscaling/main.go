// Autoscaling: replay a bursty load trace through the autoscaler on a
// simulated clock and print how SQL node allocation tracks usage — the
// behavior of §4.2.3 / Fig 8 — then let the tenant go idle and watch it
// suspend to zero.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"crdbserverless/internal/autoscaler"
	"crdbserverless/internal/core"
	"crdbserverless/internal/experiments"
	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/orchestrator"
	"crdbserverless/internal/tenantcost"
	"crdbserverless/internal/timeutil"
)

func main() {
	// The Fig 8 trace through the shared experiment harness.
	res, table, err := experiments.Fig8()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(table)
	fmt.Printf("\nallocation tracked load with %.1fx mean headroom "+
		"(the 4x-average rule), under-provisioned %.0f%% of the time\n\n",
		res.MeanHeadroom, res.UnderProvisionedFrac*100)

	// Scale-to-zero: a tenant that goes fully idle is suspended after the
	// configured quiet period.
	clock := timeutil.NewManualClock(time.Unix(0, 0))
	node := kvserver.NewNode(kvserver.NodeConfig{ID: 1, VCPUs: 8, Clock: clock})
	cluster, err := kvserver.NewCluster(kvserver.ClusterConfig{Clock: clock}, []*kvserver.Node{node})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	reg, err := core.NewRegistry(cluster, tenantcost.NewBucketServer(clock))
	if err != nil {
		log.Fatal(err)
	}
	orch, err := orchestrator.New(orchestrator.Config{
		Cluster: cluster, Registry: reg, Clock: clock,
		Region: "us-central1", WarmPoolSize: 1, PreStartProcess: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer orch.Close()
	as := autoscaler.New(autoscaler.Config{
		Orchestrator: orch, Registry: reg, Clock: clock,
		SuspendAfter: 5 * time.Minute,
	})

	ctx := context.Background()
	tenant, err := reg.CreateTenant(ctx, "sleepy", core.TenantOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := orch.ScaleTenant(ctx, tenant, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("tenant 'sleepy' active with 1 SQL node; going idle...")
	for i := 0; i < 130; i++ { // ~6.5 simulated minutes of silence
		clock.Advance(3 * time.Second)
		if err := as.Tick(ctx); err != nil {
			log.Fatal(err)
		}
	}
	t, _ := reg.GetByName("sleepy")
	fmt.Printf("after %.0f idle minutes: state=%s, pods=%d (scale to zero, §4.2.3)\n",
		6.5, t.State, len(orch.PodsForTenant("sleepy")))
}
