// Multiregion: deploy across three regions, give a tenant a multi-region
// virtual cluster, and demonstrate geo-routed connections, transactionally
// consistent cross-region reads, and the cold-start cost of region-aware vs
// pinned system databases (§3.2.5, §4.2.5).
package main

import (
	"context"
	"fmt"
	"log"

	"crdbserverless"
	"crdbserverless/internal/coldstart"
	"crdbserverless/internal/randutil"
	"crdbserverless/internal/region"
	"crdbserverless/internal/sql"
)

func main() {
	regions := []crdbserverless.Region{"asia-southeast1", "europe-west1", "us-central1"}
	srv, err := crdbserverless.New(crdbserverless.Options{
		Regions:          regions,
		KVNodesPerRegion: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()

	// The tenant selects all three regions (§4.2.5).
	if _, err := srv.CreateTenant(ctx, "globex", crdbserverless.TenantOptions{
		Regions:     regions,
		RegionAware: true,
	}); err != nil {
		log.Fatal(err)
	}

	// Write in Europe...
	eu, err := srv.ConnectRegion("europe-west1", "globex", "")
	if err != nil {
		log.Fatal(err)
	}
	defer eu.Close()
	mustQuery(eu, "CREATE TABLE orders (id INT PRIMARY KEY, region STRING)")
	mustQuery(eu, "INSERT INTO orders VALUES (1, 'eu-order')")

	// ...read in Asia: one transactional keyspace underneath.
	asia, err := srv.ConnectRegion("asia-southeast1", "globex", "")
	if err != nil {
		log.Fatal(err)
	}
	defer asia.Close()
	res := mustQuery(asia, "SELECT region FROM orders WHERE id = 1")
	fmt.Printf("read from asia-southeast1: %s\n", res.Rows[0][0])

	// Geo-routing: the global DNS name picks the nearest tenant region.
	top := srv.Topology()
	dns := region.NewDNS(top)
	for _, origin := range regions {
		r, err := dns.Resolve(dns.GlobalName("globex"), origin, regions)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("client in %-16s -> global DNS routes to %s\n", origin, r)
	}

	// The §3.2.5 cold-start effect: with leaseholders pinned in Asia, a
	// cold start from the US pays cross-region RTTs; the region-aware
	// system database keeps it sub-second everywhere.
	params := coldstart.DefaultParams(top)
	rng := randutil.NewRand(1)
	for _, cfg := range []struct {
		name string
		loc  sql.SystemTableLocalities
	}{
		{"region-aware system DB", sql.SystemTableLocalities{RegionAware: true}},
		{"pinned to asia-southeast1", sql.SystemTableLocalities{Home: "asia-southeast1"}},
	} {
		h := coldstart.RunProber(rng, params, coldstart.Flow{
			PreWarmed: true, Localities: cfg.loc, ClientRegion: "us-central1",
		}, 500)
		fmt.Printf("cold start from us-central1, %-26s p50=%v p99=%v\n",
			cfg.name, h.P50().Round(1e6), h.P99().Round(1e6))
	}
}

func mustQuery(conn *crdbserverless.Client, q string) *crdbserverless.Result {
	res, err := conn.Query(q)
	if err != nil {
		log.Fatalf("%s: %v", q, err)
	}
	return res
}
