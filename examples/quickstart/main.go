// Quickstart: create a Serverless deployment, provision a virtual cluster,
// and run SQL over the wire protocol through the routing proxy — then watch
// it scale to zero and cold-start back.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"crdbserverless"
)

func main() {
	srv, err := crdbserverless.New(crdbserverless.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()

	// A "virtual cluster": its own keyspace, schema, and SQL nodes over the
	// shared KV fleet.
	if _, err := srv.CreateTenant(ctx, "acme", crdbserverless.TenantOptions{Password: "s3cret"}); err != nil {
		log.Fatal(err)
	}

	conn, err := srv.Connect("acme", "s3cret")
	if err != nil {
		log.Fatal(err)
	}

	mustQuery(conn, "CREATE TABLE accounts (id INT PRIMARY KEY, owner STRING, balance INT)")
	mustQuery(conn, "INSERT INTO accounts VALUES (1, 'alice', 100), (2, 'bob', 250)")
	mustQuery(conn, "UPDATE accounts SET balance = balance + 50 WHERE owner = 'alice'")

	res := mustQuery(conn, "SELECT owner, balance FROM accounts ORDER BY balance DESC")
	fmt.Println("accounts:")
	for _, row := range res.Rows {
		fmt.Printf("  %-8s %s\n", row[0], row[1])
	}

	// Scale to zero: close the connection and suspend.
	conn.Close()
	if err := srv.Suspend(ctx, "acme"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("tenant suspended: zero SQL compute allocated")

	// Reconnecting is a cold start: the proxy resumes the tenant and pulls
	// a pre-warmed SQL node.
	start := time.Now() //lint:allow directtime example prints real elapsed wall time
	conn2, err := srv.Connect("acme", "s3cret")
	if err != nil {
		log.Fatal(err)
	}
	defer conn2.Close()
	res = mustQuery(conn2, "SELECT COUNT(*) FROM accounts")
	elapsed := time.Since(start) //lint:allow directtime example prints real elapsed wall time
	fmt.Printf("cold start + first query in %v; row count = %s\n",
		elapsed.Round(time.Millisecond), res.Rows[0][0])
}

func mustQuery(conn *crdbserverless.Client, q string) *crdbserverless.Result {
	res, err := conn.Query(q)
	if err != nil {
		log.Fatalf("%s: %v", q, err)
	}
	return res
}
