package crdbserverless

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/trace"
)

// runTracedWorkload runs a fixed point-read workload through the proxy and
// returns the finished proxy.conn root trace. The root span finishes
// asynchronously when the proxy tears the connection down, so the recorder
// is polled briefly.
func runTracedWorkload(t *testing.T, seed int64) *trace.Span {
	t.Helper()
	s := newServerless(t, Options{TraceSeed: seed})
	defer s.Close()
	ctx := context.Background()
	if _, err := s.CreateTenant(ctx, "traced", TenantOptions{}); err != nil {
		t.Fatal(err)
	}
	conn, err := s.Connect("traced", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Query("CREATE TABLE t (a INT PRIMARY KEY, b INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := conn.Query("INSERT INTO t VALUES ($1, $2)", DInt(int64(i)), DInt(int64(i*i))); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Query("SELECT b FROM t WHERE a = $1", DInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, root := range s.Tracer().Recorder().RecentRoots() {
			if root.Op() == "proxy.conn" {
				return root
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no proxy.conn root trace recorded")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPointReadTraceDepth: a single point read through the proxy produces
// one trace with at least five nested spans — proxy connection, SQL
// statement execution, transaction, DistSender send, and KV evaluation.
func TestPointReadTraceDepth(t *testing.T) {
	root := runTracedWorkload(t, 7)

	// Some root-to-leaf chain must contain the five point-read ops as an
	// ordered subsequence (other ops, like proxy.exchange and
	// sqlnode.query, may interleave).
	want := []string{"proxy.conn", "sql.exec", "txn.run", "dist.send", "kv.eval"}
	found := false
	var walk func(sp *trace.Span, path []string)
	walk = func(sp *trace.Span, path []string) {
		path = append(path, sp.Op())
		if len(sp.Children()) == 0 {
			i := 0
			for _, op := range path {
				if i < len(want) && op == want[i] {
					i++
				}
			}
			if i == len(want) && len(path) >= 5 {
				found = true
			}
		}
		for _, c := range sp.Children() {
			walk(c, path)
		}
	}
	walk(root, nil)
	if !found {
		t.Fatalf("no span chain contains %s in order:\n%s",
			strings.Join(want, " > "), trace.RenderTree(root))
	}
}

// TestSameSeedTracesAreIdentical: two deployments with the same trace seed
// running the same workload produce byte-identical trace IDs, span IDs,
// and span structure.
func TestSameSeedTracesAreIdentical(t *testing.T) {
	a := trace.StructureString(runTracedWorkload(t, 42))
	b := trace.StructureString(runTracedWorkload(t, 42))
	if a != b {
		t.Fatalf("same-seed traces differ:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
	// A different seed must produce different IDs (the structure lines
	// embed trace and span IDs).
	c := trace.StructureString(runTracedWorkload(t, 43))
	if a == c {
		t.Fatal("different seeds produced identical trace IDs")
	}
}

// runParallelBatchTrace runs a 16-request batch spread across four ranges
// through a DistSender with parallel fan-out enabled, under a tracer seeded
// with seed, and returns the root trace's structure rendering.
func runParallelBatchTrace(t *testing.T, seed int64) string {
	t.Helper()
	tr := trace.New(trace.Options{Seed: seed})
	cheap := kvserver.CostConfig{
		ReadBatchOverhead:  time.Nanosecond,
		WriteBatchOverhead: time.Nanosecond,
		ReadRequestCost:    time.Nanosecond,
		WriteRequestCost:   time.Nanosecond,
	}
	var nodes []*kvserver.Node
	for i := 1; i <= 3; i++ {
		nodes = append(nodes, kvserver.NewNode(kvserver.NodeConfig{
			ID: kvserver.NodeID(i), VCPUs: 2, Cost: cheap}))
	}
	c, err := kvserver.NewCluster(kvserver.ClusterConfig{}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ds := kvserver.NewDistSender(c, kvserver.Identity{Tenant: 2})
	root := tr.StartRoot("test.batch")
	ctx := trace.ContextWithSpan(context.Background(), root)
	key := func(i int) keys.Key {
		return append(keys.MakeTenantPrefix(2), []byte(fmt.Sprintf("k%02d", i))...)
	}
	for i := 0; i < 16; i++ {
		if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
			{Method: kvpb.Put, Key: key(i), Value: []byte(fmt.Sprintf("v%02d", i))}}}); err != nil {
			t.Fatal(err)
		}
	}
	for _, split := range []int{4, 8, 12} {
		if err := c.SplitAt(key(split)); err != nil {
			t.Fatal(err)
		}
	}
	ba := &kvpb.BatchRequest{Tenant: 2}
	for i := 0; i < 16; i++ {
		ba.Requests = append(ba.Requests, kvpb.Request{Method: kvpb.Get, Key: key(i)})
	}
	// A fresh sender sees the post-split range layout, so the batch splits
	// into four groups and takes the parallel fan-out path.
	ds = kvserver.NewDistSender(c, kvserver.Identity{Tenant: 2})
	resp, err := ds.Send(ctx, ba)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resp.Responses {
		if want := fmt.Sprintf("v%02d", i); string(r.Value) != want {
			t.Fatalf("response %d = %q, want %q", i, r.Value, want)
		}
	}
	root.Finish()
	return trace.StructureString(root)
}

// TestParallelBatchTraceDeterminism: with parallel fan-out enabled, a
// multi-range batch still produces byte-identical trace structure (IDs and
// span tree) on every same-seed run — goroutine completion order must not
// leak into the trace.
func TestParallelBatchTraceDeterminism(t *testing.T) {
	a := runParallelBatchTrace(t, 42)
	if !strings.Contains(a, "dist.fanout") {
		t.Fatalf("parallel fan-out path not exercised:\n%s", a)
	}
	for i := 0; i < 5; i++ {
		if b := runParallelBatchTrace(t, 42); a != b {
			t.Fatalf("same-seed parallel traces differ (run %d):\n--- run 1\n%s\n--- run %d\n%s", i+2, a, i+2, b)
		}
	}
	if c := runParallelBatchTrace(t, 43); a == c {
		t.Fatal("different seeds produced identical trace IDs")
	}
}
