module crdbserverless

go 1.22
